#!/usr/bin/env python3
"""Scenario: one front end riding a workload change (Figures 7-8 live).

Phase 1: a Zipfian 1.2 workload — the front end starts with a 2-line
cache and grows until its back-end load-imbalance target holds.
Phase 2: the workload turns uniform — caching is now worthless, and the
front end shrinks its memory footprint back to almost nothing, releasing
the cloud resources it no longer needs.

The epoch-by-epoch series (cache size, tracker size, I_c, alpha_c) is
printed as sparklines plus a decision log — the same data as the paper's
Figures 7 and 8.

Run:  python examples/elastic_autoscaling.py
"""

from repro import CacheCluster, ElasticCoTClient, UniformGenerator, ZipfianGenerator
from repro.metrics import SeriesRecorder
from repro.workloads import format_key

KEY_SPACE = 100_000
PHASE_ACCESSES = 400_000
TARGET_IMBALANCE = 1.1


def drive(client: ElasticCoTClient, generator, accesses: int) -> None:
    for key in generator.keys(accesses):
        client.get(format_key(key))


def main() -> None:
    print(__doc__.split("Run:")[0])
    cluster = CacheCluster(num_servers=8, capacity_bytes=1 << 40, value_size=1)
    client = ElasticCoTClient(
        cluster,
        target_imbalance=TARGET_IMBALANCE,
        initial_cache=2,
        initial_tracker=4,
        base_epoch=5000,
    )

    drive(client, ZipfianGenerator(KEY_SPACE, theta=1.2, seed=3), PHASE_ACCESSES)
    grown_cache, grown_tracker = client.converged_sizes()
    switch_epoch = client.epoch_index
    print(f"phase 1 (Zipf 1.2): converged to C={grown_cache}, "
          f"K={grown_tracker}, alpha_t={client.controller.alpha_target:.2f} "
          f"after {switch_epoch} epochs")

    drive(client, UniformGenerator(KEY_SPACE, seed=4), PHASE_ACCESSES)
    final_cache, final_tracker = client.converged_sizes()
    print(f"phase 2 (uniform):  shrank to C={final_cache}, K={final_tracker} "
          f"after {client.epoch_index - switch_epoch} more epochs\n")

    recorder = SeriesRecorder()
    for record in client.history:
        recorder.add_point(
            record.index,
            cache=record.snapshot.cache_capacity,
            tracker=record.snapshot.tracker_capacity,
            I_c=round(record.snapshot.imbalance, 3),
            alpha_c=round(record.snapshot.alpha_c, 2),
        )
    print("epoch series (full run; workload switches at epoch "
          f"{switch_epoch}):")
    print(recorder.to_sparklines(width=70))
    print()

    print("resizing decisions:")
    for record in client.history:
        if record.decision in ("warmup", "none"):
            continue
        print(
            f"  epoch {record.index:>4}  {record.decision:<14} "
            f"C {record.snapshot.cache_capacity:>5} -> "
            f"{record.new_cache_capacity:<5} "
            f"K {record.snapshot.tracker_capacity:>5} -> "
            f"{record.new_tracker_capacity:<5} "
            f"(I_c={record.snapshot.imbalance:.3f})"
        )


if __name__ == "__main__":
    main()
