#!/usr/bin/env python3
"""Quickstart: a CoT front-end cache in twenty lines.

Builds a small Cache-on-Track cache, feeds it a skewed key stream, and
compares its hit rate against LRU, LFU, ARC and LRU-2 at the same size —
a miniature of the paper's Figure 4.

Run:  python examples/quickstart.py
"""

from repro import MISSING, ZipfianGenerator, make_policy

KEY_SPACE = 100_000
ACCESSES = 300_000
CACHE_LINES = 64
TRACKER_LINES = 512  # 8:1 — the paper's ratio for Zipf 0.99


def main() -> None:
    print(f"workload: Zipfian s=0.99 over {KEY_SPACE:,} keys, "
          f"{ACCESSES:,} accesses")
    print(f"cache: {CACHE_LINES} lines (CoT tracker/LRU-2 history: "
          f"{TRACKER_LINES})\n")

    results = []
    for name in ("lru", "lfu", "arc", "lru2", "cot"):
        policy = make_policy(name, CACHE_LINES, tracker_capacity=TRACKER_LINES)
        workload = ZipfianGenerator(KEY_SPACE, theta=0.99, seed=7)
        for key in workload.keys(ACCESSES):
            value = policy.lookup(key)
            if value is MISSING:
                # In a real deployment this is the round trip to the
                # back-end caching layer; the policy decides whether the
                # fetched value deserves one of the scarce cache-lines.
                policy.admit(key, f"value-{key}")
        results.append((name, policy.stats.hit_rate))

    tpc = workload.perfect_cache_hit_rate(CACHE_LINES)
    print(f"{'policy':8s} hit rate")
    for name, hit_rate in sorted(results, key=lambda r: -r[1]):
        bar = "#" * int(hit_rate * 60)
        print(f"{name:8s} {hit_rate:7.2%}  {bar}")
    print(f"{'tpc':8s} {tpc:7.2%}  (theoretical perfect cache)")


if __name__ == "__main__":
    main()
