#!/usr/bin/env python3
"""Scenario: CoT front ends under the six YCSB core workloads.

The paper's experiments are read-intensive variants of YCSB's core
workloads; this example runs all six letters (A-F) through the full
stack — front-end CoT cache, consistent-hashed shards, persistent
storage — and reports per-workload hit rate, back-end load-imbalance,
and write traffic. Workload E exercises the multi-get (scan) path;
workload F exercises read-modify-write.

Run:  python examples/ycsb_core_workloads.py
"""

from repro import CacheCluster, CoTCache
from repro.cluster.client import FrontEndClient
from repro.metrics import load_imbalance, render_table
from repro.workloads.ycsb import CoreWorkload

RECORDS = 50_000
OPERATIONS = 60_000
CACHE_LINES = 128
TRACKER_LINES = 1024


def run_letter(letter: str) -> list[object]:
    cluster = CacheCluster(num_servers=8, capacity_bytes=1 << 40, value_size=1)
    client = FrontEndClient(
        cluster,
        CoTCache(CACHE_LINES, tracker_capacity=TRACKER_LINES),
        client_id=f"ycsb-{letter}",
    )
    workload = CoreWorkload(
        letter, record_count=RECORDS, theta=0.99, max_scan_length=20, seed=11
    )
    for op in workload.operations_stream(OPERATIONS):
        client.execute(op)
        if workload.is_rmw_read(op):
            client.execute(workload.modify(op.key))
    return [
        letter.upper(),
        ", ".join(
            f"{name} {share:.0%}"
            for name, share in workload.operations.items()
            if share
        ),
        f"{client.policy.stats.hit_rate:.1%}",
        f"{load_imbalance(cluster.loads()):.2f}",
        cluster.storage.stats.writes,
        workload.record_count - RECORDS,
    ]


def main() -> None:
    print(__doc__.split("Run:")[0])
    rows = [run_letter(letter) for letter in "abcdef"]
    print(render_table(
        ["workload", "mix", "front-end hit rate", "back-end imbalance",
         "storage writes", "inserted keys"],
        rows,
        title=f"YCSB core workloads A-F over {RECORDS:,} records, "
              f"{OPERATIONS:,} operations, C={CACHE_LINES}",
    ))
    print()
    print("Notes: D's hot set follows the newest inserts (latest-skewed);")
    print("E is scan-dominated — every scan fans out as a multi-get; F's")
    print("reads each carry a read-modify-write follow-up.")


if __name__ == "__main__":
    main()
