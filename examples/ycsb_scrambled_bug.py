#!/usr/bin/env python3
"""The YCSB ScrambledZipfian bug, reproduced (paper contribution #5).

The paper reports: "YCSB's ScrambledZipfian workload generator ...
generates workloads that are significantly less-skewed than the promised
Zipfian distribution." This example draws from the honest Zipfian
generator and the bug-faithful scrambled one at three requested skews and
prints the delivered skew each actually produced.

Run:  python examples/ycsb_scrambled_bug.py
"""

from repro import ScrambledZipfianGenerator, ZipfianGenerator
from repro.metrics import render_table
from repro.workloads import estimate_zipf_exponent, head_mass

KEY_SPACE = 50_000
DRAWS = 200_000


def main() -> None:
    print(__doc__.split("Run:")[0])
    rows = []
    for requested in (0.9, 0.99, 1.2):
        honest = ZipfianGenerator(KEY_SPACE, theta=requested, seed=11)
        scrambled = ScrambledZipfianGenerator(
            KEY_SPACE, requested_theta=requested, seed=11
        )
        honest_keys = list(honest.keys(DRAWS))
        scrambled_keys = list(scrambled.keys(DRAWS))
        rows.append(
            [
                f"{requested:g}",
                f"{estimate_zipf_exponent(honest_keys, max_rank=1000):.3f}",
                f"{estimate_zipf_exponent(scrambled_keys, max_rank=1000):.3f}",
                f"{head_mass(honest_keys, 50):.1%}",
                f"{head_mass(scrambled_keys, 50):.1%}",
            ]
        )
    print(render_table(
        [
            "requested s",
            "delivered s (Zipfian)",
            "delivered s (Scrambled)",
            "top-50 mass (Zipfian)",
            "top-50 mass (Scrambled)",
        ],
        rows,
        title="Promised vs delivered skew",
    ))
    print()
    print("Why: ScrambledZipfian always draws from a fixed Zipfian(0.99)")
    print("over 10,000,000,000 items — the requested constant is ignored —")
    print("and FNV-scrambles those ranks onto the key space, folding the")
    print("long tail uniformly onto every key and crushing the head mass.")
    print("The paper therefore switched to the plain ZipfianGenerator, as")
    print("does every experiment in this reproduction.")


if __name__ == "__main__":
    main()
