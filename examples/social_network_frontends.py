#!/usr/bin/env python3
"""Scenario: regional front ends with different local trends.

The paper motivates CoT with social networks whose front-end servers
serve different geographies and therefore see different hot keys
("#miami vs #ny"). This example deploys one shared back-end cluster and
three front ends:

* ``miami``  — strongly skewed Zipfian, hot set anchored at offset 0;
* ``ny``     — the same shape rotated to a different hot set;
* ``archive``— a batch-analytics client reading almost uniformly.

Each front end runs an *elastic* CoT cache with the same target
imbalance; none of them coordinate. The output shows (a) the back-end
load-imbalance with and without the front-end caches and (b) the very
different cache sizes the three front ends converge to — the
decentralization + elasticity claims of the paper in one run.

Run:  python examples/social_network_frontends.py
"""

from repro import CacheCluster, ElasticCoTClient, UniformGenerator, ZipfianGenerator
from repro.cluster.client import FrontEndClient
from repro.metrics import load_imbalance, render_table
from repro.policies import NullCache
from repro.workloads import RotatingHotSetGenerator, format_key

KEY_SPACE = 100_000
ACCESSES_PER_FRONT_END = 300_000
TARGET_IMBALANCE = 1.1


def build_workloads(seed: int = 1):
    return {
        "miami": RotatingHotSetGenerator(
            ZipfianGenerator(KEY_SPACE, theta=1.2, seed=seed), offset=0
        ),
        "ny": RotatingHotSetGenerator(
            ZipfianGenerator(KEY_SPACE, theta=1.2, seed=seed + 1),
            offset=KEY_SPACE // 2,
        ),
        "archive": UniformGenerator(KEY_SPACE, seed=seed + 2),
    }


def run_without_caches() -> float:
    cluster = CacheCluster(num_servers=8, capacity_bytes=1 << 40, value_size=1)
    for name, generator in build_workloads().items():
        client = FrontEndClient(cluster, NullCache(), client_id=name)
        for key in generator.keys(ACCESSES_PER_FRONT_END):
            client.get(format_key(key))
    return load_imbalance(cluster.loads())


def run_with_elastic_cot() -> tuple[float, list[list[object]]]:
    cluster = CacheCluster(num_servers=8, capacity_bytes=1 << 40, value_size=1)
    clients = {
        name: ElasticCoTClient(
            cluster,
            target_imbalance=TARGET_IMBALANCE,
            base_epoch=5000,
            client_id=name,
        )
        for name in build_workloads()
    }
    generators = build_workloads()
    # Interleave the three front ends so the cluster sees mixed traffic.
    streams = {
        name: generators[name].keys(ACCESSES_PER_FRONT_END) for name in clients
    }
    for _ in range(ACCESSES_PER_FRONT_END):
        for name, client in clients.items():
            client.get(format_key(next(streams[name])))
    rows = []
    for name, client in clients.items():
        cache, tracker = client.converged_sizes()
        rows.append(
            [
                name,
                cache,
                tracker,
                f"{client.policy.stats.hit_rate:.1%}",
                f"{client.recent_imbalance():.2f}",
            ]
        )
    return load_imbalance(cluster.loads()), rows


def main() -> None:
    print(__doc__.split("Run:")[0])
    bare = run_without_caches()
    balanced, rows = run_with_elastic_cot()
    print(render_table(
        ["front-end", "cache", "tracker", "hit rate", "recent local I"],
        rows,
        title="Converged per-front-end configurations (no coordination)",
    ))
    print()
    print(f"back-end load-imbalance without front-end caches: {bare:6.2f}")
    print(f"back-end load-imbalance with elastic CoT caches:  {balanced:6.2f}")
    print(f"(administrator input was a single number: I_t = {TARGET_IMBALANCE})")


if __name__ == "__main__":
    main()
