"""The no-front-end-cache configuration (the paper's "no cache" baseline).

Every lookup misses; every admission is declined. Used for the cache-size-0
points of Figure 3, the "No Cache" bars of Figures 5-6, and the no-cache
load-imbalance column of Table 2.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from repro.policies.base import MISSING, CachePolicy

__all__ = ["NullCache"]


class NullCache(CachePolicy):
    """A cache that never caches anything."""

    name = "none"

    def __init__(self, capacity: int = 0) -> None:
        # Capacity is accepted for interface uniformity but always zero.
        super().__init__(0)

    def __len__(self) -> int:
        return 0

    def __contains__(self, key: Hashable) -> bool:
        return False

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(())

    def _lookup(self, key: Hashable) -> Any:
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:  # pragma: no cover
        # Unreachable: base class short-circuits on capacity 0.
        return None

    def _invalidate(self, key: Hashable) -> bool:
        return False

    def _resize(self, capacity: int) -> None:
        if capacity != 0:
            raise ValueError("NullCache capacity is fixed at 0")
