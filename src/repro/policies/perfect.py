"""The perfect-cache oracle ("TPC" in the paper's Figure 4).

Fan et al.'s load-balancing analysis — the theoretical foundation the CoT
paper builds on — assumes a *perfect cache*: accesses to the ``C`` hottest
keys always hit, every other access always misses. The paper plots the
matching theoretical hit-rate curve (computed from the Zipfian CDF) as the
"TPC" series; we additionally provide an executable oracle that can be
dropped into any experiment in place of a real policy, which is how the
load-imbalance harness validates its plumbing.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.policies.base import MISSING, CachePolicy

__all__ = ["PerfectCache"]


class PerfectCache(CachePolicy):
    """Oracle that caches a fixed, externally supplied hot set.

    Parameters
    ----------
    capacity:
        number of cache-lines ``C``.
    hot_keys:
        the true ``C`` hottest keys, in descending hotness order. Only the
        first ``capacity`` entries are used.
    """

    name = "perfect"

    def __init__(self, capacity: int, hot_keys: Iterable[Hashable]) -> None:
        super().__init__(capacity)
        ranked = list(hot_keys)[:capacity]
        self._hot: set[Hashable] = set(ranked)
        self._values: dict[Hashable, Any] = {}

    @classmethod
    def for_zipfian(cls, capacity: int, key_space: int) -> "PerfectCache":
        """Oracle for a Zipfian workload over ranks ``0..key_space-1``.

        YCSB's ZipfianGenerator emits rank ``i`` with probability
        proportional to ``1/(i+1)^s``, so the hottest ``C`` keys are simply
        ranks ``0..C-1`` regardless of the skew parameter.
        """
        return cls(capacity, range(min(capacity, key_space)))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(list(self._values))

    @property
    def hot_set(self) -> frozenset[Hashable]:
        """The oracle's fixed hot set."""
        return frozenset(self._hot)

    def _lookup(self, key: Hashable) -> Any:
        if key in self._values:
            return self._values[key]
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._hot:
            self._values[key] = value
            self.stats.record_insertion()

    def _invalidate(self, key: Hashable) -> bool:
        return self._values.pop(key, MISSING) is not MISSING

    def _resize(self, capacity: int) -> None:
        # The oracle's hot set is fixed at construction; shrinking simply
        # drops cached values beyond the new capacity (hot set unchanged —
        # resizing a true oracle requires re-ranking, i.e. a new instance).
        while len(self._values) > capacity:
            self._values.popitem()
