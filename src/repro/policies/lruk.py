"""LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993).

The CoT paper compares against LRU-2 configured with a *history* the same
size as CoT's tracker. LRU-K evicts the cached key whose K-th most recent
reference is oldest ("maximum backward K-distance"); keys referenced fewer
than K times are evicted first, in LRU order among themselves. Reference
history is retained for evicted keys in a bounded *history* structure so a
key re-admitted shortly after eviction keeps its K-distance — this is the
"retained information" of the original paper and the "history" the CoT
paper refers to.

Implementation notes
--------------------
Each key keeps its last ``k`` reference times (a global logical clock).
The eviction order is maintained in an indexed min-heap whose priority is
the K-th most recent reference time; keys with fewer than ``k`` references
get priority ``last_time - _INFANT_OFFSET``, which (a) sorts every infant
key below any mature key and (b) orders infants among themselves by plain
LRU — exactly the paper's tie-breaking rule, in O(log C) per operation.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Hashable, Iterable, Iterator

from repro.core.heap import IndexedMinHeap
from repro.errors import ConfigurationError
from repro.policies.base import MISSING, CachePolicy

__all__ = ["LRUKCache"]

#: Offset that pushes keys with < k references below all mature keys while
#: preserving LRU order among them. Larger than any realistic clock value.
_INFANT_OFFSET = 2.0**62


class LRUKCache(CachePolicy):
    """LRU-K cache with bounded retained history.

    Parameters
    ----------
    capacity:
        number of cache-lines.
    k:
        how many past references to keep per key (the paper's experiments
        use ``k=2``, i.e. LRU-2, "the most responsive LRU-k").
    history_capacity:
        how many *evicted* keys retain their reference history. The CoT
        paper configures this equal to CoT's tracker size. ``0`` disables
        retained information.
    """

    name = "lru2"

    def __init__(self, capacity: int, k: int = 2, history_capacity: int = 0) -> None:
        super().__init__(capacity)
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if history_capacity < 0:
            raise ConfigurationError("history_capacity must be >= 0")
        self._k = k
        self._history_capacity = history_capacity
        self._clock = 0.0
        self._values: dict[Hashable, Any] = {}
        self._refs: dict[Hashable, deque[float]] = {}
        # retained info for evicted keys, ordered by last reference (LRU out)
        self._history: OrderedDict[Hashable, deque[float]] = OrderedDict()
        self._heap: IndexedMinHeap[Hashable] = IndexedMinHeap()

    # ----------------------------------------------------------- inspection

    @property
    def k(self) -> int:
        """The K in LRU-K."""
        return self._k

    @property
    def history_capacity(self) -> int:
        """Maximum number of evicted keys with retained history."""
        return self._history_capacity

    @property
    def history_size(self) -> int:
        """Evicted keys currently retaining history (test hook)."""
        return len(self._history)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(list(self._values))

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(list(self._values.items()))

    # -------------------------------------------------------------- helpers

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def _priority(self, refs: deque[float]) -> float:
        """Backward K-distance priority: K-th last time, or infant rank."""
        if len(refs) >= self._k:
            return refs[0]  # deque holds the last k refs; [0] is the k-th last
        return refs[-1] - _INFANT_OFFSET

    def _touch(self, key: Hashable) -> None:
        refs = self._refs[key]
        refs.append(self._tick())
        self._heap.update(key, self._priority(refs))

    def _remember(self, key: Hashable, refs: deque[float]) -> None:
        """Retain an evicted key's reference history (bounded, LRU-out)."""
        if self._history_capacity == 0:
            return
        self._history[key] = refs
        self._history.move_to_end(key)
        while len(self._history) > self._history_capacity:
            self._history.popitem(last=False)

    # ------------------------------------------------------------ policy ops

    def _lookup(self, key: Hashable) -> Any:
        if key in self._values:
            self._touch(key)
            return self._values[key]
        # The reference for a missed access is recorded by ``_admit`` once
        # the fetched value is offered (recording it here as well would
        # double-count the access and make history keys instantly mature).
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            self._touch(key)
            return
        refs = self._history.pop(key, None)
        if refs is None:
            refs = deque(maxlen=self._k)
        refs.append(self._tick())
        if len(self._values) >= self._capacity:
            self._evict_one()
        self._values[key] = value
        self._refs[key] = refs
        self._heap.push(key, self._priority(refs))
        self.stats.record_insertion()

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Batched read-only stream: lookup + admit-on-miss, loop-inlined.

        The hit path fuses ``_touch`` (clock tick, reference append, heap
        reposition); misses replay ``_admit`` with the priority rule
        inlined. Per-key semantics are exactly the base implementation's.
        """
        values = self._values
        refs_map = self._refs
        heap = self._heap
        heap_update = heap.update
        heap_push = heap.push
        history_pop = self._history.pop
        cstat = self.stats
        capacity = self._capacity
        k = self._k
        for key in keys:
            refs = refs_map.get(key)
            if refs is not None:
                self._clock = clock = self._clock + 1.0
                refs.append(clock)
                heap_update(
                    key, refs[0] if len(refs) >= k else clock - _INFANT_OFFSET
                )
                cstat.hits += 1
                cstat.epoch_hits += 1
                continue
            cstat.misses += 1
            cstat.epoch_misses += 1
            if capacity == 0:
                continue
            refs = history_pop(key, None)
            if refs is None:
                refs = deque(maxlen=k)
            self._clock = clock = self._clock + 1.0
            refs.append(clock)
            if len(values) >= capacity:
                self._evict_one()
            values[key] = key
            refs_map[key] = refs
            heap_push(
                key, refs[0] if len(refs) >= k else clock - _INFANT_OFFSET
            )
            cstat.insertions += 1

    def _evict_one(self) -> None:
        victim, _prio = self._heap.pop()
        del self._values[victim]
        victim_refs = self._refs.pop(victim)
        self._remember(victim, victim_refs)
        self.stats.record_eviction()
        self._notify_evicted(victim)

    def _invalidate(self, key: Hashable) -> bool:
        if key not in self._values:
            # Stale history for updated keys is dropped as well.
            self._history.pop(key, None)
            return False
        del self._values[key]
        self._refs.pop(key)
        self._heap.remove(key)
        return True

    def _resize(self, capacity: int) -> None:
        while len(self._values) > capacity:
            self._evict_one()
