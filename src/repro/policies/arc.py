"""Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

Full ARC as specified in the paper's Figure 4 ("ARC(c)") pseudocode:
two real lists ``T1`` (recency) and ``T2`` (frequency), two ghost lists
``B1``/``B2`` remembering recently evicted keys, and the adaptation target
``p`` that continuously rebalances how many of the ``c`` cache-lines favour
recency vs frequency.

The CoT paper uses ARC as its strongest auto-tuning baseline: ARC tracks
keys beyond the cache (ghost lists of combined size ``c``) but still "pays
the cost of caching every new cold key in the recency list", which is what
the Figure 4 / Table 2 experiments expose under highly skewed workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterable, Iterator

from repro.policies.base import MISSING, CachePolicy

__all__ = ["ARCCache"]


class ARCCache(CachePolicy):
    """ARC(c): self-tuning blend of recency and frequency.

    ``lookup`` serves Case I of the REQUEST routine (hits in ``T1 ∪ T2``);
    ``admit`` — called by the front end once the missed value has been
    fetched — serves Cases II-IV (ghost hits and brand-new keys).
    """

    name = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._t1: OrderedDict[Hashable, Any] = OrderedDict()  # recent, once
        self._t2: OrderedDict[Hashable, Any] = OrderedDict()  # frequent
        self._b1: OrderedDict[Hashable, None] = OrderedDict()  # ghosts of t1
        self._b2: OrderedDict[Hashable, None] = OrderedDict()  # ghosts of t2
        self._p = 0.0  # adaptation target for |T1|

    # ----------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._t1 or key in self._t2

    def cached_keys(self) -> Iterator[Hashable]:
        yield from list(self._t1)
        yield from list(self._t2)

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        yield from list(self._t1.items())
        yield from list(self._t2.items())

    @property
    def p(self) -> float:
        """Current adaptation target for the size of ``T1``."""
        return self._p

    @property
    def ghost_keys(self) -> tuple[list[Hashable], list[Hashable]]:
        """Snapshot of (B1, B2) ghost keys, LRU→MRU order (test hook)."""
        return list(self._b1), list(self._b2)

    # ------------------------------------------------------------ policy ops

    def _lookup(self, key: Hashable) -> Any:
        # Case I: hit in T1 or T2 -> move to MRU of T2.
        if key in self._t1:
            value = self._t1.pop(key)
            self._t2[key] = value
            return value
        if key in self._t2:
            self._t2.move_to_end(key)
            return self._t2[key]
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._t1 or key in self._t2:
            # Value refresh for an already-cached key (e.g. re-fetch after
            # a race); treat as a hit-move to T2.
            self._t1.pop(key, None)
            self._t2.pop(key, None)
            self._t2[key] = value
            return
        c = self._capacity
        if key in self._b1:
            # Case II: ghost hit in B1 -> grow recency target.
            delta = max(len(self._b2) / len(self._b1), 1.0)
            self._p = min(float(c), self._p + delta)
            self._replace(in_b2=False)
            del self._b1[key]
            self._t2[key] = value
            self.stats.record_insertion()
            return
        if key in self._b2:
            # Case III: ghost hit in B2 -> grow frequency target.
            delta = max(len(self._b1) / len(self._b2), 1.0)
            self._p = max(0.0, self._p - delta)
            self._replace(in_b2=True)
            del self._b2[key]
            self._t2[key] = value
            self.stats.record_insertion()
            return
        # Case IV: completely new key.
        l1 = len(self._t1) + len(self._b1)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                # B1 is empty and T1 is full: evict LRU of T1 outright.
                victim, _value = self._t1.popitem(last=False)
                self.stats.record_eviction()
                self._notify_evicted(victim)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= c:
                if total == 2 * c:
                    self._b2.popitem(last=False)
                self._replace(in_b2=False)
        self._t1[key] = value
        self.stats.record_insertion()

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Batched read-only stream: lookup + admit-on-miss, loop-inlined.

        Case I (hits) is inlined; misses fall through to ``_admit``
        (Cases II-IV), which records its own insertion/eviction stats.
        Per-key semantics are exactly the base implementation's.
        """
        t1 = self._t1
        t2 = self._t2
        move = t2.move_to_end
        cstat = self.stats
        capacity = self._capacity
        admit = self._admit
        for key in keys:
            if key in t1:
                t2[key] = t1.pop(key)
                cstat.hits += 1
                cstat.epoch_hits += 1
                continue
            if key in t2:
                move(key)
                cstat.hits += 1
                cstat.epoch_hits += 1
                continue
            cstat.misses += 1
            cstat.epoch_misses += 1
            if capacity:
                admit(key, key)

    def _replace(self, in_b2: bool) -> None:
        """The REPLACE(x, p) subroutine: evict from T1 or T2 into a ghost.

        The ``|T1| == p`` comparison is exact on the real-valued ``p``, as
        in Figure 4 — it only fires when ``p`` is integral.  Truncating
        (``int(p)``) fires on any fractional ``p`` with ``⌊p⌋ == |T1|`` and
        evicts from T1 where the paper evicts from T2 (caught by the
        fidelity property test in tests/test_arc_fidelity.py).
        """
        t1_len = len(self._t1)
        if t1_len >= 1 and ((in_b2 and t1_len == self._p) or t1_len > self._p):
            victim, _value = self._t1.popitem(last=False)
            self._b1[victim] = None
        elif self._t2:
            victim, _value = self._t2.popitem(last=False)
            self._b2[victim] = None
        elif self._t1:  # pragma: no cover - defensive: T2 empty, T1 must give
            victim, _value = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            return
        self.stats.record_eviction()
        self._notify_evicted(victim)

    def _invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` everywhere — its history is stale after an update."""
        dropped = False
        if self._t1.pop(key, MISSING) is not MISSING:
            dropped = True
        elif self._t2.pop(key, MISSING) is not MISSING:
            dropped = True
        self._b1.pop(key, None)
        self._b2.pop(key, None)
        return dropped

    def _resize(self, capacity: int) -> None:
        self._p = min(self._p, float(capacity))
        while len(self._t1) + len(self._t2) > capacity:
            if len(self._t1) > self._p or not self._t2:
                victim, _v = self._t1.popitem(last=False)
                self._b1[victim] = None
            else:
                victim, _v = self._t2.popitem(last=False)
                self._b2[victim] = None
            self.stats.record_eviction()
            self._notify_evicted(victim)
        while len(self._t1) + len(self._b1) > capacity and self._b1:
            self._b1.popitem(last=False)
        total = len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
        while total > 2 * capacity and (self._b1 or self._b2):
            if self._b2:
                self._b2.popitem(last=False)
            else:
                self._b1.popitem(last=False)
            total -= 1
