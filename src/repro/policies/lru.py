"""Least-Recently-Used replacement (Section 3 baseline).

O(1) per access via an ordered dictionary. The paper's critique — cold keys
that happen to be accessed recently evict hotter keys — is what the hit-rate
experiments (Figure 4) quantify against CoT.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterable, Iterator

from repro.policies.base import MISSING, CachePolicy

__all__ = ["LRUCache"]


class LRUCache(CachePolicy):
    """Classic LRU cache over an :class:`collections.OrderedDict`."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(list(self._entries))

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(list(self._entries.items()))

    def _lookup(self, key: Hashable) -> Any:
        if key not in self._entries:
            return MISSING
        self._entries.move_to_end(key)
        return self._entries[key]

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self._capacity:
            victim, _value = self._entries.popitem(last=False)
            self.stats.record_eviction()
            self._notify_evicted(victim)
        self._entries[key] = value
        self.stats.record_insertion()

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Batched read-only stream: lookup + admit-on-miss, loop-inlined.

        Per-key semantics are exactly the base implementation's; the
        method/attribute resolution and stats calls are hoisted so the
        shadow simulations of the adaptive arbiter stay cheap.
        """
        entries = self._entries
        move = entries.move_to_end
        cstat = self.stats
        capacity = self._capacity
        for key in keys:
            if key in entries:
                move(key)
                cstat.hits += 1
                cstat.epoch_hits += 1
                continue
            cstat.misses += 1
            cstat.epoch_misses += 1
            if capacity == 0:
                continue
            if len(entries) >= capacity:
                victim, _value = entries.popitem(last=False)
                cstat.evictions += 1
                self._notify_evicted(victim)
            entries[key] = key
            cstat.insertions += 1

    def _invalidate(self, key: Hashable) -> bool:
        return self._entries.pop(key, MISSING) is not MISSING

    def _resize(self, capacity: int) -> None:
        while len(self._entries) > capacity:
            victim, _value = self._entries.popitem(last=False)
            self.stats.record_eviction()
            self._notify_evicted(victim)
