"""The front-end cache policy interface.

Every replacement policy evaluated in the paper — LRU, LFU, ARC, LRU-2, the
perfect-cache oracle, and CoT itself — implements :class:`CachePolicy`, so
the experiment harnesses (hit-rate sweeps, load-imbalance sweeps, end-to-end
simulations) are policy-agnostic.

The interface mirrors the client-driven protocol of the paper's system model
(Section 2): a front end first consults the local cache (:meth:`lookup`),
on a miss fetches the value from the back end and *offers* it to the policy
(:meth:`admit` — which may decline, as CoT does for cold keys), and on an
update invalidates the local copy (:meth:`invalidate`).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.policies.stats import CacheStats

__all__ = ["MISSING", "CachePolicy"]


class _Missing:
    """Sentinel distinguishing 'not cached' from a cached ``None`` value."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


class CachePolicy(abc.ABC):
    """Abstract base class for front-end cache replacement policies.

    Subclasses implement the four primitive hooks ``_lookup``, ``_admit``,
    ``_invalidate`` and ``_resize``; this base class wraps them with uniform
    statistics accounting so hit rates are measured identically across
    policies.
    """

    #: short identifier used by the registry and in experiment tables
    name: str = "base"

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        self._capacity = capacity
        self.stats = CacheStats()
        #: callbacks invoked with each evicted key (coherence directories,
        #: TTL integrations, experiment probes). Invalidations initiated by
        #: the caller are NOT reported — the caller already knows.
        self.eviction_listeners: list[Callable[[Hashable], None]] = []

    def _notify_evicted(self, key: Hashable) -> None:
        """Inform listeners that the policy evicted ``key`` on its own."""
        for listener in self.eviction_listeners:
            listener(key)

    # ------------------------------------------------------------ uniform api

    @property
    def capacity(self) -> int:
        """Maximum number of cached entries (cache-lines)."""
        return self._capacity

    def lookup(self, key: Hashable) -> Any:
        """Look ``key`` up in the local cache.

        Returns the cached value, or :data:`MISSING` on a miss. Hit/miss
        statistics are recorded, and the policy updates its internal
        recency/frequency state for ``key`` (even on a miss, for policies
        that track history beyond the cache, e.g. LRU-2 and CoT).
        """
        value = self._lookup(key)
        if value is MISSING:
            self.stats.record_miss()
        else:
            self.stats.record_hit()
        return value

    def admit(self, key: Hashable, value: Any) -> None:
        """Offer a back-end-fetched value for caching after a miss.

        The policy may insert it (possibly evicting another key) or decline
        — CoT declines keys colder than ``h_min``; classic policies always
        insert when ``capacity > 0``.
        """
        if self._capacity == 0:
            return
        self._admit(key, value)

    def get_or_admit(self, key: Hashable, loader: Callable[[Hashable], Any]) -> Any:
        """Fused read path: lookup, and on a miss load + offer in one call.

        Semantically identical to::

            value = policy.lookup(key)
            if value is MISSING:
                value = loader(key)
                policy.admit(key, value)

        but expressed as a single entry point so policies can fuse the
        two halves — CoT's override resolves the key once against its
        tracker instead of re-probing in ``lookup`` and again in
        ``admit``. ``loader`` is invoked only on a miss (with the key)
        and its result is returned either way.
        """
        value = self.lookup(key)
        if value is MISSING:
            value = loader(key)
            self.admit(key, value)
        return value

    def access(self, key: Hashable, loader: Callable[[Hashable], Any]) -> Any:
        """Alias for :meth:`get_or_admit` under its paper-facing name
        (Algorithm 2 is the cache's per-access routine). Dispatches
        through ``get_or_admit`` so subclass fast paths apply here too."""
        return self.get_or_admit(key, loader)

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Drive a read-only key stream, admitting every missed key.

        Batch API for the hit-rate harnesses: each key is looked up and,
        on a miss, admitted with the key itself as its value (the
        experiments only measure hit/miss decisions, not payloads). The
        per-call attribute resolution is hoisted out of the loop; the
        semantics per key are exactly ``get_or_admit``'s.
        """
        lookup = self.lookup
        admit = self.admit
        for key in keys:
            if lookup(key) is MISSING:
                admit(key, key)

    def invalidate(self, key: Hashable) -> None:
        """Drop any cached copy of ``key`` (update/delete path).

        Policies that keep access history beyond the cache (CoT, LRU-2,
        ARC ghost lists) may retain or update that history.
        """
        if self._invalidate(key):
            self.stats.record_invalidation()

    def record_update(self, key: Hashable) -> None:
        """Record an update (write) access to ``key``.

        The client-driven protocol invalidates the local copy on writes;
        policies with richer access models may also penalize the key —
        CoT's dual-cost hotness (Equation 1) subtracts ``u_w`` so that
        frequently-updated keys stop qualifying for the cache. The default
        implementation just invalidates.
        """
        self.invalidate(key)

    def resize(self, capacity: int) -> None:
        """Change the cache capacity, evicting coldest entries on shrink."""
        if capacity < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        self._resize(capacity)
        self._capacity = capacity

    # ----------------------------------------------------------- inspection

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of currently cached entries."""

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether ``key`` is currently cached (no statistics side effects)."""

    @abc.abstractmethod
    def cached_keys(self) -> Iterator[Hashable]:
        """Iterate the currently cached keys (arbitrary order)."""

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(key, value)`` pairs for the currently cached entries.

        The default resolves each key through ``_lookup`` (which may touch
        recency state); concrete policies override it with a direct read of
        their value map. Used by the adaptive arbiter's warm handoff, where
        the source policy is about to be retired anyway.
        """
        for key in self.cached_keys():
            value = self._lookup(key)
            if value is not MISSING:
                yield key, value

    def warm_seed(self, items: Iterable[tuple[Hashable, Any]]) -> None:
        """Seed the cache from another policy's cached set (warm handoff).

        Each pair is offered through the normal admission hook — policies
        with admission filters (CoT) override this to pre-warm their
        history first so the handoff is not rejected wholesale. Hit/miss
        statistics are untouched; insertions/evictions count as usual.
        """
        if self._capacity == 0:
            return
        for key, value in items:
            self._admit(key, value)

    # ------------------------------------------------------- subclass hooks

    @abc.abstractmethod
    def _lookup(self, key: Hashable) -> Any:
        """Return the cached value or :data:`MISSING`; update policy state."""

    @abc.abstractmethod
    def _admit(self, key: Hashable, value: Any) -> None:
        """Insert-or-decline hook; called only when ``capacity > 0``."""

    @abc.abstractmethod
    def _invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if cached; return True when something was dropped."""

    @abc.abstractmethod
    def _resize(self, capacity: int) -> None:
        """Apply a capacity change (evict as needed)."""

    # -------------------------------------------------------------- helpers

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self._capacity}, len={len(self)})"
