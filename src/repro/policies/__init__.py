"""Front-end cache replacement policies: the paper's full comparison set.

* :class:`~repro.policies.lru.LRUCache` — recency only, O(1).
* :class:`~repro.policies.lfu.LFUCache` — in-cache frequency, O(log C).
* :class:`~repro.policies.arc.ARCCache` — ARC with ghost lists and
  self-tuning recency/frequency split.
* :class:`~repro.policies.lruk.LRUKCache` — LRU-K with retained history
  (LRU-2 in the paper's experiments).
* :class:`~repro.policies.perfect.PerfectCache` — the TPC oracle.
* :class:`~repro.policies.nullcache.NullCache` — the no-cache baseline.
* :class:`~repro.policies.adaptive.AdaptiveArbiter` — adaptive arbitration
  over the whole set via ghost shadow caches (DESIGN.md §14).
* CoT itself lives in :class:`repro.core.cache.CoTCache` and implements the
  same :class:`~repro.policies.base.CachePolicy` interface.
"""

from repro.policies.adaptive import AdaptiveArbiter, ArbiterEpoch
from repro.policies.arc import ARCCache
from repro.policies.base import MISSING, CachePolicy
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.lruk import LRUKCache
from repro.policies.nullcache import NullCache
from repro.policies.perfect import PerfectCache
from repro.policies.registry import POLICY_NAMES, make_policy, register_policy
from repro.policies.stats import CacheStats
from repro.policies.tracked_lru import TrackedLRUCache

__all__ = [
    "MISSING",
    "AdaptiveArbiter",
    "ArbiterEpoch",
    "CachePolicy",
    "CacheStats",
    "LRUCache",
    "LFUCache",
    "ARCCache",
    "LRUKCache",
    "PerfectCache",
    "NullCache",
    "TrackedLRUCache",
    "POLICY_NAMES",
    "make_policy",
    "register_policy",
]
