"""Least-Frequently-Used replacement (Section 3 baseline).

Implemented the way the paper describes it — a min-heap over in-cache
frequencies, O(log C) per access. Frequency state exists only for cached
keys, which is precisely the limitation the paper highlights: LFU "cannot
develop a wider perspective about the hotness distribution outside of its
static cache size", and old frequency builds up with no aging.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.core.heap import IndexedMinHeap
from repro.policies.base import MISSING, CachePolicy

__all__ = ["LFUCache"]


class LFUCache(CachePolicy):
    """In-cache LFU using an indexed min-heap keyed by access frequency.

    Newly admitted keys start at frequency 1; the heap root (the least
    frequently used cached key) is the eviction victim. Ties are broken by
    insertion order (older entries evicted first), which matches the usual
    min-heap implementation the paper assumes.
    """

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._heap: IndexedMinHeap[Hashable] = IndexedMinHeap()
        self._values: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(list(self._values))

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(list(self._values.items()))

    def frequency_of(self, key: Hashable) -> float:
        """Current in-cache frequency counter of ``key`` (test hook)."""
        return self._heap.priority_of(key)

    def _lookup(self, key: Hashable) -> Any:
        if key not in self._values:
            return MISSING
        self._heap.update_delta(key, 1.0)
        return self._values[key]

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            self._heap.update_delta(key, 1.0)
            return
        if len(self._values) >= self._capacity:
            victim, _freq = self._heap.pop()
            del self._values[victim]
            self.stats.record_eviction()
            self._notify_evicted(victim)
        self._heap.push(key, 1.0)
        self._values[key] = value
        self.stats.record_insertion()

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Batched read-only stream: lookup + admit-on-miss, loop-inlined.

        Per-key semantics are exactly the base implementation's; the
        method/attribute resolution and stats calls are hoisted so the
        shadow simulations of the adaptive arbiter stay cheap.
        """
        values = self._values
        heap = self._heap
        bump = heap.update_delta
        push = heap.push
        pop = heap.pop
        cstat = self.stats
        capacity = self._capacity
        for key in keys:
            if key in values:
                bump(key, 1.0)
                cstat.hits += 1
                cstat.epoch_hits += 1
                continue
            cstat.misses += 1
            cstat.epoch_misses += 1
            if capacity == 0:
                continue
            if len(values) >= capacity:
                victim, _freq = pop()
                del values[victim]
                cstat.evictions += 1
                self._notify_evicted(victim)
            push(key, 1.0)
            values[key] = key
            cstat.insertions += 1

    def _invalidate(self, key: Hashable) -> bool:
        if key not in self._values:
            return False
        del self._values[key]
        self._heap.remove(key)
        return True

    def _resize(self, capacity: int) -> None:
        while len(self._values) > capacity:
            victim, _freq = self._heap.pop()
            del self._values[victim]
            self.stats.record_eviction()
            self._notify_evicted(victim)
