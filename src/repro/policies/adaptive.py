"""Adaptive policy arbitration over ghost shadow caches (Ditto direction).

No fixed replacement policy survives a non-stationary workload: the CoT
paper's own Algorithm 3 Case 2 (the "Gangnam style" hot-set rotation)
documents one failure mode, and scan floods / diurnal skew shifts supply
others. Ditto (arXiv:2309.10239) shows the practical cure: run *every*
candidate policy as a lightweight shadow simulation fed by a spatial
sample of the access stream (the FastSim idea), score the shadows on
observed hit value, and switch the live policy to the winner.

:class:`AdaptiveArbiter` packages that as a :class:`CachePolicy`, so it
drops anywhere a fixed policy does (policy-stream harnesses, cluster
front ends, the engine's ``PolicySpec`` axis):

* exactly one **live** policy serves traffic at any time; the arbiter
  delegates every public operation to it and keeps cumulative statistics
  across switches;
* one **shadow** per candidate runs at capacity scaled down by the
  sampling rate (SHARDS-style: a ``1/2^s`` spatial sample against a
  ``C/2^s``-line cache estimates the hit rate of a ``C``-line cache) and
  stores the key as its own value — keys and policy metadata only, no
  payloads;
* every ``epoch_length`` accesses the shadows are scored on the
  hit-value ledger of :class:`~repro.core.costaware.CostAwareController`
  (``hit_value`` per hit minus ``line_cost`` rent per line — identical
  rent across candidates, so the ledger ranks by earned value), and the
  live policy is switched with hysteresis (an additive score margin held
  for ``patience`` consecutive epochs). Switching compares shadow to
  shadow — the scaled shadows share a sampling bias that cancels between
  candidates — while the regret counter is charged against the hit value
  the live policy *actually served*;
* a switch performs a **warm handoff**: the incoming policy is seeded
  from the outgoing policy's cached set via
  :meth:`~repro.policies.base.CachePolicy.warm_seed`, and any key the
  incoming policy declines is reported through the arbiter's eviction
  listeners so coherence directories stay exact.

Spatial sampling uses deterministic hashes (multiplicative hashing for
int keys, CRC-32 for strings) — never Python's per-process-randomized
``hash`` — so runs are reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.core.hotness import HotnessModel
from repro.errors import ConfigurationError
from repro.policies.base import MISSING, CachePolicy
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.policies.stats import CacheStats

__all__ = ["AdaptiveArbiter", "ArbiterEpoch", "sample_hash"]

#: Knuth's multiplicative constant (2^32 / phi), for integer key hashing.
_KNUTH = 2654435761
_MASK32 = 0xFFFFFFFF

#: Scalar-path sampled keys are buffered and replayed into the shadows in
#: batches of this size (through the policies' ``run_stream`` fast paths),
#: cutting the per-access shadow cost; any read of shadow state drains the
#: buffer first, so batching never changes a decision.
_SHADOW_FLUSH_BATCH = 256

#: Sampled-key memo bound: the sampling decision per key is immutable, so
#: the arbiter caches it in a plain dict (one dict probe beats recomputing
#: the hash on every access). The memo is dropped wholesale when it would
#: outgrow this many keys — scan-style workloads touch unbounded key
#: ranges exactly once and must not leak memory through the memo.
_SAMPLE_MEMO_LIMIT = 1 << 20


def sample_hash(key: Hashable) -> int:
    """Deterministic 16-bit sampling hash of a cache key.

    Stable across processes and runs (unlike ``hash(str)``): integers go
    through multiplicative hashing (upper halfword, where the mixing
    lives), strings through CRC-32. Anything else hashes its ``repr``.
    """
    if type(key) is int:
        return ((key * _KNUTH) & _MASK32) >> 16
    if type(key) is str:
        return zlib.crc32(key.encode("utf-8")) & 0xFFFF
    return zlib.crc32(repr(key).encode("utf-8")) & 0xFFFF


@dataclass(frozen=True)
class ArbiterEpoch:
    """One arbitration epoch's record (the arbiter's decision trail)."""

    index: int
    live: str
    scores: dict[str, float] = field(default_factory=dict)
    samples: int = 0
    switched_to: str | None = None
    #: hit value the live policy actually served this epoch (the score
    #: challengers had to beat)
    live_score: float = 0.0


class _Shadow:
    """One candidate's scaled-down ghost simulation."""

    __slots__ = ("name", "policy")

    def __init__(self, name: str, policy: CachePolicy) -> None:
        self.name = name
        self.policy = policy


class AdaptiveArbiter(CachePolicy):
    """Serve through one live policy; score every candidate in shadow.

    Parameters
    ----------
    capacity:
        cache-lines of the live policy (shadows are scaled down by the
        sampling rate).
    candidates:
        registry names of the candidate policies (default: the paper's
        comparison set LRU / LFU / ARC / LRU-2 / CoT).
    tracker_capacity:
        CoT tracker / LRU-2 history size for candidates that take one
        (default ``4 * capacity``).
    epoch_length:
        accesses per arbitration epoch.
    sample_shift:
        spatial sampling rate as a power of two: keys whose
        :func:`sample_hash` has ``sample_shift`` trailing zero bits feed
        the shadows (rate ``1/2^sample_shift``); shadow capacity is
        ``capacity >> sample_shift``. ``0`` disables sampling (full-size
        shadows — accurate and expensive). The default (1/64) keeps all
        five shadows together under the perf gate's 15% hot-path budget
        (``run_perf_gate.py --adaptive``) with comfortable noise margin;
        skew amplifies sampled *volume* well past the key-space rate, so
        halving the rate roughly halves the dominant cost term.
    hit_value / line_cost:
        the cost ledger (same units and meaning as
        :class:`~repro.core.costaware.CostAwareController`). Shadow
        epoch score = ``hit_value * hit_rate - line_cost *
        lines / samples``; rent is identical across candidates, so it
        shifts, never reorders, the ranking.
    switch_margin:
        hysteresis: a challenger's shadow must beat the live candidate's
        shadow score by ``switch_margin * hit_value`` (additive, in
        score units) to start a switch.
    patience:
        consecutive epochs the same challenger must hold the margin
        before the switch is executed.
    min_samples:
        epochs with fewer sampled accesses than this make no decision
        (scores too noisy to act on).
    initial:
        starting live policy (default: first candidate).
    """

    name = "adaptive"

    def __init__(
        self,
        capacity: int,
        *,
        candidates: Sequence[str] = POLICY_NAMES,
        tracker_capacity: int | None = None,
        epoch_length: int = 2048,
        sample_shift: int = 6,
        hit_value: float = 1.0,
        line_cost: float = 0.05,
        switch_margin: float = 0.02,
        patience: int = 1,
        min_samples: int = 8,
        initial: str | None = None,
        model: HotnessModel | None = None,
        k: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not candidates:
            raise ConfigurationError("at least one candidate policy is required")
        if len(set(candidates)) != len(candidates):
            raise ConfigurationError("candidate names must be unique")
        if epoch_length < 1:
            raise ConfigurationError("epoch_length must be >= 1")
        if not 0 <= sample_shift <= 16:
            raise ConfigurationError("sample_shift must be in [0, 16]")
        if hit_value <= 0:
            raise ConfigurationError("hit_value must be > 0")
        if line_cost < 0:
            raise ConfigurationError("line_cost must be >= 0")
        if switch_margin < 0:
            raise ConfigurationError("switch_margin must be >= 0")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        self._candidates = tuple(candidates)
        self._tracker_capacity = (
            tracker_capacity if tracker_capacity is not None else 4 * capacity
        )
        self._model = model
        self._k = k
        self._epoch_length = epoch_length
        self._sample_shift = sample_shift
        self._sample_mask = (1 << sample_shift) - 1
        self.hit_value = hit_value
        self.line_cost = line_cost
        self.switch_margin = switch_margin
        self.patience = patience
        self.min_samples = min_samples

        self._live_name = initial if initial is not None else self._candidates[0]
        if self._live_name not in self._candidates:
            raise ConfigurationError(
                f"initial policy {self._live_name!r} is not a candidate"
            )
        self._live = self._build_full(self._live_name)
        # The live policy shares the arbiter's listener list by identity,
        # so listeners registered on the arbiter (coherence directories)
        # hear live-policy evictions even across switches.
        self._live.eviction_listeners = self.eviction_listeners
        self._shadows = [
            _Shadow(name, self._build_shadow(name)) for name in self._candidates
        ]
        self._clock = 0
        self._epoch_samples = 0
        self.samples = 0
        self.epochs = 0
        self.switches = 0
        self.regret = 0.0
        self._pending_name: str | None = None
        self._pending_epochs = 0
        self._sample_memo: dict[Hashable, bool] = {}
        #: sampled keys not yet replayed into the shadows. Scalar accesses
        #: buffer here and flush through the shadows' batched ``run_stream``
        #: fast paths; the buffer is drained before anything reads or
        #: mutates shadow state (epoch close, invalidate, resize), so the
        #: deferral is unobservable.
        self._shadow_pending: list[Hashable] = []
        self._live_hits_mark = 0
        self._live_misses_mark = 0
        self.history: list[ArbiterEpoch] = []

    # --------------------------------------------------------- construction

    def _build_full(self, name: str) -> CachePolicy:
        return make_policy(
            name,
            self._capacity,
            tracker_capacity=self._tracker_capacity,
            model=self._model,
            k=self._k,
        )

    def _shadow_sizes(self, capacity: int) -> tuple[int, int]:
        cache = max(1, capacity >> self._sample_shift)
        tracker = max(cache + 1, self._tracker_capacity >> self._sample_shift)
        return cache, tracker

    def _build_shadow(self, name: str) -> CachePolicy:
        cache, tracker = self._shadow_sizes(self._capacity)
        return make_policy(
            name, cache, tracker_capacity=tracker, model=self._model, k=self._k
        )

    # ----------------------------------------------------------- inspection

    @property
    def candidates(self) -> tuple[str, ...]:
        """Candidate policy names, in registry order."""
        return self._candidates

    @property
    def live_name(self) -> str:
        """Name of the policy currently serving traffic."""
        return self._live_name

    @property
    def live_policy(self) -> CachePolicy:
        """The policy instance currently serving traffic (test hook)."""
        return self._live

    @property
    def epoch_length(self) -> int:
        """Accesses per arbitration epoch."""
        return self._epoch_length

    @property
    def sample_rate(self) -> float:
        """Fraction of accesses fed to the shadows."""
        return 1.0 / (1 << self._sample_shift)

    def shadow_hit_rates(self) -> dict[str, float]:
        """Lifetime shadow hit rate per candidate (telemetry surface)."""
        self._flush_shadows()
        return {s.name: s.policy.stats.hit_rate for s in self._shadows}

    # ------------------------------------------------- stats across switches

    @property
    def stats(self) -> CacheStats:  # type: ignore[override]
        """Cumulative serving statistics: retired live policies + current."""
        live = self._live.stats
        merged = CacheStats(
            hits=self._retired.hits + live.hits,
            misses=self._retired.misses + live.misses,
            insertions=self._retired.insertions + live.insertions,
            evictions=self._retired.evictions + live.evictions,
            invalidations=self._retired.invalidations + live.invalidations,
            epoch_hits=self._retired.epoch_hits + live.epoch_hits,
            epoch_misses=self._retired.epoch_misses + live.epoch_misses,
        )
        return merged

    @stats.setter
    def stats(self, value: CacheStats) -> None:
        # Absorbs the base-class initialisation; the accumulator holds the
        # counters of every retired live policy.
        self._retired = value

    # -------------------------------------------------------- the fast paths

    def _sampled(self, key: Hashable) -> bool:
        memo = self._sample_memo
        flag = memo.get(key)
        if flag is None:
            if len(memo) >= _SAMPLE_MEMO_LIMIT:
                memo.clear()
            memo[key] = flag = (sample_hash(key) & self._sample_mask) == 0
        return flag

    def _flush_shadows(self) -> None:
        """Replay buffered sampled keys into every shadow (ghost entries)."""
        pending = self._shadow_pending
        if not pending:
            return
        for shadow in self._shadows:
            shadow.policy.run_stream(pending)
        pending.clear()

    def _tick(self, key: Hashable) -> None:
        """One serving access: advance the epoch clock, sample, buffer.

        Body duplicated inline in :meth:`lookup` and :meth:`get_or_admit`
        (the per-access method call is measurable on the serving path);
        keep the three in sync.
        """
        if self._clock >= self._epoch_length:
            self._close_epoch()
        self._clock += 1
        memo = self._sample_memo
        flag = memo.get(key)
        if flag is None:
            if len(memo) >= _SAMPLE_MEMO_LIMIT:
                memo.clear()
            memo[key] = flag = (sample_hash(key) & self._sample_mask) == 0
        if flag:
            self._epoch_samples += 1
            self.samples += 1
            pending = self._shadow_pending
            pending.append(key)
            if len(pending) >= _SHADOW_FLUSH_BATCH:
                self._flush_shadows()

    def lookup(self, key: Hashable) -> Any:
        # inlined _tick
        if self._clock >= self._epoch_length:
            self._close_epoch()
        self._clock += 1
        memo = self._sample_memo
        flag = memo.get(key)
        if flag is None:
            if len(memo) >= _SAMPLE_MEMO_LIMIT:
                memo.clear()
            memo[key] = flag = (sample_hash(key) & self._sample_mask) == 0
        if flag:
            self._epoch_samples += 1
            self.samples += 1
            pending = self._shadow_pending
            pending.append(key)
            if len(pending) >= _SHADOW_FLUSH_BATCH:
                self._flush_shadows()
        return self._live.lookup(key)

    def admit(self, key: Hashable, value: Any) -> None:
        self._live.admit(key, value)

    def get_or_admit(self, key: Hashable, loader: Callable[[Hashable], Any]) -> Any:
        # inlined _tick
        if self._clock >= self._epoch_length:
            self._close_epoch()
        self._clock += 1
        memo = self._sample_memo
        flag = memo.get(key)
        if flag is None:
            if len(memo) >= _SAMPLE_MEMO_LIMIT:
                memo.clear()
            memo[key] = flag = (sample_hash(key) & self._sample_mask) == 0
        if flag:
            self._epoch_samples += 1
            self.samples += 1
            pending = self._shadow_pending
            pending.append(key)
            if len(pending) >= _SHADOW_FLUSH_BATCH:
                self._flush_shadows()
        return self._live.get_or_admit(key, loader)

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        keys = keys if isinstance(keys, (list, tuple)) else list(keys)
        self._flush_shadows()  # keep scalar-buffered accesses ordered first
        mask = self._sample_mask
        memo = self._sample_memo
        n = len(keys)
        i = 0
        while i < n:
            if self._clock >= self._epoch_length:
                self._close_epoch()
            take = min(n - i, self._epoch_length - self._clock)
            segment = keys[i : i + take]
            self._clock += take
            try:
                # Happy path: every key's sampling decision is memoized —
                # one C-level dict probe per access.
                sampled = [key for key in segment if memo[key]]
            except KeyError:
                if len(memo) >= _SAMPLE_MEMO_LIMIT:
                    memo.clear()
                for key in segment:
                    if key not in memo:
                        memo[key] = (sample_hash(key) & mask) == 0
                sampled = [key for key in segment if memo[key]]
            if sampled:
                self._epoch_samples += len(sampled)
                self.samples += len(sampled)
                for shadow in self._shadows:
                    shadow.policy.run_stream(sampled)
            self._live.run_stream(segment)
            i += take

    def invalidate(self, key: Hashable) -> None:
        self._live.invalidate(key)
        if self._sampled(key):
            self._flush_shadows()
            for shadow in self._shadows:
                shadow.policy.invalidate(key)

    def record_update(self, key: Hashable) -> None:
        self._live.record_update(key)
        if self._sampled(key):
            self._flush_shadows()
            for shadow in self._shadows:
                shadow.policy.record_update(key)

    def resize(self, capacity: int) -> None:
        super().resize(capacity)
        self._flush_shadows()
        cache, _tracker = self._shadow_sizes(capacity)
        for shadow in self._shadows:
            shadow.policy.resize(cache)

    # ------------------------------------------------------------ arbitration

    def _score(self, shadow: _Shadow) -> float:
        stats = shadow.policy.stats
        accesses = stats.epoch_accesses
        if accesses == 0:
            return 0.0
        rate = stats.epoch_hits / accesses
        rent = self.line_cost * shadow.policy.capacity / accesses
        return self.hit_value * rate - rent

    def _live_score(self) -> float:
        """Hit value the live policy actually served this epoch.

        Used for the regret counter and the epoch record — deliberately
        *not* the live candidate's shadow score, since after a warm
        handoff the live instance can lag its own steady-state
        simulation (the handoff transfers cached keys but not hotness
        or recency history) and regret should reflect reality.
        """
        stats = self._live.stats
        hits = stats.hits - self._live_hits_mark
        accesses = hits + (stats.misses - self._live_misses_mark)
        if accesses == 0:
            return 0.0
        rent = self.line_cost * self._live.capacity / accesses
        return self.hit_value * (hits / accesses) - rent

    def _mark_live(self) -> None:
        self._live_hits_mark = self._live.stats.hits
        self._live_misses_mark = self._live.stats.misses

    def close_epoch(self) -> ArbiterEpoch | None:
        """Force an arbitration decision now (end-of-run flush).

        Returns the epoch record, or ``None`` when no accesses arrived
        since the previous boundary.
        """
        if self._clock == 0:
            return None
        return self._close_epoch()

    def _close_epoch(self) -> ArbiterEpoch:
        self._flush_shadows()
        scores = {s.name: self._score(s) for s in self._shadows}
        live_score = self._live_score()
        samples = self._epoch_samples
        switched_to: str | None = None
        if samples >= self.min_samples:
            best_name = self._live_name
            best_score = scores[self._live_name]
            for name in self._candidates:
                if scores[name] > best_score:
                    best_name, best_score = name, scores[name]
            # Regret is charged against what the live policy actually
            # served; the switch decision compares shadow to shadow,
            # because the scaled-down shadows share a common sampling
            # bias that cancels between candidates but not against the
            # live policy's full-size reality.
            self.regret += max(0.0, best_score - live_score) * self._clock
            if (
                best_name != self._live_name
                and best_score - scores[self._live_name]
                > self.switch_margin * self.hit_value
            ):
                if self._pending_name == best_name:
                    self._pending_epochs += 1
                else:
                    self._pending_name = best_name
                    self._pending_epochs = 1
                if self._pending_epochs >= self.patience:
                    self._switch(best_name)
                    switched_to = best_name
            else:
                self._pending_name = None
                self._pending_epochs = 0
        record = ArbiterEpoch(
            index=self.epochs,
            live=switched_to or self._live_name,
            scores=scores,
            samples=samples,
            switched_to=switched_to,
            live_score=live_score,
        )
        self.history.append(record)
        self.epochs += 1
        self._clock = 0
        self._epoch_samples = 0
        self._mark_live()
        for shadow in self._shadows:
            shadow.policy.stats.reset_epoch()
        return record

    def _switch(self, name: str) -> None:
        outgoing = self._live
        incoming = self._build_full(name)
        incoming.warm_seed(outgoing.cached_items())
        # Keys the incoming policy declined (or evicted again during the
        # seed) have silently left the front-end cache: report them so
        # coherence directories stay exact. Listeners are attached only
        # after seeding, so seed-time churn is not double-reported.
        for key in outgoing.cached_keys():
            if key not in incoming:
                self._notify_evicted(key)
        incoming.eviction_listeners = self.eviction_listeners
        retired = outgoing.stats
        self._retired.hits += retired.hits
        self._retired.misses += retired.misses
        self._retired.insertions += retired.insertions
        self._retired.evictions += retired.evictions
        self._retired.invalidations += retired.invalidations
        self._retired.epoch_hits += retired.epoch_hits
        self._retired.epoch_misses += retired.epoch_misses
        self._live = incoming
        self._live_name = name
        self.switches += 1
        self._pending_name = None
        self._pending_epochs = 0

    # ----------------------------------------------------------- delegation

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._live

    def cached_keys(self) -> Iterator[Hashable]:
        return self._live.cached_keys()

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        return self._live.cached_items()

    def _lookup(self, key: Hashable) -> Any:
        return self._live._lookup(key)

    def _admit(self, key: Hashable, value: Any) -> None:
        self._live._admit(key, value)

    def _invalidate(self, key: Hashable) -> bool:
        return self._live._invalidate(key)

    def _resize(self, capacity: int) -> None:
        self._live.resize(capacity)

    def __repr__(self) -> str:
        return (
            f"AdaptiveArbiter(live={self._live_name!r}, "
            f"candidates={self._candidates}, capacity={self._capacity}, "
            f"epoch={self._epoch_length}, rate=1/{1 << self._sample_shift})"
        )
