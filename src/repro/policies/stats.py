"""Hit/miss accounting shared by every front-end cache policy."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass(slots=True)
class CacheStats:
    """Lifetime and per-epoch counters for one front-end cache.

    ``hits``/``misses`` accumulate over the cache's lifetime;
    ``epoch_hits``/``epoch_misses`` are reset by :meth:`reset_epoch` and feed
    CoT's per-epoch quality signals (``alpha_c``). Slotted: two counter
    writes land here on every single access.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    epoch_hits: int = 0
    epoch_misses: int = 0
    _ignored: int = field(default=0, repr=False)

    def record_hit(self) -> None:
        """Count one lookup served from the local cache."""
        self.hits += 1
        self.epoch_hits += 1

    def record_miss(self) -> None:
        """Count one lookup that had to go to the back end."""
        self.misses += 1
        self.epoch_misses += 1

    def record_insertion(self) -> None:
        """Count one key admitted into the cache."""
        self.insertions += 1

    def record_eviction(self) -> None:
        """Count one key evicted to make room."""
        self.evictions += 1

    def record_invalidation(self) -> None:
        """Count one key dropped because of an update/delete."""
        self.invalidations += 1

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate in [0, 1] (0.0 before any access)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def epoch_accesses(self) -> int:
        """Lookups observed since the last epoch reset."""
        return self.epoch_hits + self.epoch_misses

    @property
    def epoch_hit_rate(self) -> float:
        """Hit rate since the last epoch reset."""
        total = self.epoch_accesses
        return self.epoch_hits / total if total else 0.0

    def reset_epoch(self) -> None:
        """Zero the per-epoch counters (lifetime counters are kept)."""
        self.epoch_hits = 0
        self.epoch_misses = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = 0
        self.insertions = self.evictions = self.invalidations = 0
        self.reset_epoch()
