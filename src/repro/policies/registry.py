"""Name-based construction of cache policies for the experiment harnesses.

Experiment configs refer to policies by the short names used in the paper's
plots (``lru``, ``lfu``, ``arc``, ``lru2``, ``cot``, ``none``); the registry
turns a name plus sizing parameters into a ready policy instance, applying
the paper's pairing rule that LRU-2's history size equals CoT's tracker
size.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.core.cache import CoTCache
from repro.core.hotness import HotnessModel
from repro.errors import ConfigurationError
from repro.policies.arc import ARCCache
from repro.policies.base import CachePolicy
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.lruk import LRUKCache
from repro.policies.nullcache import NullCache
from repro.policies.perfect import PerfectCache

__all__ = ["POLICY_NAMES", "make_policy", "register_policy"]

PolicyFactory = Callable[..., CachePolicy]

_FACTORIES: dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a custom policy factory under ``name`` (extension hook)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"policy name already registered: {name}")
    _FACTORIES[name] = factory


def make_policy(
    name: str,
    capacity: int,
    *,
    tracker_capacity: int | None = None,
    model: HotnessModel | None = None,
    hot_keys: Iterable[Hashable] | None = None,
    k: int = 2,
) -> CachePolicy:
    """Construct the policy ``name`` with ``capacity`` cache-lines.

    Parameters
    ----------
    tracker_capacity:
        CoT's ``K`` / LRU-2's history size. The paper always configures
        LRU-2's history equal to CoT's tracker, so one knob drives both.
    model:
        hotness model for CoT (ignored by other policies).
    hot_keys:
        required for ``perfect``: the true hottest keys, descending.
    k:
        the K of LRU-K (default 2, as evaluated in the paper).
    """
    lowered = name.lower()
    if lowered in _FACTORIES:
        return _FACTORIES[lowered](
            capacity,
            tracker_capacity=tracker_capacity,
            model=model,
            hot_keys=hot_keys,
            k=k,
        )
    if lowered == "lru":
        return LRUCache(capacity)
    if lowered == "lfu":
        return LFUCache(capacity)
    if lowered == "arc":
        return ARCCache(capacity)
    if lowered in ("lru2", "lruk", "lru-2", "lru-k"):
        history = tracker_capacity if tracker_capacity is not None else 2 * capacity
        return LRUKCache(capacity, k=k, history_capacity=history)
    if lowered == "cot":
        return CoTCache(capacity, tracker_capacity=tracker_capacity, model=model)
    if lowered in ("tracked_lru", "tracked-lru"):
        from repro.policies.tracked_lru import TrackedLRUCache

        return TrackedLRUCache(
            capacity, tracker_capacity=tracker_capacity, model=model
        )
    if lowered == "adaptive":
        from repro.policies.adaptive import AdaptiveArbiter

        return AdaptiveArbiter(
            capacity, tracker_capacity=tracker_capacity, model=model, k=k
        )
    if lowered in ("none", "nocache", "null"):
        return NullCache()
    if lowered in ("perfect", "tpc"):
        if hot_keys is None:
            raise ConfigurationError("perfect cache requires hot_keys")
        return PerfectCache(capacity, hot_keys)
    raise ConfigurationError(f"unknown policy name: {name!r}")


#: The policy names of the paper's comparison set, in plot order.
POLICY_NAMES = ("lru", "lfu", "arc", "lru2", "cot")
