"""Ablation policy: CoT's admission filter over an LRU-ordered cache.

DESIGN.md decision #1 asks what CoT's *eviction* order contributes beyond
its *admission* filter. This policy keeps Algorithm 2's admission rule —
a key enters only if its tracked hotness beats the coldest cached key's —
but orders the cache by **recency** instead of hotness, evicting LRU.

If CoT's win came only from refusing cold keys, this variant would match
it; the gap between the two (``benchmarks/bench_ablation_cache_order.py``)
isolates the value of evicting by hotness (exact top-C maintenance).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.core.hotness import AccessType, HotnessModel
from repro.core.tracker import CoTTracker
from repro.errors import ConfigurationError
from repro.policies.base import MISSING, CachePolicy

__all__ = ["TrackedLRUCache"]


class TrackedLRUCache(CachePolicy):
    """Space-saving-filtered admission + LRU eviction (ablation).

    The tracker still maintains the ``S_c``/``S_{k-c}`` split so the
    admission threshold (``h_min``) is identical to CoT's; only the
    eviction *victim* differs: least-recently-used instead of coldest.
    """

    name = "tracked_lru"

    def __init__(
        self,
        capacity: int,
        tracker_capacity: int | None = None,
        model: HotnessModel | None = None,
    ) -> None:
        super().__init__(capacity)
        if tracker_capacity is None:
            tracker_capacity = max(2, 2 * capacity)
        if tracker_capacity <= capacity:
            raise ConfigurationError("tracker capacity must exceed cache capacity")
        self._tracker: CoTTracker[Hashable] = CoTTracker(
            tracker_capacity, capacity, model
        )
        self._values: OrderedDict[Hashable, Any] = OrderedDict()

    @property
    def tracker_capacity(self) -> int:
        """``K`` — tracker capacity."""
        return self._tracker.tracker_capacity

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def cached_keys(self) -> Iterator[Hashable]:
        return iter(list(self._values))

    def _lookup(self, key: Hashable) -> Any:
        self._tracker.track(key, AccessType.READ)
        if key in self._values:
            self._values.move_to_end(key)
            return self._values[key]
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            self._values.move_to_end(key)
            return
        if not self._tracker.qualifies_for_cache(key):
            return
        if len(self._values) >= self._capacity:
            victim, _value = self._values.popitem(last=False)  # LRU victim
            self._tracker.demote(victim)
            self.stats.record_eviction()
            self._notify_evicted(victim)
        self._tracker.promote(key)
        self._values[key] = value
        self.stats.record_insertion()

    def record_update(self, key: Hashable) -> None:
        self._tracker.track(key, AccessType.UPDATE)
        self.invalidate(key)

    def _invalidate(self, key: Hashable) -> bool:
        if key not in self._values:
            return False
        del self._values[key]
        if self._tracker.is_cached(key):
            self._tracker.demote(key)
        return True

    def _resize(self, capacity: int) -> None:
        while len(self._values) > capacity:
            victim, _value = self._values.popitem(last=False)
            self._tracker.demote(victim)
            self.stats.record_eviction()
            self._notify_evicted(victim)
        tracker_capacity = max(self._tracker.tracker_capacity, capacity + 1)
        self._tracker.resize(tracker_capacity, capacity)
