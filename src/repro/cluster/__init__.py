"""The back-end substrate: consistent hashing, cache shards, storage, and
the client-driven front-end protocol (paper Section 2's system model)."""

from repro.cluster.backend import BackendCacheServer, BackendStats
from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector, FaultStats, ShardFaultProfile
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.invalidation import (
    CoherenceMixin,
    CoherentFrontEndClient,
    InvalidationBus,
    InvalidationStats,
)
from repro.cluster.loadmonitor import LoadMonitor, load_imbalance
from repro.cluster.replication import (
    HotKeyRouter,
    ReplicaEntry,
    ReplicationConfig,
    ReplicationStats,
)
from repro.cluster.retry import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ClusterGuard,
    RetryPolicy,
    RetryStats,
)
from repro.cluster.storage import PersistentStore, StorageStats

__all__ = [
    "BackendCacheServer",
    "BackendStats",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ClusterGuard",
    "FrontEndClient",
    "CacheCluster",
    "CoherenceMixin",
    "CoherentFrontEndClient",
    "ConsistentHashRing",
    "FaultInjector",
    "FaultStats",
    "HotKeyRouter",
    "InvalidationBus",
    "InvalidationStats",
    "LoadMonitor",
    "ReplicaEntry",
    "ReplicationConfig",
    "ReplicationStats",
    "load_imbalance",
    "PersistentStore",
    "RetryPolicy",
    "RetryStats",
    "ShardFaultProfile",
    "StorageStats",
]
