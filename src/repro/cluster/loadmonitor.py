"""Front-end-local back-end load monitoring.

CoT is decentralized: each front end measures *its own contribution* to
back-end load-imbalance from the lookups it sends (Section 4.1 defines
``I_c`` as the ratio between the most and least loaded back-end server *as
observed at this front end* during an epoch). The paper's testbed patches
spymemcached to do this; here the front-end client records every lookup it
routes.

Both lifetime and per-epoch windows are kept: lifetime counters feed the
whole-experiment imbalance numbers of Figure 3 / Table 2, the epoch window
feeds Algorithm 3.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ClusterError

__all__ = ["LoadMonitor", "load_imbalance"]


def load_imbalance(loads: Mapping[str, int] | Iterable[int]) -> float:
    """The paper's load-imbalance metric: max load / min load.

    A server that received zero lookups is floored at 1 lookup so the
    ratio stays finite (an idle server is "infinitely" imbalanced only in
    the limit; the floor keeps epochs with tiny traffic comparable).
    Returns 1.0 for empty input — a vacuously balanced system.
    """
    values = list(loads.values()) if isinstance(loads, Mapping) else list(loads)
    if not values:
        return 1.0
    highest = max(values)
    if highest <= 0:
        return 1.0
    lowest = max(min(values), 1)
    return highest / lowest


class LoadMonitor:
    """Per-back-end lookup counters with lifetime and epoch windows."""

    def __init__(self, servers: Iterable[str]) -> None:
        server_list = list(servers)
        if not server_list:
            raise ClusterError("load monitor needs at least one server")
        self._total: dict[str, int] = {s: 0 for s in server_list}
        self._epoch: dict[str, int] = {s: 0 for s in server_list}
        #: servers first observed inside the current epoch (mid-epoch
        #: joiners): their partial counts are not representative of a full
        #: epoch, so churn-safe consumers exclude them for one epoch.
        self._epoch_new: set[str] = set()
        #: reads served by storage fallback because the owning shard was
        #: unavailable, per shard (graceful-degradation instrumentation)
        self._degraded: dict[str, int] = {}
        self._epoch_degraded = 0
        #: accounted extra latency of degraded reads (seconds)
        self.fallback_latency_total = 0.0

    # ------------------------------------------------------------------ api

    @property
    def servers(self) -> tuple[str, ...]:
        """Monitored server ids."""
        return tuple(self._total)

    @property
    def epoch_window(self) -> Mapping[str, int]:
        """The live per-epoch load dict (read-only view for hot paths).

        Two-choices routing compares two shard loads per replicated read;
        going through :meth:`epoch_loads`'s defensive copy would make the
        comparison O(shards) per read. The returned mapping is the
        monitor's own dict — callers may bind it once (its identity is
        stable across :meth:`reset_epoch`/:meth:`reset`) but must never
        mutate it.
        """
        return self._epoch

    def epoch_load(self, server: str) -> int:
        """This epoch's lookup count for one shard (0 if never seen)."""
        return self._epoch.get(server, 0)

    def record_lookup(self, server: str) -> None:
        """Count one lookup routed to ``server``.

        Servers unknown at construction are registered on first sight —
        the caching layer's topology changes under the front end when the
        cluster scales out, and consistent hashing will route lookups to
        the new shard before any reconfiguration notice.
        """
        if server not in self._total:
            self._total[server] = 0
            self._epoch[server] = 0
            self._epoch_new.add(server)
        self._total[server] += 1
        self._epoch[server] += 1

    def record_degraded(self, server: str, penalty: float = 0.0) -> None:
        """Count one degraded read: ``server`` was unavailable and the
        value was served from persistent storage instead. ``penalty`` is
        the extra latency the fallback cost (accounted, not slept)."""
        self._degraded[server] = self._degraded.get(server, 0) + 1
        self._epoch_degraded += 1
        if penalty:
            self.fallback_latency_total += penalty

    def total_loads(self) -> dict[str, int]:
        """Lifetime lookup counts per server."""
        return dict(self._total)

    def epoch_loads(self) -> dict[str, int]:
        """Lookup counts per server since the last epoch reset."""
        return dict(self._epoch)

    def total_lookups(self) -> int:
        """Lifetime lookups across all servers."""
        return sum(self._total.values())

    def epoch_lookups(self) -> int:
        """Epoch-window lookups across all servers."""
        return sum(self._epoch.values())

    def epoch_new_servers(self) -> frozenset[str]:
        """Servers first seen during the current epoch (mid-epoch joiners)."""
        return frozenset(self._epoch_new)

    def degraded_reads(self) -> int:
        """Lifetime reads served by storage fallback (all servers)."""
        return sum(self._degraded.values())

    def epoch_degraded(self) -> int:
        """Degraded reads since the last epoch reset."""
        return self._epoch_degraded

    def degraded_by_server(self) -> dict[str, int]:
        """Lifetime degraded-read counts per unavailable shard."""
        return dict(self._degraded)

    def imbalance(self) -> float:
        """Lifetime ``I`` = max/min over per-server lookup counts."""
        return load_imbalance(self._total)

    def epoch_imbalance(self) -> float:
        """``I_c`` over the current epoch window (Algorithm 3 input)."""
        return load_imbalance(self._epoch)

    def forget_server(self, server: str) -> None:
        """Purge a removed shard's lookup state (scale-in housekeeping).

        Both the lifetime counter and the epoch window are dropped:
        leaving the lifetime entry in place would make any later shard
        that reuses the id look *already known* to
        :meth:`record_lookup`, so it would skip the mid-epoch-joiner
        marking and splice its partial window onto the dead
        incarnation's counts — the double-count behind phantom
        imbalance spikes. With the entry gone, a reincarnated id
        registers as a fresh joiner like any other new shard.
        Degraded-read history (:meth:`degraded_by_server`) is kept — it
        is a lifetime diagnostic of what happened, not routing state.
        """
        self._total.pop(server, None)
        self._epoch.pop(server, None)
        self._epoch_new.discard(server)

    def reset_server_window(self, server: str) -> None:
        """Zero one shard's *epoch* window (cold-revival accounting fix).

        A shard that revives cold starts from an empty cache and zero
        real load, but its epoch counter still holds the lookups routed
        at it before (and during) the outage. Leaving those in place
        skews power-of-two-choices routing: the revived shard looks
        loaded and is shunned (or, had it been idle pre-kill, looks cold
        and is flooded). Lifetime counters are left untouched — they are
        the whole-experiment measurement, not the routing signal.
        """
        if server in self._epoch:
            self._epoch[server] = 0

    def reset_epoch(self) -> None:
        """Start a new epoch window."""
        for server in self._epoch:
            self._epoch[server] = 0
        self._epoch_new.clear()
        self._epoch_degraded = 0

    def reset(self) -> None:
        """Zero everything."""
        for server in self._total:
            self._total[server] = 0
        self._degraded.clear()
        self.fallback_latency_total = 0.0
        self.reset_epoch()
