"""Write-path coherence strategies for the front-end client.

The classic client-driven protocol (Section 2 of the paper) hard-codes
one write discipline: *cache-aside* — write storage, invalidate the
local copy, delete the shard copy. This module lifts that discipline
into a strategy object so a topology can pick its write-path coherence
mode declaratively (``WriteSpec`` on ``TopologySpec``):

* :class:`CacheAsideWritePolicy` — the paper's protocol, verbatim. A
  :class:`~repro.cluster.client.FrontEndClient` with **no** policy
  attached runs the same code inline, byte-for-byte; attaching this
  class is observationally identical (the write-smoke stage diffs it).
* :class:`WriteThroughPolicy` — the authoritative storage write plus a
  *SET* (not a delete) on the owning shard, so the caching layer holds
  the fresh value the moment the write is acknowledged. Replicated keys
  fan the SET out to every write target; a SET that cannot land
  quarantines its replica exactly as a failed invalidation does.
* :class:`WriteBehindPolicy` — acknowledged writes land in the shard's
  copy immediately and in a bounded per-shard dirty buffer (the
  stand-in for the shard's write-behind queue); storage sees them when
  the buffer flushes (epoch cadence, or eagerly when the bound is
  hit). Killing a dirty shard freezes its queue; cold revival drops it
  and the dropped writes are accounted as lost — at most
  ``dirty_limit`` per kill, the loss bound ``ext-write`` checks under
  chaos. Graceful scale-in (``remove_server``) drains the departing
  shard's queue instead.
* :class:`TTLWritePolicy` — writes touch *only* storage and advance a
  cluster-wide logical clock; cached copies (shard and local) expire
  lazily ``ttl`` clock ticks after they were filled. No invalidation
  traffic at all; staleness is bounded by the clock instead. Local
  copies hook the per-policy ``eviction_listeners`` anticipated at
  ``repro/policies/base.py`` so stamps die with the copies they cover.

One policy instance is shared by every front end of a run (like the
hot-key router): the dirty buffers and the logical clock are cluster
agreement state, not per-client state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

from repro.errors import ClusterError, ConfigurationError, ShardUnavailableError
from repro.policies.base import MISSING

if TYPE_CHECKING:  # import cycle: client imports this module
    from repro.cluster.client import FrontEndClient
    from repro.cluster.cluster import CacheCluster

__all__ = [
    "WRITE_MODES",
    "WriteStats",
    "WritePolicy",
    "CacheAsideWritePolicy",
    "WriteThroughPolicy",
    "WriteBehindPolicy",
    "TTLWritePolicy",
    "make_write_policy",
]

#: the write-path coherence modes a ``WriteSpec`` may name
WRITE_MODES = ("cache-aside", "write-through", "write-behind", "ttl")


@dataclass(slots=True)
class WriteStats:
    """Counters for one run's write path (one shared instance per run).

    ``storage_writes`` counts every authoritative storage mutation the
    policy performs (sets and deletes, foreground or flush);
    ``flushed_writes`` is the subset performed by write-behind flushes,
    so ``storage_writes - flushed_writes`` is the *foreground* storage
    cost a client waits on — the quantity the perf gate's modeled
    throughput uses.
    """

    storage_writes: int = 0
    #: shard SETs that landed on the write path (write-through fan-out)
    through_writes: int = 0
    #: writes acknowledged into a dirty buffer
    buffered_writes: int = 0
    #: buffered writes that overwrote an already-dirty entry
    coalesced_writes: int = 0
    #: dirty entries made durable by a flush
    flushed_writes: int = 0
    #: flush passes (cadence, bound-triggered, or final drain)
    flushes: int = 0
    #: flushes forced by a buffer hitting ``dirty_limit``
    bound_flushes: int = 0
    #: acknowledged writes dropped with a dead shard's queue
    lost_writes: int = 0
    #: write-behind writes that fell back to synchronous storage writes
    #: because the owning shard (its queue) was unavailable
    sync_fallbacks: int = 0
    #: cached copies expired by the TTL clock (shard or local)
    ttl_expirations: int = 0
    #: deepest any single shard's dirty buffer ever got
    peak_dirty: int = 0


class WritePolicy:
    """Base strategy: how a front-end write reaches storage and shards.

    Subclasses override :meth:`on_set` / :meth:`on_delete`, which run
    *instead of* the client's inline cache-aside body. The client hands
    itself in, so one shared policy instance serves every front end
    while using each caller's own guard, monitor and router state.
    """

    #: mode name (matches ``WRITE_MODES``)
    mode = "cache-aside"
    #: True when the policy keeps a dirty buffer the runner must flush
    buffered = False
    #: True when the policy needs the client's read-path TTL hooks
    ttl_hooks = False

    def __init__(self) -> None:
        self.stats = WriteStats()
        self._cluster: "CacheCluster | None" = None

    def bind_cluster(self, cluster: "CacheCluster") -> None:
        """Bind the shared cluster (topology listeners register here)."""
        self._cluster = cluster

    # ------------------------------------------------------------ write path

    def on_set(self, client: "FrontEndClient", key: Hashable, value: Any) -> None:
        """Handle one acknowledged write issued through ``client``."""
        raise NotImplementedError

    def on_delete(self, client: "FrontEndClient", key: Hashable) -> None:
        """Handle one acknowledged delete issued through ``client``.

        Deletes are synchronous in every mode (storage delete + local
        and shard invalidation): a delete is a correctness operation —
        "this value must stop being served" — so no mode is allowed to
        keep serving it from a buffer or an unexpired copy.
        """
        self.stats.storage_writes += 1
        client.cluster.storage.delete(key)
        client.policy.invalidate(key)
        client._invalidate_shard(key)

    # ----------------------------------------------------------- maintenance

    def flush(self) -> int:
        """Drain any dirty buffers to storage; returns entries flushed."""
        return 0

    def dirty_depth(self) -> int:
        """Total dirty entries currently buffered (gauge source)."""
        return 0

    def dirty_snapshot(self) -> dict[str, dict[Hashable, Any]]:
        """Per-shard view of the dirty buffers (oracle cross-check)."""
        return {}

    def buffered_value(self, key: Hashable, default: Any = MISSING) -> Any:
        """The pending (unflushed) value of ``key``, if any.

        The read path consults this on a shard-layer miss *before*
        falling back to storage: a dirty entry whose shard copy was
        evicted must be served (and backfilled) from the queue, not
        from the stale durable value.
        """
        return default

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mode={self.mode!r})"


class CacheAsideWritePolicy(WritePolicy):
    """The paper's protocol as an explicit strategy (the default).

    ``on_set`` is the exact body :meth:`FrontEndClient.set` inlines when
    no policy is attached — storage write, local invalidation with the
    CoT update penalty, best-effort shard delete (replica fan-out when
    routed). Attaching it changes no decision and no counter other than
    ``write.*`` accounting.
    """

    mode = "cache-aside"

    def on_set(self, client: "FrontEndClient", key: Hashable, value: Any) -> None:
        self.stats.storage_writes += 1
        client.cluster.storage.set(key, value)
        client.policy.record_update(key)
        client._invalidate_shard(key)


class WriteThroughPolicy(WritePolicy):
    """Storage write plus a shard SET: the layer stays fresh.

    The acknowledged write is durable (storage) *and* present in the
    caching layer, so no later read can observe the pre-write value
    from the owning shard — the "acknowledged write-through writes are
    never served stale" invariant the stateful fuzzer pins. A shard
    that cannot take the SET only misses the refresh (counted with the
    lost invalidations); its stale copy is unreachable while it is down
    and wiped by cold revival, the same argument cache-aside relies on.

    Replicated keys fan the SET out to every write target. A failed
    replica SET quarantines the replica (its copy may be stale) and a
    successful one lifts the quarantine — identical bookkeeping to the
    delete fan-out, because a SET that lands is at least as strong an
    invalidation as a delete.
    """

    mode = "write-through"

    def on_set(self, client: "FrontEndClient", key: Hashable, value: Any) -> None:
        self.stats.storage_writes += 1
        client.cluster.storage.set(key, value)
        client.policy.record_update(key)
        router = client.router
        if router is not None:
            targets = router.write_targets(key)
            if targets:
                self._propagate_replicas(client, key, value, targets)
                return
        server = client.cluster.server_for(key)
        try:
            client.guard.call(server.server_id, lambda: server.set(key, value))
        except ShardUnavailableError:
            client.guard.stats.lost_invalidations += 1
        else:
            self.stats.through_writes += 1

    def _propagate_replicas(
        self,
        client: "FrontEndClient",
        key: Hashable,
        value: Any,
        targets: tuple[str, ...],
    ) -> None:
        """SET fan-out over the write-target set (mirrors the delete fan-out)."""
        router = client.router
        rstats = router.stats
        guard = client.guard
        cluster = client.cluster
        for server_id in targets:
            try:
                server = cluster.server(server_id)
            except ClusterError:
                router.clear_pending(key, server_id)
                continue
            rstats.replica_invalidations += 1
            try:
                guard.call(server_id, lambda s=server: s.set(key, value))
            except ShardUnavailableError:
                guard.stats.lost_invalidations += 1
                rstats.failed_replica_invalidations += 1
                router.quarantine(key, server_id)
            else:
                router.clear_pending(key, server_id)
                self.stats.through_writes += 1


class WriteBehindPolicy(WriteThroughPolicy):
    """Acknowledge into the shard + its write queue; storage lags.

    The per-shard dirty buffer stands in for the shard's write-behind
    queue. An acknowledged write SETs the shard copy (readers see it
    immediately, same fan-out rules as write-through) and enqueues the
    durable write; storage catches up when the buffer flushes — on the
    runner's ``flush_every`` cadence, at the final drain, or eagerly
    when a buffer would exceed ``dirty_limit`` (so no queue ever holds
    more than ``dirty_limit`` acknowledged-but-volatile writes).

    Failure semantics compose with the fault layer:

    * owning shard unavailable → the queue is unreachable; the write
      falls back to a *synchronous* storage write (``sync_fallbacks``),
      superseding any dirty entry it had.
    * shard killed while dirty → its queue freezes with it; flushes
      skip down shards. Cold revival drops the queue and counts the
      entries as ``lost_writes`` — at most ``dirty_limit`` per kill.
    * graceful scale-in (``remove_server``) drains the departing
      shard's queue to storage before the id is forgotten.
    """

    mode = "write-behind"
    buffered = True

    def __init__(self, dirty_limit: int = 64) -> None:
        if dirty_limit < 1:
            raise ConfigurationError("dirty_limit must be >= 1")
        super().__init__()
        self.dirty_limit = dirty_limit
        #: per-shard queue: shard id -> {key: pending value}
        self._buffers: dict[str, dict[Hashable, Any]] = {}
        #: which shard's queue currently holds each dirty key (ring churn
        #: can re-home a key between writes; the superseded entry must be
        #: dropped or an old value could out-flush a newer one)
        self._owner: dict[Hashable, str] = {}

    def bind_cluster(self, cluster: "CacheCluster") -> None:
        super().bind_cluster(cluster)
        cluster.cold_revival_listeners.append(self._on_cold_revival)
        cluster.removal_listeners.append(self._on_server_removed)

    # ------------------------------------------------------------ write path

    def on_set(self, client: "FrontEndClient", key: Hashable, value: Any) -> None:
        client.policy.record_update(key)
        router = client.router
        if router is not None:
            targets = router.write_targets(key)
            if targets:
                # Replicas must receive the *value* (a delete would let a
                # two-choices read miss and backfill the stale durable
                # value from storage before the queue flushes).
                self._propagate_replicas(client, key, value, targets)
                self._enqueue(targets[0], key, value)
                return
        server = client.cluster.server_for(key)
        server_id = server.server_id
        try:
            client.guard.call(server_id, lambda: server.set(key, value))
        except ShardUnavailableError:
            # The shard and its queue are unreachable: acknowledge the
            # write synchronously against storage instead of queueing
            # into a buffer nobody could flush or read through.
            self.stats.sync_fallbacks += 1
            self.stats.storage_writes += 1
            client.cluster.storage.set(key, value)
            self._discard(key)
            return
        self.stats.through_writes += 1
        self._enqueue(server_id, key, value)

    def on_delete(self, client: "FrontEndClient", key: Hashable) -> None:
        self._discard(key)  # a later flush must not resurrect the value
        super().on_delete(client, key)

    # --------------------------------------------------------------- buffers

    def _enqueue(self, server_id: str, key: Hashable, value: Any) -> None:
        previous = self._owner.get(key)
        if previous is not None and previous != server_id:
            self._buffers[previous].pop(key, None)
        buffer = self._buffers.setdefault(server_id, {})
        if key not in buffer and len(buffer) >= self.dirty_limit:
            self.stats.bound_flushes += 1
            self._flush_shard(server_id)
            buffer = self._buffers.setdefault(server_id, {})
        if key in buffer:
            self.stats.coalesced_writes += 1
        self.stats.buffered_writes += 1
        buffer[key] = value
        self._owner[key] = server_id
        depth = len(buffer)
        if depth > self.stats.peak_dirty:
            self.stats.peak_dirty = depth

    def _discard(self, key: Hashable) -> None:
        server_id = self._owner.pop(key, None)
        if server_id is not None:
            self._buffers[server_id].pop(key, None)

    def _flush_shard(self, server_id: str) -> int:
        buffer = self._buffers.pop(server_id, None)
        if not buffer:
            return 0
        storage = self._cluster.storage
        for key, value in buffer.items():
            storage.set(key, value)
            self._owner.pop(key, None)
        count = len(buffer)
        self.stats.flushed_writes += count
        self.stats.storage_writes += count
        self.stats.flushes += 1
        return count

    def flush(self) -> int:
        """Drain every reachable queue (cadence hook / final drain).

        A down shard's queue is frozen with it — flushing it would make
        writes durable that the loss accounting says died with the
        shard — so down shards are skipped until they revive (cold
        revival empties the queue as lost) or are removed (drained).
        """
        faults = self._cluster.faults if self._cluster is not None else None
        flushed = 0
        for server_id in list(self._buffers):
            if faults is not None and faults.is_down(server_id):
                continue
            flushed += self._flush_shard(server_id)
        return flushed

    def dirty_depth(self) -> int:
        return sum(len(buffer) for buffer in self._buffers.values())

    def dirty_snapshot(self) -> dict[str, dict[Hashable, Any]]:
        return {sid: dict(buf) for sid, buf in self._buffers.items() if buf}

    def buffered_value(self, key: Hashable, default: Any = MISSING) -> Any:
        server_id = self._owner.get(key)
        if server_id is None:
            return default
        return self._buffers[server_id].get(key, default)

    # ------------------------------------------------------------- topology

    def _on_cold_revival(self, server_id: str) -> None:
        """The dead incarnation's queue died with it: count the loss."""
        buffer = self._buffers.pop(server_id, None)
        if not buffer:
            return
        for key in buffer:
            self._owner.pop(key, None)
        self.stats.lost_writes += len(buffer)

    def _on_server_removed(self, server_id: str) -> None:
        """Graceful decommission: drain the departing shard's queue."""
        self._flush_shard(server_id)


class TTLWritePolicy(WritePolicy):
    """Expiry on a logical clock instead of invalidation traffic.

    Writes mutate storage only and advance a cluster-wide logical clock
    (one tick per write operation). Every cached copy is stamped with
    the clock value at fill time — shard copies when the client
    backfills them, local copies when a miss loader returns — and is
    expired lazily, on the next read that touches it, once
    ``clock - stamp >= ttl``. Staleness is therefore bounded: a value
    obsoleted by a write can be served for fewer than ``2*ttl`` ticks
    (shard copies live < ``ttl`` after fill, and a local copy refilled
    from an aging shard copy lives < ``ttl`` more — the chain is at
    most two levels deep because locals never feed other caches).

    Local-copy hygiene rides the ``eviction_listeners`` hook on the
    front-end policies (``repro/policies/base.py``): when a policy
    evicts a copy on its own, the listener drops the copy's stamp so
    the stamp table tracks live copies, not read history.
    """

    mode = "ttl"
    ttl_hooks = True

    def __init__(self, ttl: int = 1024) -> None:
        if ttl < 1:
            raise ConfigurationError("ttl must be >= 1")
        super().__init__()
        self.ttl = ttl
        #: logical clock: one tick per acknowledged write operation
        self.clock = 0
        #: shard id -> {key: fill-time clock}
        self._shard_stamps: dict[str, dict[Hashable, int]] = {}
        #: client id -> {key: fill-time clock}
        self._local_stamps: dict[str, dict[Hashable, int]] = {}

    def bind_cluster(self, cluster: "CacheCluster") -> None:
        super().bind_cluster(cluster)
        cluster.cold_revival_listeners.append(self._drop_shard_stamps)
        cluster.removal_listeners.append(self._drop_shard_stamps)

    # ------------------------------------------------------------ write path

    def on_set(self, client: "FrontEndClient", key: Hashable, value: Any) -> None:
        self.clock += 1
        self.stats.storage_writes += 1
        client.cluster.storage.set(key, value)
        client.policy.record_update(key)
        self._local_stamps.get(client.client_id, {}).pop(key, None)

    def on_delete(self, client: "FrontEndClient", key: Hashable) -> None:
        self.clock += 1
        self._local_stamps.get(client.client_id, {}).pop(key, None)
        super().on_delete(client, key)

    # ------------------------------------------------------------ read hooks

    def note_backfill(self, server_id: str, key: Hashable) -> None:
        """Stamp a shard copy the client just backfilled from storage."""
        self._shard_stamps.setdefault(server_id, {})[key] = self.clock

    def note_local_fill(self, client_id: str, key: Hashable) -> None:
        """Stamp the copy a miss loader is returning to the local layer."""
        self._local_stamps.setdefault(client_id, {})[key] = self.clock

    def expire_shard(
        self, client: "FrontEndClient", server_id: str, key: Hashable
    ) -> None:
        """Expire the shard copy of ``key`` if its stamp aged out.

        Called on the read path after routing, before the shard lookup,
        so an expired copy is deleted and the read refetches (and
        restamps) the fresh value from storage.
        """
        stamps = self._shard_stamps.get(server_id)
        if not stamps:
            return
        stamp = stamps.get(key)
        if stamp is None or self.clock - stamp < self.ttl:
            return
        del stamps[key]
        self.stats.ttl_expirations += 1
        server = client.cluster.server(server_id)
        try:
            client.guard.call(server_id, lambda: server.delete(key))
        except ShardUnavailableError:
            pass  # unreachable copy; cold revival wipes it anyway

    def expire_local(self, client: "FrontEndClient", key: Hashable) -> None:
        """Expire the caller's local copy of ``key`` if it aged out."""
        stamps = self._local_stamps.get(client.client_id)
        if not stamps:
            return
        stamp = stamps.get(key)
        if stamp is None or self.clock - stamp < self.ttl:
            return
        del stamps[key]
        self.stats.ttl_expirations += 1
        client.policy.invalidate(key)

    def attach_local_hygiene(self, client: "FrontEndClient") -> None:
        """Register the eviction listener that keeps local stamps honest."""
        stamps = self._local_stamps.setdefault(client.client_id, {})

        def _dropped(key: Hashable) -> None:
            stamps.pop(key, None)

        client.policy.eviction_listeners.append(_dropped)

    def _drop_shard_stamps(self, server_id: str) -> None:
        """A shard's copies are gone (cold revival / removal): forget them."""
        self._shard_stamps.pop(server_id, None)


def make_write_policy(
    mode: str,
    *,
    dirty_limit: int = 64,
    ttl: int = 1024,
) -> WritePolicy:
    """Build the strategy named by ``mode`` (see ``WRITE_MODES``)."""
    if mode == "cache-aside":
        return CacheAsideWritePolicy()
    if mode == "write-through":
        return WriteThroughPolicy()
    if mode == "write-behind":
        return WriteBehindPolicy(dirty_limit=dirty_limit)
    if mode == "ttl":
        return TTLWritePolicy(ttl=ttl)
    raise ConfigurationError(
        f"unknown write mode {mode!r}; expected one of {', '.join(WRITE_MODES)}"
    )
