"""Dict-backed oracle and topology harness for cluster-wide fuzzing.

The elastic cluster's riskiest behaviour lives in the *interleavings*:
kill/revive/add/remove churn racing reads, writes, invalidation fan-out,
replica promotion and epoch accounting. Hand-picked scenarios cover the
interleavings someone thought of; the hypothesis state machine in
``tests/test_cluster_stateful.py`` drives random ones against the
trivially correct model in this module and asserts, after every step,
the invariants the whole system is supposed to keep:

* **freshness** — no stale read ever escapes (:class:`ClusterModel`);
* **directory honesty** — the :class:`~repro.cluster.invalidation.InvalidationBus`
  incremental ``directory_size`` equals a full recount, and the directory
  matches exactly what every registered front end actually caches;
* **per-shard state liveness** — breakers, LoadMonitor windows, fault
  profiles and router replica/quarantine sets reference only shards that
  are currently members (:func:`check_cluster_invariants`);
* **churn-safe epoch accounting** — the loads the elastic controller
  sees are always a subset of live, non-fresh, breaker-closed shards, so
  topology churn cannot fabricate an ``I_c`` spike.

The freshness oracle is mode-aware. In **coherent** mode (fan-out bus
attached) every read must return the last committed write, full stop. In
**paper** mode the protocol deliberately lets *other* front ends keep
their local copies on a write (Section 1's consistency-cost argument),
so a read is correct iff it returns the committed value **or**, on a
local cache hit, the value this front end itself last observed for the
key — i.e. staleness may only come from the reader's own untouched local
copy, never from the shard layer or storage.

New topology axes (write-path coherence modes, adaptive arbitration,
network planes) plug in by adding a field to :class:`TopologyCase`,
wiring it in :class:`ClusterHarness.__init__`, and adding one entry to
the machine's topology list — the rules and invariants are reused as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.invalidation import CoherenceMixin, InvalidationBus
from repro.cluster.replication import HotKeyRouter, ReplicationConfig
from repro.cluster.retry import BreakerConfig, ClusterGuard, RetryPolicy
from repro.cluster.storage import PersistentStore
from repro.core.elastic import ElasticCoTClient

__all__ = [
    "ClusterHarness",
    "ClusterModel",
    "CoherentElasticCoTClient",
    "TopologyCase",
    "check_cluster_invariants",
    "synthesized_value",
]


def synthesized_value(key: Hashable) -> Any:
    """The value storage synthesizes for a never-written (or deleted) key.

    The harness passes this same function to its
    :class:`~repro.cluster.storage.PersistentStore`, so the oracle and
    the system agree on unwritten keys by construction.
    """
    return ("value-of", key, 0)


class CoherentElasticCoTClient(CoherenceMixin, ElasticCoTClient):
    """An elastic CoT front end participating in invalidation fan-out.

    The combination the experiments do not ship yet but the fuzzer needs:
    coherent mode *and* epoch-close/resize/decay churn in one client, so
    the directory stays honest across capacity changes too.
    """

    def __init__(self, cluster: CacheCluster, bus: InvalidationBus, **kwargs) -> None:
        super().__init__(cluster, **kwargs)
        self._attach_bus(bus)


_UNSEEN = object()


class ClusterModel:
    """Trivially correct committed-state model with a staleness budget.

    ``_written`` is the dict the whole cluster is pretending to be.
    ``_last_seen`` records, per ``(client_id, key)``, the value that
    front end most recently observed — the only value its local cache
    could legally still hold in paper mode.
    """

    def __init__(self, coherent: bool) -> None:
        self.coherent = coherent
        self._written: dict[Hashable, Any] = {}
        self._last_seen: dict[tuple[str, Hashable], Any] = {}

    # ------------------------------------------------------------- queries

    def committed(self, key: Hashable) -> Any:
        """The value an omniscient fresh read of ``key`` must return."""
        if key in self._written:
            return self._written[key]
        return synthesized_value(key)

    # ------------------------------------------------------------ mutation

    def check_read(
        self, client_id: str, key: Hashable, returned: Any, was_local: bool
    ) -> None:
        """Assert one read's result is explainable; record what was seen.

        ``was_local`` is whether the reader's policy held the key before
        the read (a side-effect-free ``in`` probe). A read that did not
        hit the local cache went through shard/storage, where *no* mode
        tolerates staleness — cold revival, the scale-in purge and the
        replication quarantine exist precisely to keep that layer clean.
        """
        committed = self.committed(key)
        if returned == committed:
            self._last_seen[(client_id, key)] = returned
            return
        if self.coherent:
            raise AssertionError(
                f"stale read escaped in coherent mode: {client_id} read "
                f"{returned!r} for {key!r}, committed is {committed!r}"
            )
        if not was_local:
            raise AssertionError(
                f"stale read escaped the caching layer: {client_id} read "
                f"{returned!r} for {key!r} on a local miss, committed is "
                f"{committed!r}"
            )
        allowed = self._last_seen.get((client_id, key), _UNSEEN)
        if returned != allowed:
            raise AssertionError(
                f"unexplainable stale read: {client_id} read {returned!r} "
                f"for {key!r}; committed is {committed!r} and this front "
                f"end last observed "
                f"{'nothing' if allowed is _UNSEEN else repr(allowed)}"
            )

    def note_write(self, client_id: str, key: Hashable, value: Any) -> None:
        """A set committed: ``value`` is now the only fresh answer."""
        self._written[key] = value
        self._forget_local(client_id, key)

    def note_delete(self, client_id: str, key: Hashable) -> None:
        """A delete committed: reads revert to the synthesized value."""
        self._written.pop(key, None)
        self._forget_local(client_id, key)

    def _forget_local(self, writer_id: str, key: Hashable) -> None:
        """Drop the local-copy allowances a write invalidates.

        The writer always invalidates its own copy (``record_update``);
        in coherent mode the fan-out clears every other front end's copy
        too, so no one retains a staleness allowance.
        """
        if self.coherent:
            for pair in [p for p in self._last_seen if p[1] == key]:
                del self._last_seen[pair]
        else:
            self._last_seen.pop((writer_id, key), None)


@dataclass(frozen=True)
class TopologyCase:
    """One point in the topology-axis grid the state machine samples.

    Axes mirror the system's real configuration surface: front-end
    count, coherence mode, the replicated hot-key tier, and how
    aggressive the retry/breaker layer is (``tight_guard`` trips
    breakers on the first failure with a short cooldown, maximizing
    OPEN/HALF_OPEN traffic in short runs).
    """

    name: str
    num_servers: int = 3
    num_front_ends: int = 1
    coherent: bool = False
    replicated: bool = False
    tight_guard: bool = False

    def __str__(self) -> str:  # readable hypothesis failure output
        return self.name


class ClusterHarness:
    """A fully wired elastic cluster for one fuzzing run.

    Builds the cluster, fault injector, optional invalidation bus and
    optional hot-key router described by ``case``, plus one elastic CoT
    front end per ``num_front_ends`` — coherent front ends when the case
    says so, all attached to the router when replication is on.
    """

    def __init__(self, case: TopologyCase, seed: int = 0) -> None:
        self.case = case
        self.faults = FaultInjector(seed=seed)
        self.storage = PersistentStore(value_factory=synthesized_value)
        self.cluster = CacheCluster(
            num_servers=case.num_servers,
            capacity_bytes=1 << 16,
            virtual_nodes=32,
            value_size=1,
            storage=self.storage,
            faults=self.faults,
        )
        self.bus = InvalidationBus() if case.coherent else None
        self.router: HotKeyRouter | None = None
        if case.replicated:
            # Low promotion bar + small cap: with a dozen-key universe
            # the tier promotes and demotes constantly, which is the
            # point — the replicated read/write/quarantine paths must
            # hold invariants under maximal churn.
            self.router = HotKeyRouter(
                self.cluster,
                ReplicationConfig(
                    degree=2,
                    choices=2,
                    top_n=8,
                    max_keys=4,
                    min_share=0.02,
                    seed=seed,
                ),
            )
        self.front_ends: list[ElasticCoTClient] = []
        for i in range(case.num_front_ends):
            kwargs = dict(
                target_imbalance=1.5,
                initial_cache=4,
                initial_tracker=8,
                base_epoch=24,
                client_id=f"fe-{i}",
                guard=self._build_guard(i),
            )
            if case.coherent:
                client: ElasticCoTClient = CoherentElasticCoTClient(
                    self.cluster, self.bus, **kwargs
                )
            else:
                client = ElasticCoTClient(self.cluster, **kwargs)
            if self.router is not None:
                client.attach_router(self.router, seed=seed * 17 + i)
            self.front_ends.append(client)
        self.model = ClusterModel(coherent=case.coherent)

    def _build_guard(self, index: int) -> ClusterGuard:
        if self.case.tight_guard:
            return ClusterGuard(
                self.cluster.server_ids,
                retry=RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0),
                breaker=BreakerConfig(failure_threshold=1, cooldown=6.0),
                seed=index,
            )
        return ClusterGuard(self.cluster.server_ids, seed=index)

    # ---------------------------------------------------------- inspection

    @property
    def live_ids(self) -> tuple[str, ...]:
        """Current cluster membership."""
        return self.cluster.server_ids


def check_cluster_invariants(harness: ClusterHarness) -> None:
    """Assert every cross-component structural invariant at once.

    Called by the state machine after every step; each check names the
    component so a violation reads as a diagnosis, not a riddle.
    """
    live = set(harness.cluster.server_ids)

    tracked = harness.faults.tracked_servers()
    assert tracked <= live, (
        f"fault profiles reference departed shards: {sorted(tracked - live)}"
    )

    for client in harness.front_ends:
        cid = client.client_id
        breakers = client.guard.tracked_servers()
        assert breakers <= live, (
            f"{cid}: breakers reference departed shards: "
            f"{sorted(breakers - live)}"
        )
        window = set(client.monitor.epoch_loads())
        assert window <= live, (
            f"{cid}: epoch load window references departed shards: "
            f"{sorted(window - live)}"
        )
        fresh = client.monitor.epoch_new_servers()
        assert fresh <= live, (
            f"{cid}: mid-epoch joiner set references departed shards: "
            f"{sorted(fresh - live)}"
        )
        churn_safe = set(client._churn_safe_epoch_loads())
        assert churn_safe <= live, (
            f"{cid}: controller would see departed shards: "
            f"{sorted(churn_safe - live)}"
        )
        assert not churn_safe & fresh, (
            f"{cid}: controller would see mid-epoch joiners: "
            f"{sorted(churn_safe & fresh)}"
        )
        assert not churn_safe & client.guard.unavailable_servers(), (
            f"{cid}: controller would see breaker-open shards"
        )

    router = harness.router
    if router is not None:
        for key, entry in router.routes.items():
            replicas = set(entry.replicas)
            assert replicas <= live, (
                f"replica set of {key!r} references departed shards: "
                f"{sorted(replicas - live)}"
            )
            quarantine = set(entry.quarantine)
            assert quarantine <= replicas, (
                f"quarantine of {key!r} outside its replica set: "
                f"{sorted(quarantine - replicas)}"
            )
            assert tuple(entry.eligible) == tuple(
                sid for sid in entry.replicas if sid not in entry.quarantine
            ), f"eligible set of {key!r} inconsistent with its quarantine"
        for key, pending in router.pending_snapshot().items():
            assert pending <= live, (
                f"pending demotions of {key!r} reference departed shards: "
                f"{sorted(pending - live)}"
            )

    bus = harness.bus
    if bus is not None:
        recounted = bus.recomputed_directory_size()
        assert bus.stats.directory_size == recounted, (
            f"directory_size drifted: incremental "
            f"{bus.stats.directory_size} != recount {recounted}"
        )
        directory = {
            (cid, key)
            for key, holders in bus.directory().items()
            for cid in holders
        }
        actual = {
            (client.client_id, key)
            for client in harness.front_ends
            for key in client.policy.cached_keys()
        }
        assert directory == actual, (
            f"directory out of sync with front-end caches: "
            f"untracked copies {sorted(map(repr, actual - directory))}, "
            f"phantom entries {sorted(map(repr, directory - actual))}"
        )
