"""Dict-backed oracle and topology harness for cluster-wide fuzzing.

The elastic cluster's riskiest behaviour lives in the *interleavings*:
kill/revive/add/remove churn racing reads, writes, invalidation fan-out,
replica promotion and epoch accounting. Hand-picked scenarios cover the
interleavings someone thought of; the hypothesis state machine in
``tests/test_cluster_stateful.py`` drives random ones against the
trivially correct model in this module and asserts, after every step,
the invariants the whole system is supposed to keep:

* **freshness** — no stale read ever escapes (:class:`ClusterModel`);
* **directory honesty** — the :class:`~repro.cluster.invalidation.InvalidationBus`
  incremental ``directory_size`` equals a full recount, and the directory
  matches exactly what every registered front end actually caches;
* **per-shard state liveness** — breakers, LoadMonitor windows, fault
  profiles and router replica/quarantine sets reference only shards that
  are currently members (:func:`check_cluster_invariants`);
* **churn-safe epoch accounting** — the loads the elastic controller
  sees are always a subset of live, non-fresh, breaker-closed shards, so
  topology churn cannot fabricate an ``I_c`` spike.

The freshness oracle is mode-aware. In **coherent** mode (fan-out bus
attached) every read must return the last committed write, full stop. In
**paper** mode the protocol deliberately lets *other* front ends keep
their local copies on a write (Section 1's consistency-cost argument),
so a read is correct iff it returns the committed value **or**, on a
local cache hit, the value this front end itself last observed for the
key — i.e. staleness may only come from the reader's own untouched local
copy, never from the shard layer or storage.

The **write-path axis** (:mod:`repro.cluster.writepolicy`) refines the
budget further:

* *write-through* adds nothing — an acknowledged write is durable and
  shard-fresh, so the cache-aside budget applies verbatim (and in
  coherent mode the zero-staleness guarantee is preserved exactly);
* *write-behind* makes the committed value the **pending** (queued)
  value while a dirty entry exists; the pre-flush durable value is
  additionally legal for any reader only while the owning shard (and
  with it the queue) is unreachable. The model also mirrors the queue
  itself — per-shard contents, the ``dirty_limit`` bound-flush, loss on
  cold revival, drain on removal — and the invariant checker diffs it
  against :meth:`WriteBehindPolicy.dirty_snapshot` every step;
* *ttl* replaces the local-copy allowance with a bounded window: a read
  may return any value obsoleted fewer than ``2*ttl`` logical-clock
  ticks ago (shard copies live < ``ttl`` past fill, and a local copy
  refilled from an aging shard copy lives < ``ttl`` more), and nothing
  older, from any layer.

New topology axes (adaptive arbitration, network planes) plug in by
adding a field to :class:`TopologyCase`, wiring it in
:class:`ClusterHarness.__init__`, and adding one entry to the machine's
topology list — the rules and invariants are reused as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.invalidation import CoherenceMixin, InvalidationBus
from repro.cluster.replication import HotKeyRouter, ReplicationConfig
from repro.cluster.retry import BreakerConfig, ClusterGuard, RetryPolicy
from repro.cluster.storage import PersistentStore
from repro.cluster.writepolicy import WritePolicy, make_write_policy
from repro.core.elastic import ElasticCoTClient

__all__ = [
    "ClusterHarness",
    "ClusterModel",
    "CoherentElasticCoTClient",
    "TopologyCase",
    "check_cluster_invariants",
    "synthesized_value",
]


def synthesized_value(key: Hashable) -> Any:
    """The value storage synthesizes for a never-written (or deleted) key.

    The harness passes this same function to its
    :class:`~repro.cluster.storage.PersistentStore`, so the oracle and
    the system agree on unwritten keys by construction.
    """
    return ("value-of", key, 0)


class CoherentElasticCoTClient(CoherenceMixin, ElasticCoTClient):
    """An elastic CoT front end participating in invalidation fan-out.

    The combination the experiments do not ship yet but the fuzzer needs:
    coherent mode *and* epoch-close/resize/decay churn in one client, so
    the directory stays honest across capacity changes too.
    """

    def __init__(self, cluster: CacheCluster, bus: InvalidationBus, **kwargs) -> None:
        super().__init__(cluster, **kwargs)
        self._attach_bus(bus)


_UNSEEN = object()


class ClusterModel:
    """Trivially correct committed-state model with a staleness budget.

    ``_written`` is the dict the whole cluster is pretending to be.
    ``_last_seen`` records, per ``(client_id, key)``, the value that
    front end most recently observed — the only value its local cache
    could legally still hold in paper mode.

    The write-mode refinements (module docstring) add:

    ``_pending``
        write-behind's acknowledged-but-volatile writes, keyed by key
        with the owning shard alongside — a literal mirror of
        :class:`~repro.cluster.writepolicy.WriteBehindPolicy`'s queues,
        including the bound-flush, loss and drain transitions.
    ``_stale`` / ``clock``
        ttl mode's obsolescence ledger: every overwrite records the
        displaced value with the clock tick that obsoleted it, and a
        read may return it only while ``clock - tick < 2*ttl``.
    ``expected_lost``
        the running total of acknowledged writes that legally died with
        a killed shard's queue — cross-checked against the policy's
        ``lost_writes`` counter after every step.
    """

    def __init__(
        self,
        coherent: bool,
        write_mode: str = "cache-aside",
        dirty_limit: int = 3,
        ttl: int = 8,
    ) -> None:
        self.coherent = coherent
        self.write_mode = write_mode
        self.dirty_limit = dirty_limit
        self.ttl = ttl
        self.clock = 0
        self.expected_lost = 0
        self._written: dict[Hashable, Any] = {}
        self._last_seen: dict[tuple[str, Hashable], Any] = {}
        self._pending: dict[Hashable, tuple[Any, str]] = {}
        self._stale: dict[Hashable, list[tuple[Any, int]]] = {}

    # ------------------------------------------------------------- queries

    def _durable(self, key: Hashable) -> Any:
        """What storage holds right now (pending writes not yet flushed)."""
        if key in self._written:
            return self._written[key]
        return synthesized_value(key)

    def committed(self, key: Hashable) -> Any:
        """The value an omniscient fresh read of ``key`` must return."""
        pending = self._pending.get(key)
        if pending is not None:
            return pending[0]
        return self._durable(key)

    def pending_by_shard(self) -> dict[str, dict[Hashable, Any]]:
        """The model's write-behind queues, shaped like ``dirty_snapshot``."""
        shards: dict[str, dict[Hashable, Any]] = {}
        for key, (value, server_id) in self._pending.items():
            shards.setdefault(server_id, {})[key] = value
        return shards

    # ------------------------------------------------------------ mutation

    def check_read(
        self, client_id: str, key: Hashable, returned: Any, was_local: bool
    ) -> None:
        """Assert one read's result is explainable; record what was seen.

        ``was_local`` is whether the reader's policy held the key before
        the read (a side-effect-free ``in`` probe). A read that did not
        hit the local cache went through shard/storage, where *no* mode
        tolerates staleness — cold revival, the scale-in purge and the
        replication quarantine exist precisely to keep that layer clean.
        (Write-behind's shard-down window and ttl's expiry window are
        the two budgeted exceptions, handled before the strict checks.)
        """
        committed = self.committed(key)
        if returned == committed:
            self._last_seen[(client_id, key)] = returned
            return
        if (
            self.write_mode == "write-behind"
            and key in self._pending
            and returned == self._durable(key)
        ):
            # The owning shard — and with it the queue — is unreachable,
            # so the degraded read legally served the pre-flush durable
            # value while an acknowledged write is still queued.
            self._last_seen[(client_id, key)] = returned
            return
        if self.write_mode == "ttl":
            for value, tick in self._stale.get(key, ()):
                if returned == value and self.clock - tick < 2 * self.ttl:
                    self._last_seen[(client_id, key)] = returned
                    return
            raise AssertionError(
                f"read outside the ttl staleness window: {client_id} read "
                f"{returned!r} for {key!r} at clock {self.clock}; committed "
                f"is {committed!r} and the value is not within "
                f"{2 * self.ttl} ticks of obsolescence"
            )
        if self.coherent:
            raise AssertionError(
                f"stale read escaped in coherent mode: {client_id} read "
                f"{returned!r} for {key!r}, committed is {committed!r}"
            )
        if not was_local:
            raise AssertionError(
                f"stale read escaped the caching layer: {client_id} read "
                f"{returned!r} for {key!r} on a local miss, committed is "
                f"{committed!r}"
            )
        allowed = self._last_seen.get((client_id, key), _UNSEEN)
        if returned != allowed:
            raise AssertionError(
                f"unexplainable stale read: {client_id} read {returned!r} "
                f"for {key!r}; committed is {committed!r} and this front "
                f"end last observed "
                f"{'nothing' if allowed is _UNSEEN else repr(allowed)}"
            )

    def note_write(
        self,
        client_id: str,
        key: Hashable,
        value: Any,
        shard: str | None = None,
        shard_down: bool = False,
    ) -> None:
        """A set committed: ``value`` is now the only fresh answer.

        ``shard`` is the key's owning shard and ``shard_down`` whether
        it was unreachable when the write was issued — write-behind's
        queue placement (and its synchronous-fallback escape hatch)
        depend on both; the other modes ignore them.
        """
        if self.write_mode == "write-behind":
            self._note_buffered_write(key, value, shard, shard_down)
        elif self.write_mode == "ttl":
            self._note_obsoleted(key)
            self._written[key] = value
        else:
            self._written[key] = value
        self._forget_local(client_id, key)

    def _note_buffered_write(
        self, key: Hashable, value: Any, shard: str | None, shard_down: bool
    ) -> None:
        if shard_down:
            # Queue unreachable: the policy acknowledged synchronously
            # against storage and superseded any dirty entry.
            self._pending.pop(key, None)
            self._written[key] = value
            return
        assert shard is not None, "write-behind model needs the owning shard"
        previous = self._pending.get(key)
        if previous is not None and previous[1] != shard:
            del self._pending[key]  # re-homed: the old queue entry is dropped
        on_shard = [k for k, (_, s) in self._pending.items() if s == shard]
        if key not in on_shard and len(on_shard) >= self.dirty_limit:
            for k in on_shard:  # mirror the eager bound-flush
                flushed, _ = self._pending.pop(k)
                self._written[k] = flushed
        self._pending[key] = (value, shard)

    def _note_obsoleted(self, key: Hashable) -> None:
        """ttl bookkeeping: the current value just became history."""
        self.clock += 1
        history = self._stale.setdefault(key, [])
        history.append((self._durable(key), self.clock))
        self._stale[key] = [
            (v, t) for v, t in history if self.clock - t < 2 * self.ttl
        ]

    def note_delete(self, client_id: str, key: Hashable) -> None:
        """A delete committed: reads revert to the synthesized value.

        Deletes are synchronous in every write mode, so the pending
        entry (if any) dies here and the ttl clock still ticks.
        """
        self._pending.pop(key, None)
        if self.write_mode == "ttl":
            self._note_obsoleted(key)
        self._written.pop(key, None)
        self._forget_local(client_id, key)

    # --------------------------------------------- write-behind transitions

    def note_flush(self, down: set[str]) -> None:
        """A cadence flush drained every queue on a reachable shard."""
        for key in [k for k, (_, s) in self._pending.items() if s not in down]:
            value, _ = self._pending.pop(key)
            self._written[key] = value

    def note_cold_revival(self, server_id: str) -> None:
        """The dead incarnation's queue is gone: its writes are lost."""
        for key in [k for k, (_, s) in self._pending.items() if s == server_id]:
            del self._pending[key]
            self.expected_lost += 1

    def note_shard_removed(self, server_id: str) -> None:
        """Graceful scale-in drains the departing shard's queue."""
        for key in [k for k, (_, s) in self._pending.items() if s == server_id]:
            value, _ = self._pending.pop(key)
            self._written[key] = value

    def _forget_local(self, writer_id: str, key: Hashable) -> None:
        """Drop the local-copy allowances a write invalidates.

        The writer always invalidates its own copy (``record_update``);
        in coherent mode the fan-out clears every other front end's copy
        too, so no one retains a staleness allowance.
        """
        if self.coherent:
            for pair in [p for p in self._last_seen if p[1] == key]:
                del self._last_seen[pair]
        else:
            self._last_seen.pop((writer_id, key), None)


@dataclass(frozen=True)
class TopologyCase:
    """One point in the topology-axis grid the state machine samples.

    Axes mirror the system's real configuration surface: front-end
    count, coherence mode, the replicated hot-key tier, the write-path
    coherence mode, and how aggressive the retry/breaker layer is
    (``tight_guard`` trips breakers on the first failure with a short
    cooldown, maximizing OPEN/HALF_OPEN traffic in short runs).
    ``dirty_limit`` and ``ttl`` are deliberately tiny so bound-flushes
    and expirations fire constantly within a 30-step run.
    """

    name: str
    num_servers: int = 3
    num_front_ends: int = 1
    coherent: bool = False
    replicated: bool = False
    tight_guard: bool = False
    write_mode: str = "cache-aside"
    dirty_limit: int = 3
    ttl: int = 8
    #: serve the shards over localhost sockets (the repro.net plane) so
    #: kill/revive churn exercises real connection teardown + reconnect
    network: bool = False

    def __str__(self) -> str:  # readable hypothesis failure output
        return self.name


class ClusterHarness:
    """A fully wired elastic cluster for one fuzzing run.

    Builds the cluster, fault injector, optional invalidation bus and
    optional hot-key router described by ``case``, plus one elastic CoT
    front end per ``num_front_ends`` — coherent front ends when the case
    says so, all attached to the router when replication is on.
    """

    def __init__(self, case: TopologyCase, seed: int = 0) -> None:
        self.case = case
        self.faults = FaultInjector(seed=seed)
        self.storage = PersistentStore(value_factory=synthesized_value)
        self.cluster = CacheCluster(
            num_servers=case.num_servers,
            capacity_bytes=1 << 16,
            virtual_nodes=32,
            value_size=1,
            storage=self.storage,
            faults=self.faults,
        )
        self.plane = None
        if case.network:
            from repro.net.plane import NetworkPlane  # deferred: tier-1 import cost

            self.plane = NetworkPlane(self.cluster).start()
        #: what front ends bind to — the socket plane when the case asks
        #: for one, the in-process cluster otherwise (same duck type)
        self.target = self.plane if self.plane is not None else self.cluster
        self.bus = InvalidationBus() if case.coherent else None
        self.router: HotKeyRouter | None = None
        if case.replicated:
            # Low promotion bar + small cap: with a dozen-key universe
            # the tier promotes and demotes constantly, which is the
            # point — the replicated read/write/quarantine paths must
            # hold invariants under maximal churn.
            self.router = HotKeyRouter(
                self.target,
                ReplicationConfig(
                    degree=2,
                    choices=2,
                    top_n=8,
                    max_keys=4,
                    min_share=0.02,
                    seed=seed,
                ),
            )
        self.write_policy: WritePolicy | None = None
        if case.write_mode != "cache-aside":
            self.write_policy = make_write_policy(
                case.write_mode, dirty_limit=case.dirty_limit, ttl=case.ttl
            )
            self.write_policy.bind_cluster(self.target)
        self.front_ends: list[ElasticCoTClient] = []
        for i in range(case.num_front_ends):
            kwargs = dict(
                target_imbalance=1.5,
                initial_cache=4,
                initial_tracker=8,
                base_epoch=24,
                client_id=f"fe-{i}",
                guard=self._build_guard(i),
            )
            if case.coherent:
                client: ElasticCoTClient = CoherentElasticCoTClient(
                    self.target, self.bus, **kwargs
                )
            else:
                client = ElasticCoTClient(self.target, **kwargs)
            if self.router is not None:
                client.attach_router(self.router, seed=seed * 17 + i)
            if self.write_policy is not None:
                client.attach_write_policy(self.write_policy)
            self.front_ends.append(client)
        self.model = ClusterModel(
            coherent=case.coherent,
            write_mode=case.write_mode,
            dirty_limit=case.dirty_limit,
            ttl=case.ttl,
        )

    def _build_guard(self, index: int) -> ClusterGuard:
        if self.case.tight_guard:
            return ClusterGuard(
                self.cluster.server_ids,
                retry=RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0),
                breaker=BreakerConfig(failure_threshold=1, cooldown=6.0),
                seed=index,
            )
        return ClusterGuard(self.cluster.server_ids, seed=index)

    # ----------------------------------------------------------- lifecycle

    def kill_server(self, server_id: str) -> None:
        """Take a shard down — and, on the socket plane, drop its sockets.

        A real instance failure severs live TCP connections; routing the
        kill through here makes the fuzzer exercise the client's
        reconnect path, not just the injected-fault path.
        """
        self.cluster.kill_server(server_id)
        if self.plane is not None:
            self.plane.drop_connections(server_id)

    def close(self) -> None:
        """Tear down the socket plane (no-op for in-process cases)."""
        if self.plane is not None:
            self.plane.close()
            self.plane = None

    # ---------------------------------------------------------- inspection

    @property
    def live_ids(self) -> tuple[str, ...]:
        """Current cluster membership."""
        return self.cluster.server_ids


def check_cluster_invariants(harness: ClusterHarness) -> None:
    """Assert every cross-component structural invariant at once.

    Called by the state machine after every step; each check names the
    component so a violation reads as a diagnosis, not a riddle.
    """
    live = set(harness.cluster.server_ids)

    tracked = harness.faults.tracked_servers()
    assert tracked <= live, (
        f"fault profiles reference departed shards: {sorted(tracked - live)}"
    )

    for client in harness.front_ends:
        cid = client.client_id
        breakers = client.guard.tracked_servers()
        assert breakers <= live, (
            f"{cid}: breakers reference departed shards: "
            f"{sorted(breakers - live)}"
        )
        window = set(client.monitor.epoch_loads())
        assert window <= live, (
            f"{cid}: epoch load window references departed shards: "
            f"{sorted(window - live)}"
        )
        fresh = client.monitor.epoch_new_servers()
        assert fresh <= live, (
            f"{cid}: mid-epoch joiner set references departed shards: "
            f"{sorted(fresh - live)}"
        )
        churn_safe = set(client._churn_safe_epoch_loads())
        assert churn_safe <= live, (
            f"{cid}: controller would see departed shards: "
            f"{sorted(churn_safe - live)}"
        )
        assert not churn_safe & fresh, (
            f"{cid}: controller would see mid-epoch joiners: "
            f"{sorted(churn_safe & fresh)}"
        )
        assert not churn_safe & client.guard.unavailable_servers(), (
            f"{cid}: controller would see breaker-open shards"
        )

    router = harness.router
    if router is not None:
        for key, entry in router.routes.items():
            replicas = set(entry.replicas)
            assert replicas <= live, (
                f"replica set of {key!r} references departed shards: "
                f"{sorted(replicas - live)}"
            )
            quarantine = set(entry.quarantine)
            assert quarantine <= replicas, (
                f"quarantine of {key!r} outside its replica set: "
                f"{sorted(quarantine - replicas)}"
            )
            assert tuple(entry.eligible) == tuple(
                sid for sid in entry.replicas if sid not in entry.quarantine
            ), f"eligible set of {key!r} inconsistent with its quarantine"
        for key, pending in router.pending_snapshot().items():
            assert pending <= live, (
                f"pending demotions of {key!r} reference departed shards: "
                f"{sorted(pending - live)}"
            )

    bus = harness.bus
    if bus is not None:
        recounted = bus.recomputed_directory_size()
        assert bus.stats.directory_size == recounted, (
            f"directory_size drifted: incremental "
            f"{bus.stats.directory_size} != recount {recounted}"
        )
        directory = {
            (cid, key)
            for key, holders in bus.directory().items()
            for cid in holders
        }
        actual = {
            (client.client_id, key)
            for client in harness.front_ends
            for key in client.policy.cached_keys()
        }
        assert directory == actual, (
            f"directory out of sync with front-end caches: "
            f"untracked copies {sorted(map(repr, actual - directory))}, "
            f"phantom entries {sorted(map(repr, directory - actual))}"
        )

    policy = harness.write_policy
    if policy is not None and policy.buffered:
        snapshot = policy.dirty_snapshot()
        assert set(snapshot) <= live, (
            f"dirty buffers reference departed shards: "
            f"{sorted(set(snapshot) - live)}"
        )
        for server_id, buffer in snapshot.items():
            assert len(buffer) <= policy.dirty_limit, (
                f"dirty buffer of {server_id} holds {len(buffer)} entries, "
                f"bound is {policy.dirty_limit}"
            )
        assert policy.stats.peak_dirty <= policy.dirty_limit, (
            f"peak dirty depth {policy.stats.peak_dirty} exceeded the "
            f"bound {policy.dirty_limit}"
        )
        expected = harness.model.pending_by_shard()
        assert snapshot == expected, (
            f"dirty buffers diverged from the model's queues: "
            f"system {snapshot!r} != model {expected!r}"
        )
        assert policy.stats.lost_writes == harness.model.expected_lost, (
            f"loss accounting drifted: policy counted "
            f"{policy.stats.lost_writes} lost writes, the model expected "
            f"{harness.model.expected_lost}"
        )
    if policy is not None and policy.ttl_hooks:
        assert policy.clock == harness.model.clock, (
            f"ttl logical clock drifted: policy at {policy.clock}, "
            f"model at {harness.model.clock}"
        )
