"""Cross-front-end invalidation fan-out (consistency extension).

The paper's protocol invalidates only the *writer's* local cache; other
front ends may serve stale values until their copies age out — and the
paper argues at length that the **cost** of keeping many front-end caches
coherent is exactly why front-end caches must stay small (Section 1's
consistency-pipeline costs: tracking key incarnations and propagating
updates).

This module implements that pipeline so the cost argument is measurable:
an :class:`InvalidationBus` tracks which front ends hold which keys (the
"key incarnations" directory) and fans out invalidations on writes. The
counters expose precisely the two costs the paper names — directory size
and invalidation messages — as a function of front-end cache size, which
``tests/test_invalidation.py`` pins down: bigger front-end caches ⇒
more incarnations ⇒ more fan-out traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.cluster.client import FrontEndClient

__all__ = [
    "CoherenceMixin",
    "CoherentFrontEndClient",
    "InvalidationBus",
    "InvalidationStats",
]


@dataclass
class InvalidationStats:
    """The consistency-pipeline costs the paper enumerates."""

    #: invalidation messages delivered to remote front ends
    messages: int = 0
    #: writes that triggered at least one remote invalidation
    fanout_writes: int = 0
    #: high-water mark of directory entries (key incarnations tracked)
    peak_directory: int = 0
    #: stale local copies actually removed by fan-out
    stale_dropped: int = 0
    directory_size: int = field(default=0)


class InvalidationBus:
    """Directory-based invalidation fan-out across front ends.

    Front ends register; the bus learns which of them cache which keys
    (via :meth:`note_cached` / :meth:`note_dropped`, called by
    :class:`CoherentFrontEndClient`), and on a write it invalidates every
    *other* front end's copy synchronously — the strong-consistency end
    of the spectrum the paper's model permits.
    """

    def __init__(self) -> None:
        self._clients: dict[str, CoherentFrontEndClient] = {}
        self._directory: dict[Hashable, set[str]] = {}
        self.stats = InvalidationStats()

    # ------------------------------------------------------------ directory

    def register(self, client: "CoherentFrontEndClient") -> None:
        """Attach a front end to the bus."""
        self._clients[client.client_id] = client

    def note_cached(self, client_id: str, key: Hashable) -> None:
        """Record that ``client_id`` now holds a copy of ``key``.

        ``directory_size`` is maintained incrementally (+1 on a new
        incarnation) — recomputing ``sum(len(h))`` here made every cache
        admission O(directory), quadratic over a run.
        """
        holders = self._directory.setdefault(key, set())
        if client_id in holders:
            return
        holders.add(client_id)
        size = self.stats.directory_size + 1
        self.stats.directory_size = size
        if size > self.stats.peak_directory:
            self.stats.peak_directory = size

    def note_dropped(self, client_id: str, key: Hashable) -> None:
        """Record that ``client_id`` no longer holds ``key``."""
        holders = self._directory.get(key)
        if holders is None or client_id not in holders:
            return
        holders.discard(client_id)
        self.stats.directory_size -= 1
        if not holders:
            del self._directory[key]

    def recomputed_directory_size(self) -> int:
        """O(directory) recount — the invariant check the tests assert
        against the incremental counter."""
        return sum(len(h) for h in self._directory.values())

    def holders_of(self, key: Hashable) -> frozenset[str]:
        """Front ends currently holding ``key`` (test/analysis hook)."""
        return frozenset(self._directory.get(key, frozenset()))

    def directory(self) -> dict[Hashable, frozenset[str]]:
        """Snapshot of the whole directory (invariant-check hook).

        The cluster oracle reconciles this against what every registered
        front end's policy *actually* caches — any admission path that
        forgets :meth:`note_cached` (or a drop that skips
        :meth:`note_dropped`) shows up as a mismatch.
        """
        return {key: frozenset(holders) for key, holders in self._directory.items()}

    # -------------------------------------------------------------- fan-out

    def broadcast_invalidation(self, writer_id: str, key: Hashable) -> int:
        """Invalidate every remote copy of ``key``; returns messages sent."""
        holders = list(self._directory.get(key, ()))
        sent = 0
        for client_id in holders:
            if client_id == writer_id:
                continue
            client = self._clients.get(client_id)
            if client is None:
                continue
            client.remote_invalidate(key)
            sent += 1
        if sent:
            self.stats.messages += sent
            self.stats.fanout_writes += 1
        return sent


class CoherenceMixin:
    """Coherent-front-end behaviour over any :class:`FrontEndClient` base.

    Mixes the invalidation pipeline into a concrete client class (the
    plain protocol client, the elastic CoT client, …): admissions and
    evictions are reported to the bus, and writes broadcast invalidations
    to the other registered front ends *before* the write completes
    (strong ordering: no front end can serve the old value after the
    writer's set returns). Subclasses call :meth:`_attach_bus` once after
    their own construction.
    """

    bus: InvalidationBus

    def _attach_bus(self, bus: InvalidationBus) -> None:
        """Join the fan-out pipeline (register + eviction reporting)."""
        self.bus = bus
        bus.register(self)
        # Keep the directory honest about capacity evictions: when the
        # policy drops a key on its own, the incarnation disappears.
        self.policy.eviction_listeners.append(
            lambda key: bus.note_dropped(self.client_id, key)
        )

    # The base read path calls ``policy.admit``; intercept around it so
    # the directory reflects what this front end actually holds. Only a
    # state change (miss -> cached) is reported: repeat hits on a key the
    # directory already tracks must not churn the bus. The snapshot is
    # sound here (unlike in ``get_many``) because no single-key read can
    # evict and then re-admit the *same* key within one call: a hit never
    # re-admits, and a miss starts uncached.
    def get(self, key: Hashable):
        was_cached = key in self.policy
        value = super().get(key)
        if not was_cached and key in self.policy:
            self.bus.note_cached(self.client_id, key)
        return value

    def get_many(self, keys: list[Hashable]) -> dict[Hashable, Any]:
        """Batched read with directory reporting per admitted key.

        The base ``get_many`` admits through the same policy entry point
        as ``get`` but used to bypass this class entirely, so copies
        obtained via a batch were invisible to the directory — a remote
        write then skipped them and the untracked copy served stale
        reads. After the batch, every batch key the policy still holds
        is reported (evictions inside the batch are reported by the
        eviction listener as they happen, so the directory converges to
        the true holder set no matter how admissions and evictions
        interleave mid-batch).
        """
        values = super().get_many(keys)
        policy = self.policy
        note_cached = self.bus.note_cached
        client_id = self.client_id
        for key in values:
            if key in policy:
                note_cached(client_id, key)
        return values

    def set(self, key: Hashable, value) -> None:
        self.bus.broadcast_invalidation(self.client_id, key)
        super().set(key, value)
        self.bus.note_dropped(self.client_id, key)

    def delete(self, key: Hashable) -> None:
        self.bus.broadcast_invalidation(self.client_id, key)
        super().delete(key)
        self.bus.note_dropped(self.client_id, key)

    def remote_invalidate(self, key: Hashable) -> None:
        """Handle an invalidation pushed by another front end's write."""
        if key in self.policy:
            self.policy.invalidate(key)
            self.bus.stats.stale_dropped += 1
        self.bus.note_dropped(self.client_id, key)


class CoherentFrontEndClient(CoherenceMixin, FrontEndClient):
    """A front end whose local cache participates in invalidation fan-out.

    The classic protocol client with :class:`CoherenceMixin` applied —
    the concrete class every coherence-cost experiment uses.
    """

    def __init__(self, cluster, policy, bus: InvalidationBus, client_id: str) -> None:
        super().__init__(cluster, policy, client_id=client_id)
        self._attach_bus(bus)
