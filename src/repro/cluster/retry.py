"""Client-side fault tolerance: retries, backoff, and circuit breakers.

The paper's client-driven protocol assumes every shard answers every
lookup; in a cloud deployment shards migrate, restart and flake, so the
front-end client needs the standard resilience triad the elastic-cache
literature (Ditto, DistCache) treats as table stakes:

* **bounded retries with exponential backoff + jitter** — transient
  failures (:class:`~repro.errors.ShardFailure`) are retried up to
  ``max_attempts`` times, with a jittered exponentially-growing delay
  between attempts;
* **a per-shard circuit breaker** — ``failure_threshold`` *consecutive*
  failures trip the breaker ``CLOSED → OPEN``; while open, requests are
  rejected instantly (no doomed round trips). After ``cooldown`` the
  breaker admits probe requests (``HALF_OPEN``); a successful probe
  closes it, a failed probe re-opens it. A shard re-joining the ring is
  therefore re-probed and folded back in automatically;
* **graceful degradation** — when the breaker is open or retries are
  exhausted, :meth:`ClusterGuard.call` raises
  :class:`~repro.errors.ShardUnavailableError` and the caller falls back
  to persistent storage (a *degraded read*) instead of crashing the run.

The live cluster is untimed, so the guard keeps a **logical clock**: one
tick per guarded operation. ``cooldown`` is therefore expressed in
operations, which keeps chaos tests fully deterministic; a wall-clock
deployment would pass ``time.monotonic``-based delays via ``sleep``.
Backoff delays are *accounted* (``stats.backoff_total``) rather than
slept by default, matching the repo's measure-don't-wait style.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from repro.errors import (
    ConfigurationError,
    ShardFailure,
    ShardUnavailableError,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ClusterGuard",
    "RetryPolicy",
    "RetryStats",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for one shard request.

    ``backoff(attempt)`` grows as ``base_backoff * multiplier ** attempt``
    with ±``jitter`` fractional randomization — the classic exponential
    backoff with jitter that prevents synchronized retry storms across
    front ends.
    """

    max_attempts: int = 3
    base_backoff: float = 1e-3
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff < 0:
            raise ConfigurationError("base_backoff must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered."""
        delay = self.base_backoff * self.multiplier**attempt
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker thresholds (cooldown in logical-clock ticks)."""

    failure_threshold: int = 5
    cooldown: float = 64.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")


class BreakerState(enum.Enum):
    """The classic three-state breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One shard's breaker: consecutive-failure trip, cooldown re-probe."""

    __slots__ = (
        "_config",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_half_open_successes",
        "opens",
        "half_opens",
        "closes",
    )

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self._config = config or BreakerConfig()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_successes = 0
        #: lifetime transition counters (the instrumentation the chaos
        #: experiment reports)
        self.opens = 0
        self.half_opens = 0
        self.closes = 0

    # ----------------------------------------------------------------- state

    def peek(self, now: float) -> BreakerState:
        """The state at ``now``, *without* performing transitions."""
        if (
            self._state is BreakerState.OPEN
            and now - self._opened_at >= self._config.cooldown
        ):
            return BreakerState.HALF_OPEN
        return self._state

    @property
    def state(self) -> BreakerState:
        """Last materialized state (cooldown expiry applies on next allow)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Current run of failures while closed."""
        return self._consecutive_failures

    def allow(self, now: float) -> bool:
        """Whether a request may go out now (materializes ``HALF_OPEN``)."""
        if self._state is BreakerState.OPEN:
            if now - self._opened_at < self._config.cooldown:
                return False
            self._state = BreakerState.HALF_OPEN
            self._half_open_successes = 0
            self.half_opens += 1
        return True

    # ------------------------------------------------------------- outcomes

    def record_success(self, now: float) -> None:
        """Feed one successful request outcome."""
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._config.half_open_probes:
                self._state = BreakerState.CLOSED
                self.closes += 1
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """Feed one failed request outcome."""
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN, cooldown restarts.
            self._state = BreakerState.OPEN
            self._opened_at = now
            self._consecutive_failures = 0
            self.opens += 1
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self._config.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = now
            self.opens += 1

    def reset(self) -> None:
        """Force-close (explicit shard rejoin); transition totals are kept."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._half_open_successes = 0


@dataclass
class RetryStats:
    """Aggregate counters over every guarded shard operation."""

    #: guarded operations started
    operations: int = 0
    #: individual request attempts (>= operations)
    attempts: int = 0
    #: attempts that were retries of a failed attempt
    retries: int = 0
    #: operations abandoned (breaker open or retries exhausted)
    failures: int = 0
    #: operations rejected instantly by an open breaker
    open_rejections: int = 0
    #: total backoff delay accounted (seconds; not slept by default)
    backoff_total: float = 0.0
    #: write-path invalidations that could not reach their shard
    lost_invalidations: int = 0


class ClusterGuard:
    """Per-shard breakers + retry loop guarding every shard request.

    Parameters
    ----------
    servers:
        shard ids to pre-register breakers for; shards discovered later
        (cluster scale-out) are registered on first use.
    retry / breaker:
        policy knobs; defaults are deliberately conservative.
    seed:
        seeds the backoff jitter.
    sleep:
        optional callable invoked with each backoff delay. ``None`` (the
        default) accounts the delay without waiting — the in-process
        reproduction measures time, it does not spend it.
    """

    def __init__(
        self,
        servers: Iterable[str] = (),
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.retry = retry or RetryPolicy()
        self.breaker_config = breaker or BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {
            sid: CircuitBreaker(self.breaker_config) for sid in servers
        }
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._clock = 0.0
        self.stats = RetryStats()

    # ----------------------------------------------------------- inspection

    @property
    def now(self) -> float:
        """The guard's logical clock (one tick per guarded operation)."""
        return self._clock

    def breaker(self, server_id: str) -> CircuitBreaker:
        """The shard's breaker, created on first reference."""
        breaker = self._breakers.get(server_id)
        if breaker is None:
            breaker = self._breakers[server_id] = CircuitBreaker(
                self.breaker_config
            )
        return breaker

    def state(self, server_id: str) -> BreakerState:
        """The shard's breaker state at the current logical time."""
        return self.breaker(server_id).peek(self._clock)

    def tracked_servers(self) -> frozenset[str]:
        """Ids with a breaker on record (invariant-check hook).

        After :meth:`forget` runs for removed shards this stays a subset
        of live membership — an OPEN breaker must not outlive its shard
        and trip against an unrelated future one.
        """
        return frozenset(self._breakers)

    def unavailable_servers(self) -> frozenset[str]:
        """Shards whose breaker is not closed right now.

        The elastic controller uses this to keep a dead shard's partial
        epoch counts out of its ``I_c`` computation (churn safety).
        """
        return frozenset(
            sid
            for sid, breaker in self._breakers.items()
            if breaker.peek(self._clock) is not BreakerState.CLOSED
        )

    def breaker_transitions(self) -> dict[str, int]:
        """Summed ``opens`` / ``half_opens`` / ``closes`` across shards."""
        totals = {"opens": 0, "half_opens": 0, "closes": 0}
        for breaker in self._breakers.values():
            totals["opens"] += breaker.opens
            totals["half_opens"] += breaker.half_opens
            totals["closes"] += breaker.closes
        return totals

    # ------------------------------------------------------------- topology

    def reset(self, server_id: str) -> None:
        """Force-close the shard's breaker (explicit rejoin notification)."""
        self.breaker(server_id).reset()

    def forget(self, server_id: str) -> None:
        """Drop the breaker of a shard that left the ring for good."""
        self._breakers.pop(server_id, None)

    # ------------------------------------------------------------------ call

    def call(self, server_id: str, fn: Callable[[], T]) -> T:
        """Run one shard request under retry + breaker protection.

        Returns ``fn()``'s result; raises
        :class:`~repro.errors.ShardUnavailableError` when the breaker is
        open or retries are exhausted. Only
        :class:`~repro.errors.ShardFailure` is treated as retryable —
        anything else is a programming error and propagates untouched.
        """
        self._clock += 1.0
        now = self._clock
        self.stats.operations += 1
        breaker = self._breakers.get(server_id)
        if breaker is None:
            breaker = self._breakers[server_id] = CircuitBreaker(
                self.breaker_config
            )
        if not breaker.allow(now):
            self.stats.open_rejections += 1
            self.stats.failures += 1
            raise ShardUnavailableError(
                f"shard {server_id}: circuit open"
            )
        attempt = 0
        while True:
            self.stats.attempts += 1
            try:
                result = fn()
            except ShardFailure as exc:
                breaker.record_failure(now)
                attempt += 1
                if (
                    attempt >= self.retry.max_attempts
                    or breaker.peek(now) is BreakerState.OPEN
                ):
                    self.stats.failures += 1
                    raise ShardUnavailableError(
                        f"shard {server_id}: gave up after {attempt} "
                        f"attempt(s): {exc}"
                    ) from exc
                delay = self.retry.backoff(attempt - 1, self._rng)
                self.stats.retries += 1
                self.stats.backoff_total += delay
                if self._sleep is not None:
                    self._sleep(delay)
                continue
            breaker.record_success(now)
            return result
