"""Assembly of the back-end storage layer: shards + ring + storage.

One :class:`CacheCluster` is shared by all front ends in an experiment,
mirroring the paper's testbed of 8 memcached shards over 4 machines plus a
persistent layer. Front ends talk to it through the server objects the
ring resolves; the cluster also offers whole-layer views (aggregate load,
imbalance) used by the harnesses.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.cluster.backend import BackendCacheServer
from repro.cluster.faults import FaultInjector
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.loadmonitor import load_imbalance
from repro.cluster.storage import PersistentStore
from repro.errors import ClusterError, ConfigurationError

__all__ = ["CacheCluster"]


class CacheCluster:
    """A consistent-hashed fleet of back-end cache shards over storage.

    Parameters
    ----------
    num_servers:
        number of shards (the paper deploys 8).
    capacity_bytes:
        per-shard memory budget (paper: 4 GB).
    virtual_nodes:
        ring points per shard. The default (8192) is much higher than
        ketama's 160 so the ring's *key-count* shares are near-even
        (max/min share ratio ≈ 1.02 for 8 shards) and measured
        load-imbalance reflects workload skew rather than hashing
        artifacts — matching the paper's premise that consistent hashing
        "ensures a fair distribution of the number of keys" while skew
        drives the load problem.
    value_size:
        default accounting size of values (paper: 750 KB).
    storage:
        the persistent layer; a fresh one is created when omitted.
    faults:
        optional :class:`~repro.cluster.faults.FaultInjector` attached to
        every shard (including shards added later), enabling the chaos
        experiments' kill/slow/flaky scenarios.
    """

    def __init__(
        self,
        num_servers: int = 8,
        capacity_bytes: int = 4 * 1024**3,
        virtual_nodes: int = 8192,
        value_size: int = 750 * 1024,
        storage: PersistentStore | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("num_servers must be >= 1")
        self._value_size = value_size
        self.faults = faults
        self._servers: dict[str, BackendCacheServer] = {}
        #: monotonic shard-id counter: ids are minted exactly once per
        #: cluster lifetime, so a shard added after a scale-in can never
        #: alias a departed shard and inherit its fault profile, breaker
        #: state, load window or router quarantine entries.
        self._next_server_index = num_servers
        server_ids = [f"cache-{i}" for i in range(num_servers)]
        for server_id in server_ids:
            self._servers[server_id] = BackendCacheServer(
                server_id,
                capacity_bytes=capacity_bytes,
                default_value_size=value_size,
                fault_injector=faults,
            )
        self.ring = ConsistentHashRing(server_ids, virtual_nodes=virtual_nodes)
        self.storage = storage if storage is not None else PersistentStore()
        #: callbacks invoked with a shard id after it revives *cold* (its
        #: contents were wiped). Front ends register here so routing state
        #: keyed on shard contents/load — per-shard epoch load windows,
        #: pending replica demotions — can be reset at the same moment.
        self.cold_revival_listeners: list[Callable[[str], None]] = []
        #: callbacks invoked with a shard id after :meth:`remove_server`
        #: dropped it (mirroring ``cold_revival_listeners``). Front ends
        #: and routers register here to purge per-shard state — breakers,
        #: epoch load windows, replica placements — the moment the shard
        #: leaves, instead of carrying it until some lazy revalidation.
        self.removal_listeners: list[Callable[[str], None]] = []

    # ----------------------------------------------------------- inspection

    @property
    def server_ids(self) -> tuple[str, ...]:
        """Shard identifiers, in creation order."""
        return tuple(self._servers)

    @property
    def value_size(self) -> int:
        """Default accounting size for stored values."""
        return self._value_size

    def server(self, server_id: str) -> BackendCacheServer:
        """Resolve a shard object by id."""
        try:
            return self._servers[server_id]
        except KeyError:
            raise ClusterError(f"unknown server: {server_id}") from None

    def server_for(self, key: Hashable) -> BackendCacheServer:
        """The shard responsible for ``key`` per the ring."""
        return self._servers[self.ring.server_for(key)]

    def replicas_for(self, key: Hashable, r: int) -> tuple[str, ...]:
        """The ``r`` distinct shard ids of ``key``'s replica set
        (primary first; see :meth:`ConsistentHashRing.lookup_replicas`)."""
        return self.ring.lookup_replicas(key, r)

    # ------------------------------------------------------ elastic topology

    def add_server(
        self, capacity_bytes: int | None = None
    ) -> BackendCacheServer:
        """Scale out by one shard (cloud elasticity hook).

        The shard id comes from a cluster-lifetime monotonic counter, so
        ids are never reused: naming the shard after the *current* member
        count re-minted a removed shard's id after a scale-in (remove
        ``cache-3`` on a 4-shard cluster, add → ``cache-3`` again), and
        the reincarnation inherited every piece of per-shard state keyed
        on the id — the old FaultInjector profile, OPEN breakers, epoch
        load windows and router quarantines. A fresh id starts clean
        everywhere by construction.
        """
        server_id = f"cache-{self._next_server_index}"
        self._next_server_index += 1
        template = next(iter(self._servers.values()))
        server = BackendCacheServer(
            server_id,
            capacity_bytes=capacity_bytes or template.capacity_bytes,
            default_value_size=self._value_size,
            fault_injector=self.faults,
        )
        self._servers[server_id] = server
        self.ring.add_server(server_id)
        return server

    def remove_server(self, server_id: str) -> None:
        """Scale in: remove a shard (its keys redistribute via the ring).

        Two correctness obligations beyond dropping the shard:

        * **Re-homed copies are purged from survivors.** Removing a shard
          hands its key range back to ring successors, and a successor
          may still hold a copy from an *earlier* ownership stint — one
          that missed every invalidation while the key lived elsewhere
          (add ``D`` → key moves to ``D`` → write deletes on ``D`` only →
          remove ``D`` → the old owner serves its pre-write copy). Every
          survivor drops its copies of the keys the departing shard
          owned, so ownership can never regress onto a stale copy.
          (Additions need no purge: a new shard starts empty and
          ownership only ever moves *to* it.)
        * **Per-shard state is released.** The shard's fault profile is
          cleared here (a later shard must not inherit an injected
          fault), and ``removal_listeners`` fire so front ends and
          routers purge breakers, epoch load windows and replica
          placements keyed on the id. The
          :class:`~repro.cluster.invalidation.InvalidationBus` directory
          needs no hook: it tracks *front-end* copies by client id and is
          shard-agnostic — re-homing a key does not move or stale the
          front-end copies the directory describes.
        """
        if server_id not in self._servers:
            raise ClusterError(f"unknown server: {server_id}")
        if len(self._servers) == 1:
            raise ClusterError("cannot remove the last server")
        server_for = self.ring.server_for
        for sid, survivor in self._servers.items():
            if sid == server_id:
                continue
            for key in survivor.keys():
                if server_for(key) == server_id:
                    survivor.drop(key)
        self.ring.remove_server(server_id)
        del self._servers[server_id]
        if self.faults is not None:
            self.faults.clear(server_id)
        for listener in self.removal_listeners:
            listener(server_id)

    # --------------------------------------------------------------- faults

    def _require_faults(self) -> FaultInjector:
        if self.faults is None:
            raise ClusterError(
                "this cluster was built without a FaultInjector "
                "(pass faults=FaultInjector() to CacheCluster)"
            )
        return self.faults

    def kill_server(self, server_id: str) -> None:
        """Take a shard down (cloud instance failure / migration start)."""
        if server_id not in self._servers:
            raise ClusterError(f"unknown server: {server_id}")
        self._require_faults().kill(server_id)

    def revive_server(self, server_id: str, cold: bool = True) -> None:
        """Bring a shard back.

        ``cold=True`` (default) flushes its contents first — a revived
        cloud instance restarts with an empty cache, which also removes
        any copies that went stale while write-path invalidations could
        not reach the dead shard.
        """
        server = self.server(server_id)
        self._require_faults().revive(server_id)
        if cold:
            server.flush()
            for listener in self.cold_revival_listeners:
                listener(server_id)

    # ------------------------------------------------------------ aggregate

    def loads(self) -> dict[str, int]:
        """Lifetime lookup counts per shard (server-side view)."""
        return {sid: s.stats.gets for sid, s in self._servers.items()}

    def epoch_loads(self) -> dict[str, int]:
        """Per-epoch lookup counts per shard."""
        return {sid: s.stats.epoch_gets for sid, s in self._servers.items()}

    def imbalance(self) -> float:
        """Server-side lifetime load-imbalance (max/min of shard gets)."""
        return load_imbalance(self.loads())

    def total_lookups(self) -> int:
        """All lookups that reached the caching layer."""
        return sum(s.stats.gets for s in self._servers.values())

    def reset_epoch(self) -> None:
        """Start a new epoch window on every shard."""
        for server in self._servers.values():
            server.stats.reset_epoch()

    def flush(self) -> None:
        """Flush every shard's contents."""
        for server in self._servers.values():
            server.flush()

    def expected_assignment(self, keys: Iterable[Hashable]) -> Mapping[str, int]:
        """Key-count ownership per shard (analysis helper)."""
        return {
            sid: len(bucket) for sid, bucket in self.ring.assignment(keys).items()
        }
