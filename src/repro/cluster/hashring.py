"""Consistent hashing (Karger et al. 1997), spymemcached-style.

Front ends locate keys in the caching layer with a ketama-like consistent
hash ring: each back-end server owns many virtual points on a 32-bit ring
(MD5-derived), and a key maps to the first server point at or after the
key's hash. This solves key discovery and minimizes churn when servers
join or leave — and, as the paper stresses, it balances *key counts* but
not *key workloads*, which is exactly the load-imbalance CoT attacks.

The replicated hot-key tier extends the single-owner mapping with
:meth:`ConsistentHashRing.lookup_replicas`: the ``r`` *distinct* servers
whose points follow the key's hash, in ring order, with the primary owner
first — DistCache-style replica placement without a second hash function.
Replica lookups are served from a per-ring-epoch successor table so the
hot read path pays one bisect plus a tuple fetch rather than ``r`` ring
walks.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

from repro.errors import ClusterError, ConfigurationError

__all__ = ["ConsistentHashRing"]


def _hash32(data: str) -> int:
    """First 4 bytes of MD5 as an unsigned 32-bit ring position."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class ConsistentHashRing:
    """MD5-based consistent hash ring with virtual nodes.

    Parameters
    ----------
    servers:
        initial server identifiers (any strings).
    virtual_nodes:
        points per server on the ring. 160 mirrors ketama's 40×4 layout;
        more points smooth key-count balance at the cost of memory.
    """

    def __init__(
        self,
        servers: Iterable[str] = (),
        virtual_nodes: int = 160,
    ) -> None:
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        self._virtual_nodes = virtual_nodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._servers: set[str] = set()
        #: monotone membership-change counter; every add/remove bumps it,
        #: invalidating the cached successor tables below
        self._epoch = 0
        #: ``r -> tuple-per-ring-point of the next r distinct owners``,
        #: built lazily per (epoch, r) so replica lookups are one bisect
        self._successors: dict[int, list[tuple[str, ...]]] = {}
        for server in servers:
            self.add_server(server)

    # ------------------------------------------------------------------ api

    @property
    def servers(self) -> frozenset[str]:
        """The current server set."""
        return frozenset(self._servers)

    @property
    def virtual_nodes(self) -> int:
        """Ring points per server."""
        return self._virtual_nodes

    @property
    def epoch(self) -> int:
        """Membership-change counter (bumped by every add/remove)."""
        return self._epoch

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: str) -> bool:
        return server in self._servers

    def add_server(self, server: str) -> None:
        """Place ``server``'s virtual points on the ring.

        The ring is kept sorted by ``(point, owner)``: a 32-bit hash
        collision between two servers' virtual points is broken by owner
        id, never by insertion order, so ring ownership is a pure
        function of the member set — a freshly built ring and one that
        saw arbitrary churn agree on every key.
        """
        if server in self._servers:
            raise ClusterError(f"server already on ring: {server}")
        self._servers.add(server)
        pairs = list(zip(self._points, self._owners))
        pairs.extend(
            (_hash32(f"{server}#{replica}"), server)
            for replica in range(self._virtual_nodes)
        )
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]
        self._epoch += 1
        self._successors.clear()

    def remove_server(self, server: str) -> None:
        """Remove all of ``server``'s points (its keys redistribute)."""
        if server not in self._servers:
            raise ClusterError(f"server not on ring: {server}")
        self._servers.remove(server)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != server
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._epoch += 1
        self._successors.clear()

    def server_for(self, key: Hashable) -> str:
        """The server responsible for ``key``.

        ``bisect_left`` realizes "first server point at or after the
        key's hash": a point equal to the key's hash owns the key, and
        among colliding points the ``(point, owner)`` order makes the
        lexicographically smallest owner win — deterministically,
        independent of add/remove history.
        """
        if not self._points:
            raise ClusterError("hash ring is empty")
        point = _hash32(str(key))
        idx = bisect.bisect_left(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    # ------------------------------------------------------------- replicas

    def _successor_table(self, r: int) -> list[tuple[str, ...]]:
        """``table[i]`` = the first ``r`` distinct owners at/after point ``i``.

        Built once per (membership epoch, ``r``) and then shared by every
        :meth:`lookup_replicas` call: the amortized replica lookup is one
        bisect plus a tuple fetch instead of an O(r · collisions) ring
        walk per key. The build itself walks forward from each point with
        a small seen-set — with balanced virtual nodes the expected walk
        is a few steps (partial coupon collecting over the server set).
        """
        owners = self._owners
        n = len(owners)
        table: list[tuple[str, ...]] = [()] * n
        for i in range(n):
            picked: list[str] = []
            seen: set[str] = set()
            j = i
            for _ in range(n):
                owner = owners[j]
                if owner not in seen:
                    seen.add(owner)
                    picked.append(owner)
                    if len(picked) == r:
                        break
                j += 1
                if j == n:
                    j = 0
            table[i] = tuple(picked)
        self._successors[r] = table
        return table

    def lookup_replicas(self, key: Hashable, r: int) -> tuple[str, ...]:
        """The ``r`` distinct servers holding ``key``'s replica set.

        Walks the ring from the key's hash, collecting the first ``r``
        *distinct* owners in point order — ``result[0]`` is always
        :meth:`server_for`'s primary owner, so an unreplicated lookup is
        the degenerate ``r=1`` case. When fewer than ``r`` servers exist
        the whole membership is returned (capped, never padded); the
        distinct-owner guarantee means a replica set never places two
        copies on one shard regardless of virtual-point collisions.
        """
        if r < 1:
            raise ConfigurationError("replica count must be >= 1")
        if not self._points:
            raise ClusterError("hash ring is empty")
        r = min(r, len(self._servers))
        table = self._successors.get(r)
        if table is None:
            table = self._successor_table(r)
        point = _hash32(str(key))
        idx = bisect.bisect_left(self._points, point)
        if idx == len(self._points):
            idx = 0
        return table[idx]

    def assignment(self, keys: Iterable[Hashable]) -> dict[str, list[Hashable]]:
        """Group ``keys`` by owning server (analysis helper)."""
        result: dict[str, list[Hashable]] = {server: [] for server in self._servers}
        for key in keys:
            result[self.server_for(key)].append(key)
        return result

    def key_count_balance(self, keys: Sequence[Hashable]) -> float:
        """max/min of per-server *key counts* — the balance consistent
        hashing does provide (contrast with workload imbalance)."""
        assignment = self.assignment(keys)
        counts = [len(bucket) for bucket in assignment.values()]
        low = min(counts)
        return max(counts) / max(low, 1)
