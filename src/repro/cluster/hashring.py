"""Consistent hashing (Karger et al. 1997), spymemcached-style.

Front ends locate keys in the caching layer with a ketama-like consistent
hash ring: each back-end server owns many virtual points on a 32-bit ring
(MD5-derived), and a key maps to the first server point at or after the
key's hash. This solves key discovery and minimizes churn when servers
join or leave — and, as the paper stresses, it balances *key counts* but
not *key workloads*, which is exactly the load-imbalance CoT attacks.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

from repro.errors import ClusterError, ConfigurationError

__all__ = ["ConsistentHashRing"]


def _hash32(data: str) -> int:
    """First 4 bytes of MD5 as an unsigned 32-bit ring position."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class ConsistentHashRing:
    """MD5-based consistent hash ring with virtual nodes.

    Parameters
    ----------
    servers:
        initial server identifiers (any strings).
    virtual_nodes:
        points per server on the ring. 160 mirrors ketama's 40×4 layout;
        more points smooth key-count balance at the cost of memory.
    """

    def __init__(
        self,
        servers: Iterable[str] = (),
        virtual_nodes: int = 160,
    ) -> None:
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        self._virtual_nodes = virtual_nodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._servers: set[str] = set()
        for server in servers:
            self.add_server(server)

    # ------------------------------------------------------------------ api

    @property
    def servers(self) -> frozenset[str]:
        """The current server set."""
        return frozenset(self._servers)

    @property
    def virtual_nodes(self) -> int:
        """Ring points per server."""
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: str) -> bool:
        return server in self._servers

    def add_server(self, server: str) -> None:
        """Place ``server``'s virtual points on the ring.

        The ring is kept sorted by ``(point, owner)``: a 32-bit hash
        collision between two servers' virtual points is broken by owner
        id, never by insertion order, so ring ownership is a pure
        function of the member set — a freshly built ring and one that
        saw arbitrary churn agree on every key.
        """
        if server in self._servers:
            raise ClusterError(f"server already on ring: {server}")
        self._servers.add(server)
        pairs = list(zip(self._points, self._owners))
        pairs.extend(
            (_hash32(f"{server}#{replica}"), server)
            for replica in range(self._virtual_nodes)
        )
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]

    def remove_server(self, server: str) -> None:
        """Remove all of ``server``'s points (its keys redistribute)."""
        if server not in self._servers:
            raise ClusterError(f"server not on ring: {server}")
        self._servers.remove(server)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != server
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def server_for(self, key: Hashable) -> str:
        """The server responsible for ``key``.

        ``bisect_left`` realizes "first server point at or after the
        key's hash": a point equal to the key's hash owns the key, and
        among colliding points the ``(point, owner)`` order makes the
        lexicographically smallest owner win — deterministically,
        independent of add/remove history.
        """
        if not self._points:
            raise ClusterError("hash ring is empty")
        point = _hash32(str(key))
        idx = bisect.bisect_left(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def assignment(self, keys: Iterable[Hashable]) -> dict[str, list[Hashable]]:
        """Group ``keys`` by owning server (analysis helper)."""
        result: dict[str, list[Hashable]] = {server: [] for server in self._servers}
        for key in keys:
            result[self.server_for(key)].append(key)
        return result

    def key_count_balance(self, keys: Sequence[Hashable]) -> float:
        """max/min of per-server *key counts* — the balance consistent
        hashing does provide (contrast with workload imbalance)."""
        assignment = self.assignment(keys)
        counts = [len(bucket) for bucket in assignment.values()]
        low = min(counts)
        return max(counts) / max(low, 1)
