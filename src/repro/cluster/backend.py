"""A memcached-like back-end caching shard.

The paper deploys 8 memcached instances (4 GB each) behind consistent
hashing. :class:`BackendCacheServer` reproduces the relevant behaviour:
a byte-budgeted LRU store with ``get``/``set``/``delete`` and per-server
counters, so the experiment harness can read off exactly the per-server
lookup loads that define back-end load-imbalance.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterator

from repro.errors import ConfigurationError, ShardFailure
from repro.policies.base import MISSING

if TYPE_CHECKING:  # cycle-free: faults only needs error classes
    from repro.cluster.faults import FaultInjector

__all__ = ["BackendCacheServer", "BackendStats"]


@dataclass(slots=True)
class BackendStats:
    """Operation counters for one back-end shard.

    ``gets`` counts lookup arrivals (the load-imbalance denominator);
    ``epoch_gets`` is a resettable window used by per-epoch monitoring.
    Slotted: every routed back-end lookup writes two of these counters.
    """

    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    epoch_gets: int = field(default=0)
    #: requests that failed because of an injected fault (down/slow/flaky)
    fault_errors: int = 0

    @property
    def get_hit_rate(self) -> float:
        """Fraction of gets served from this shard's memory."""
        return self.get_hits / self.gets if self.gets else 0.0

    def reset_epoch(self) -> None:
        """Zero the per-epoch window."""
        self.epoch_gets = 0


class BackendCacheServer:
    """Byte-budgeted LRU key/value shard (one "memcached instance").

    Parameters
    ----------
    server_id:
        identity on the hash ring.
    capacity_bytes:
        memory budget; values beyond it evict LRU entries. The paper's
        shards hold 4 GB against a 715 GB dataset, i.e. the caching layer
        itself also misses sometimes.
    default_value_size:
        accounting size for values whose size cannot be inferred.
    fault_injector:
        optional :class:`~repro.cluster.faults.FaultInjector`; when set,
        every request first consults it and may raise a
        :class:`~repro.errors.ShardFailure` (down / timed-out / flaky).
    """

    def __init__(
        self,
        server_id: str,
        capacity_bytes: int = 4 * 1024**3,
        default_value_size: int = 750 * 1024,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError("capacity_bytes must be >= 1")
        if default_value_size < 1:
            raise ConfigurationError("default_value_size must be >= 1")
        self.server_id = server_id
        self._capacity_bytes = capacity_bytes
        self._default_value_size = default_value_size
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._bytes_used = 0
        self.stats = BackendStats()
        self.fault_injector = fault_injector

    # ----------------------------------------------------------- inspection

    @property
    def capacity_bytes(self) -> int:
        """Configured memory budget."""
        return self._capacity_bytes

    @property
    def bytes_used(self) -> int:
        """Bytes currently accounted to stored values."""
        return self._bytes_used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Iterate stored keys, LRU to MRU."""
        return iter(list(self._entries))

    # ------------------------------------------------------------- protocol

    def _check_fault(self) -> None:
        """Apply the injected fault, if any, to this request."""
        if self.fault_injector is not None:
            try:
                self.fault_injector.check(self.server_id)
            except ShardFailure:
                self.stats.fault_errors += 1
                raise

    def get(self, key: Hashable) -> Any:
        """Serve a lookup; returns the value or ``MISSING``."""
        self._check_fault()
        self.stats.gets += 1
        self.stats.epoch_gets += 1
        entry = self._entries.get(key)
        if entry is None:
            return MISSING
        self._entries.move_to_end(key)
        self.stats.get_hits += 1
        return entry[0]

    def get_many(self, keys: list[Hashable]) -> dict[Hashable, Any]:
        """Serve a batched lookup (memcached's getMulti).

        Each key counts as one lookup for load accounting — a multi-get
        of 100 keys is 100 units of work on this shard, matching how
        page-load fan-out drives the load-imbalance problem. The fault
        check happens once per batch (one RPC, one failure). Returns only
        the present keys.
        """
        self._check_fault()
        found: dict[Hashable, Any] = {}
        entries = self._entries
        stats = self.stats
        for key in keys:
            stats.gets += 1
            stats.epoch_gets += 1
            entry = entries.get(key)
            if entry is None:
                continue
            entries.move_to_end(key)
            stats.get_hits += 1
            found[key] = entry[0]
        return found

    def set(self, key: Hashable, value: Any, size: int | None = None) -> None:
        """Store a value, evicting LRU entries to fit the byte budget."""
        self._check_fault()
        self.stats.sets += 1
        size = self._default_value_size if size is None else size
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes_used -= old[1]
        size = min(size, self._capacity_bytes)
        while self._bytes_used + size > self._capacity_bytes and self._entries:
            _victim, (_value, victim_size) = self._entries.popitem(last=False)
            self._bytes_used -= victim_size
            self.stats.evictions += 1
        self._entries[key] = (value, size)
        self._bytes_used += size

    def delete(self, key: Hashable) -> bool:
        """Invalidate a key; returns whether it was present."""
        self._check_fault()
        self.stats.deletes += 1
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes_used -= entry[1]
        return True

    def drop(self, key: Hashable) -> None:
        """Administratively evict ``key`` (topology-change housekeeping).

        Unlike :meth:`delete` this is control-plane work, not a client
        request: no fault is injected (a flaky shard must not be able to
        veto the purge of a copy that is about to become reachable again)
        and no protocol counters move.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes_used -= entry[1]

    def flush(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()
        self._bytes_used = 0
