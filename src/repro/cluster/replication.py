"""The replicated hot-key tier (DistCache direction, ROADMAP item 1).

Consistent hashing gives every key exactly one owner, so one hot shard
caps cluster throughput no matter how well the front-end caches absorb
the head of the distribution — a single key hotter than one shard's
capacity saturates it. DistCache (arXiv:1901.08200) shows that
replicating *only the agreed-upon heavy hitters* across a second layer
and routing reads with power-of-two-choices restores provable load
balance; Pourmiri et al. (arXiv:1706.10209) pin the win on the
two-choices step. This module is that tier for the repro's cluster data
plane:

* a :class:`HotKeyRouter` holds the *agreed* replicated key set — the
  heavy hitters the CoT trackers already maintain, aggregated across
  front ends each promotion epoch (:meth:`HotKeyRouter.refresh`);
* promoted keys map to ``R`` distinct shards via
  :meth:`~repro.cluster.hashring.ConsistentHashRing.lookup_replicas`
  (primary first, so disabling replication degenerates to the classic
  single-owner protocol);
* front ends (:class:`~repro.cluster.client.FrontEndClient`) route
  replicated reads with power-of-``d``-choices over the per-shard load
  window their own :class:`~repro.cluster.loadmonitor.LoadMonitor`
  already measures, and fan writes out to every shard that may hold a
  copy, preserving the zero-stale-read guarantee.

Coherence argument (why no stale read escapes):

1. persistent storage stays authoritative — every layer miss backfills
   from it, so a missing copy is always safe;
2. a write deletes the key on *every* shard of its write-target set:
   the current replica set plus any shard with an unresolved (pending)
   demotion-invalidation for that key — and, for a demoted key with
   pending shards, the ring primary, since its reads have returned to
   the classic single-owner path;
3. demotion invalidates the non-primary copies immediately; a shard
   that cannot be reached keeps the key *quarantined* — it is excluded
   from the read choice set and re-enters write fan-out — until the
   delete succeeds or the shard revives cold (which wipes it, clearing
   the quarantine via the cluster's cold-revival listeners);
4. a dead replica drops out of the choice set through the front end's
   existing per-shard circuit breakers (OPEN shards are never chosen;
   HALF_OPEN shards stay eligible so breakers are re-probed and a
   revived replica folds back in).

Under the cold-revival failure model this is exactly the guarantee the
unreplicated path already gives (a lost invalidation only risks
staleness that cold revival wipes); the chaos and stateful-fuzz tests
pin it under random promote/demote/write/kill interleavings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from repro.cluster.retry import ClusterGuard
from repro.errors import ClusterError, ConfigurationError, ShardUnavailableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import CacheCluster

__all__ = [
    "HotKeyRouter",
    "ReplicaEntry",
    "ReplicationConfig",
    "ReplicationStats",
    "tracker_report",
]


@dataclass(frozen=True)
class ReplicationConfig:
    """Tuning knobs of the hot-key tier.

    Parameters
    ----------
    degree:
        ``R`` — shards per replicated key (primary included). 1 turns the
        tier into a pass-through (the replica set is just the primary).
    choices:
        ``d`` of power-of-``d``-choices routing (2 is the classic and the
        theory's sweet spot; higher values trade routing cost for
        marginally tighter balance).
    top_n:
        heavy-hitter candidates each front end reports per refresh.
    max_keys:
        cap on the replicated key set (replication has a per-key write
        and memory cost; only the head of the distribution earns it).
    min_share:
        a key is promoted when its aggregated tracker weight reaches
        this fraction of the total reported weight. The default (0.05)
        approximates "hot enough to matter against a shard's 1/N fair
        share" for the 8-shard testbed.
    demote_share:
        hysteresis floor: an already-replicated key is demoted only when
        its share falls below this (default ``min_share / 2``), so keys
        hovering at the threshold do not flap promote/demote every
        epoch.
    seed:
        seeds the router's control-plane guard jitter.
    """

    degree: int = 3
    choices: int = 2
    top_n: int = 64
    max_keys: int = 64
    min_share: float = 0.05
    demote_share: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigurationError("replication degree must be >= 1")
        if self.choices < 1:
            raise ConfigurationError("choices must be >= 1")
        if self.top_n < 1:
            raise ConfigurationError("top_n must be >= 1")
        if self.max_keys < 1:
            raise ConfigurationError("max_keys must be >= 1")
        if not 0.0 < self.min_share <= 1.0:
            raise ConfigurationError("min_share must be in (0, 1]")
        if self.demote_share is not None and not (
            0.0 <= self.demote_share <= self.min_share
        ):
            raise ConfigurationError(
                "demote_share must be in [0, min_share] (hysteresis floor)"
            )

    @property
    def effective_demote_share(self) -> float:
        """The hysteresis floor in effect (default ``min_share / 2``)."""
        return (
            self.min_share / 2.0
            if self.demote_share is None
            else self.demote_share
        )


@dataclass
class ReplicationStats:
    """Lifetime counters over everything the tier did."""

    #: promotion epochs completed (refresh calls)
    refreshes: int = 0
    promotions: int = 0
    demotions: int = 0
    #: reads served through the replicated path
    replicated_reads: int = 0
    #: replicated reads that actually compared >= 2 alive choices
    two_choice_reads: int = 0
    #: replicated reads with no eligible replica (degraded via primary)
    primary_fallbacks: int = 0
    #: shard-side deletes fanned out on replicated writes
    replica_invalidations: int = 0
    #: fanned deletes that could not reach their shard
    failed_replica_invalidations: int = 0
    #: demotion-invalidations deferred because the shard was unreachable
    deferred_demotions: int = 0
    #: quarantined (key, shard) pairs cleared by cold revival
    revival_clears: int = 0


@dataclass
class ReplicaEntry:
    """One replicated key's placement, as agreed at promotion time.

    ``eligible`` is the read choice set: the replica set minus shards
    quarantined by a failed demotion-invalidation of an *earlier*
    incarnation (those may hold a stale copy and must not serve reads
    until their delete lands or they revive cold).
    """

    replicas: tuple[str, ...]
    promoted_epoch: int
    quarantine: frozenset[str] = field(default_factory=frozenset)
    eligible: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.rebuild_eligible()

    def rebuild_eligible(self) -> None:
        """Recompute the read choice set after a quarantine change."""
        if self.quarantine:
            self.eligible = tuple(
                sid for sid in self.replicas if sid not in self.quarantine
            )
        else:
            self.eligible = self.replicas


def tracker_report(policy: object, n: int) -> list[tuple[Hashable, float]]:
    """One front end's heavy-hitter report: ``[(key, weight), ...]``.

    Reuses the space-saving tracker output every CoT policy already
    maintains (``policy.tracker.top(n)``); policies without a tracker
    (plain LRU/LFU/ARC front ends) report nothing — the tier then simply
    never promotes, which is the correct degenerate behaviour.
    """
    tracker = getattr(policy, "tracker", None)
    top = getattr(tracker, "top", None)
    if top is None:
        return []
    return list(top(n))


class HotKeyRouter:
    """Shared agreement state of the replicated hot-key tier.

    One router is shared by every front end of a run (mirroring
    :class:`~repro.cluster.invalidation.InvalidationBus`): it owns the
    *agreed* replicated key set, the promotion/demotion epochs, and the
    pending-demotion quarantine bookkeeping. Front ends keep their own
    routing state (load monitor, breakers, choice RNG) — the data plane
    stays decentralized, only the agreement on *which* keys are hot is
    shared, exactly DistCache's split.

    Parameters
    ----------
    cluster:
        the shared back-end cluster.
    config:
        tier tuning; default :class:`ReplicationConfig`.
    guard:
        control-plane retry/breaker layer for the router's own
        invalidation traffic (demotions, quarantine retries); a default
        one is built when omitted.
    """

    def __init__(
        self,
        cluster: "CacheCluster",
        config: ReplicationConfig | None = None,
        guard: ClusterGuard | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or ReplicationConfig()
        self.guard = guard or ClusterGuard(
            cluster.server_ids, seed=self.config.seed
        )
        self.stats = ReplicationStats()
        #: promotion-epoch counter (bumped by every refresh and by the
        #: promote/demote primitives, so epoch transitions are observable)
        self.epoch = 0
        #: the hot-path lookup surface: ``key -> ReplicaEntry``. Front
        #: ends bind this dict once and probe it per read; it only ever
        #: mutates through promote/demote on this router.
        self.routes: dict[Hashable, ReplicaEntry] = {}
        #: ``key -> {shard}`` with an unresolved demotion-invalidation:
        #: the shard may still hold a stale copy, so it stays in write
        #: fan-out and out of read choice sets until cleared.
        self._pending: dict[Hashable, set[str]] = {}
        self._ring_epoch = cluster.ring.epoch
        listeners = cluster.cold_revival_listeners
        if self._on_cold_revival not in listeners:
            listeners.append(self._on_cold_revival)
        # Re-place replica sets the moment a shard is scaled in. Waiting
        # for the lazy ring-epoch check at the next refresh left a window
        # in which ``routes`` still named the departed shard: a read
        # sampling it crashed on the cluster lookup, and its quarantine /
        # pending entries referenced a shard that no longer existed.
        removal = cluster.removal_listeners
        if self._on_server_removed not in removal:
            removal.append(self._on_server_removed)

    def detach(self) -> None:
        """Deregister from the cluster's listener lists.

        A router outliving its run (tests, reused clusters) must not
        keep mutating the shared cluster's listener lists. Idempotent.
        """
        for listeners, hook in (
            (self.cluster.cold_revival_listeners, self._on_cold_revival),
            (self.cluster.removal_listeners, self._on_server_removed),
        ):
            try:
                listeners.remove(hook)
            except ValueError:
                pass

    def _on_server_removed(self, _server_id: str) -> None:
        """A shard left the cluster: re-place every affected replica set."""
        self._revalidate_ring()

    # ----------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self.routes)

    def is_replicated(self, key: Hashable) -> bool:
        """Whether ``key`` is currently promoted."""
        return key in self.routes

    def replicas(self, key: Hashable) -> tuple[str, ...]:
        """Current replica set of ``key`` (empty when unreplicated)."""
        entry = self.routes.get(key)
        return entry.replicas if entry is not None else ()

    def replicated_keys(self) -> tuple[Hashable, ...]:
        """The promoted key set (stable iteration order)."""
        return tuple(self.routes)

    def pending_demotions(self, key: Hashable) -> frozenset[str]:
        """Shards still quarantined for ``key`` (test/analysis hook)."""
        return frozenset(self._pending.get(key, ()))

    def pending_snapshot(self) -> dict[Hashable, frozenset[str]]:
        """All unresolved demotion-invalidations (invariant-check hook)."""
        return {key: frozenset(shards) for key, shards in self._pending.items()}

    def write_targets(self, key: Hashable) -> tuple[str, ...]:
        """Every shard a write to ``key`` must invalidate, or ``()``.

        ``()`` means the key has no tier state at all — the caller uses
        the classic single-owner invalidation. Otherwise the set is the
        full replica set (quarantined members included: their stale copy
        is exactly what the write must kill) plus any pending shards of
        a demoted incarnation. A demoted key with pending shards has no
        replica set anymore — its reads go through the classic path to
        the ring primary, so the primary is in the target set too
        (otherwise a write would fan out only to the pending shards and
        leave a stale copy serving on the primary).
        """
        entry = self.routes.get(key)
        pending = self._pending.get(key)
        if entry is None and pending is None:
            return ()
        if entry is not None:
            targets: list[str] = list(entry.replicas)
        else:
            targets = [self.cluster.ring.server_for(key)]
        if pending:
            targets.extend(sid for sid in sorted(pending) if sid not in targets)
        return tuple(targets)

    # ------------------------------------------------------------ mutation

    def promote(self, key: Hashable) -> tuple[str, ...]:
        """Promote ``key`` into the replicated tier; returns its replica set.

        Idempotent. Any quarantined shards from a previous incarnation
        are retried first; shards whose delete still cannot land remain
        quarantined (in write fan-out, out of the read choice set) so a
        stale copy can never serve.
        """
        entry = self.routes.get(key)
        if entry is not None:
            return entry.replicas
        self.epoch += 1
        replicas = self.cluster.replicas_for(key, self.config.degree)
        still = self._retry_pending(key)
        entry = ReplicaEntry(
            replicas=replicas,
            promoted_epoch=self.epoch,
            quarantine=frozenset(still & set(replicas)),
        )
        self.routes[key] = entry
        self.stats.promotions += 1
        return replicas

    def demote(self, key: Hashable) -> None:
        """Demote ``key``: reads return to the primary, copies die.

        Non-primary copies are invalidated immediately; a shard that
        cannot be reached is quarantined (see :meth:`write_targets`).
        Idempotent — demoting an unreplicated key is a no-op.
        """
        entry = self.routes.pop(key, None)
        if entry is None:
            return
        self.epoch += 1
        self.stats.demotions += 1
        primary = self.cluster.ring.server_for(key)
        pending = self._pending.get(key, set())
        pending |= set(entry.quarantine)
        for sid in entry.replicas:
            if sid == primary:
                continue
            if self._invalidate_on(sid, key):
                pending.discard(sid)
            else:
                pending.add(sid)
                self.stats.deferred_demotions += 1
        if pending:
            self._pending[key] = pending
        else:
            self._pending.pop(key, None)

    def quarantine(self, key: Hashable, server_id: str) -> None:
        """Record that ``server_id`` may hold a stale copy of ``key``.

        Called by front ends when a replicated write's invalidation could
        not reach one shard. The shard leaves the read choice set and
        stays in write fan-out until a later delete lands (any writer's,
        or the router's refresh-time retry) or it revives cold.
        """
        self._pending.setdefault(key, set()).add(server_id)
        entry = self.routes.get(key)
        if (
            entry is not None
            and server_id in entry.replicas
            and server_id not in entry.quarantine
        ):
            entry.quarantine = entry.quarantine | {server_id}
            entry.rebuild_eligible()

    def clear_pending(self, key: Hashable, server_id: str) -> None:
        """A delete of ``key`` landed on ``server_id``: lift its quarantine."""
        pending = self._pending.get(key)
        if pending is not None:
            pending.discard(server_id)
            if not pending:
                del self._pending[key]
        entry = self.routes.get(key)
        if entry is not None and server_id in entry.quarantine:
            entry.quarantine = entry.quarantine - {server_id}
            entry.rebuild_eligible()

    def refresh(
        self, front_ends: Sequence[object]
    ) -> tuple[tuple[Hashable, ...], tuple[Hashable, ...]]:
        """One promotion epoch: agree on the heavy hitters, converge.

        Aggregates every front end's tracker report, promotes keys whose
        aggregate weight share reaches ``min_share`` (capped at
        ``max_keys``, hottest first), demotes replicated keys that fell
        below the ``demote_share`` hysteresis floor, and retries pending
        demotion-invalidations. Returns ``(promoted, demoted)`` keys.
        """
        self.stats.refreshes += 1
        self.epoch += 1
        self._revalidate_ring()
        config = self.config
        weights: dict[Hashable, float] = {}
        for client in front_ends:
            policy = getattr(client, "policy", client)
            for key, weight in tracker_report(policy, config.top_n):
                if weight > 0.0:
                    weights[key] = weights.get(key, 0.0) + weight
        total = sum(weights.values())
        promoted: list[Hashable] = []
        demoted: list[Hashable] = []
        if total > 0.0:
            ranked = sorted(weights.items(), key=lambda kv: (-kv[1], str(kv[0])))
            floor = config.effective_demote_share * total
            threshold = config.min_share * total
            keep: set[Hashable] = set()
            # Hysteresis first: an incumbent above the floor keeps its
            # slot wherever it ranks, ahead of new promotions. Checking
            # the floor only inside ranked[:max_keys] would demote a
            # still-hot incumbent the moment it slips past the rank
            # cutoff, so keys hovering at the max_keys rank boundary
            # would flap promote/demote every epoch — exactly what the
            # floor exists to prevent. The cap still binds: with more
            # warm incumbents than slots, the coolest are demoted.
            for key, weight in ranked:
                if len(keep) >= config.max_keys:
                    break
                if key in self.routes and weight >= floor:
                    keep.add(key)
            for key, weight in ranked:
                if len(keep) >= config.max_keys:
                    break
                if key not in self.routes and weight >= threshold:
                    keep.add(key)
        else:
            keep = set()
        for key in sorted(self.routes, key=str):
            if key not in keep:
                demoted.append(key)
        for key in demoted:
            self.demote(key)
        for key in sorted(keep, key=str):
            if key not in self.routes:
                self.promote(key)
                promoted.append(key)
        self._retry_all_pending()
        return tuple(promoted), tuple(demoted)

    # ------------------------------------------------------------- plumbing

    def _invalidate_on(self, server_id: str, key: Hashable) -> bool:
        """Guarded best-effort delete of ``key`` on one shard."""
        try:
            server = self.cluster.server(server_id)
        except ClusterError:
            # The shard left the cluster for good; its contents are gone.
            return True
        self.stats.replica_invalidations += 1
        try:
            self.guard.call(server_id, lambda: server.delete(key))
        except ShardUnavailableError:
            self.stats.failed_replica_invalidations += 1
            return False
        return True

    def _retry_pending(self, key: Hashable) -> set[str]:
        """Retry ``key``'s quarantined deletes; returns shards still stuck."""
        pending = self._pending.get(key)
        if not pending:
            return set()
        members = set(self.cluster.server_ids)
        still = {
            sid
            for sid in sorted(pending)
            if sid in members and not self._invalidate_on(sid, key)
        }
        if still:
            self._pending[key] = still
        else:
            self._pending.pop(key, None)
        return still

    def _retry_all_pending(self) -> None:
        """Retry every quarantined delete (refresh-time housekeeping)."""
        for key in list(self._pending):
            still = self._retry_pending(key)
            entry = self.routes.get(key)
            if entry is not None and set(entry.quarantine) != still:
                entry.quarantine = frozenset(still & set(entry.replicas))
                entry.rebuild_eligible()

    def _revalidate_ring(self) -> None:
        """Re-place replica sets after ring membership changed.

        A shard leaving the replica set of a still-promoted key may keep
        a copy; it is invalidated (or quarantined) exactly like a
        demotion so the placement change cannot strand a stale copy.
        """
        ring_epoch = self.cluster.ring.epoch
        if ring_epoch == self._ring_epoch:
            return
        self._ring_epoch = ring_epoch
        members = set(self.cluster.server_ids)
        for key, entry in list(self.routes.items()):
            replicas = self.cluster.replicas_for(key, self.config.degree)
            if replicas == entry.replicas:
                continue
            dropped = [sid for sid in entry.replicas if sid not in replicas]
            pending = self._pending.get(key, set())
            for sid in dropped:
                if sid in members and not self._invalidate_on(sid, key):
                    pending.add(sid)
                    self.stats.deferred_demotions += 1
                else:
                    pending.discard(sid)
            if pending:
                self._pending[key] = pending
            elif key in self._pending:
                del self._pending[key]
            entry.replicas = replicas
            entry.quarantine = frozenset(pending & set(replicas))
            entry.rebuild_eligible()
        # Pending entries for shards that left the cluster are moot.
        for key in list(self._pending):
            kept = {sid for sid in self._pending[key] if sid in members}
            if kept:
                self._pending[key] = kept
            else:
                del self._pending[key]
                entry = self.routes.get(key)
                if entry is not None and entry.quarantine:
                    entry.quarantine = frozenset()
                    entry.rebuild_eligible()

    def _on_cold_revival(self, server_id: str) -> None:
        """A shard revived cold: its copies are gone, quarantines lift.

        The control-plane breaker is reset too — its failure streak
        belongs to the dead incarnation, and keeping it open would defer
        retryable demotion-invalidations against a live shard for a full
        cooldown (safe, thanks to the quarantine, but needlessly slow).
        """
        self.guard.forget(server_id)
        for key in list(self._pending):
            pending = self._pending[key]
            if server_id not in pending:
                continue
            pending.discard(server_id)
            self.stats.revival_clears += 1
            if not pending:
                del self._pending[key]
            entry = self.routes.get(key)
            if entry is not None and server_id in entry.quarantine:
                entry.quarantine = entry.quarantine - {server_id}
                entry.rebuild_eligible()

    # -------------------------------------------------------------- choice

    def make_choice_rng(self, seed: int) -> random.Random:
        """A per-front-end RNG for replica sampling (seeded, independent)."""
        return random.Random(seed)

    def __repr__(self) -> str:
        return (
            f"HotKeyRouter(keys={len(self.routes)}, epoch={self.epoch}, "
            f"degree={self.config.degree}, choices={self.config.choices})"
        )
