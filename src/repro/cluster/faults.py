"""Failure injection for the cluster and simulator layers.

The paper deploys CoT precisely because "cloud instance migration is the
norm": back-end shards disappear, reappear, slow down, and flake. This
module is the single switchboard for injecting those behaviours into
:class:`~repro.cluster.backend.BackendCacheServer` (live, untimed data
plane) and :class:`~repro.sim.server.SimBackendServer` (discrete-event
timing plane), so chaos experiments and the retry layer's tests share one
fault model:

* **kill / revive** — the shard answers nothing while down
  (:class:`~repro.errors.ShardDownError`);
* **slowdown** — a service-time multiplier. The simulator inflates the
  shard's service time by it; the live data plane has no clock, so a
  slowdown at or beyond ``timeout_factor`` is surfaced as the client's
  request timer firing (:class:`~repro.errors.ShardTimeoutError`);
* **flaky** — each request independently fails with probability
  ``error_rate`` (:class:`~repro.errors.ShardFlakyError`), seeded and
  deterministic.

A shard with no injected fault pays one ``dict.get`` per request; a
server whose ``fault_injector`` is ``None`` pays a single ``is None``
check, keeping the healthy path inside the perf gate's budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    ShardDownError,
    ShardFailure,
    ShardFlakyError,
    ShardTimeoutError,
)

__all__ = ["FaultInjector", "FaultStats", "ShardFaultProfile"]


@dataclass
class ShardFaultProfile:
    """The injected condition of one shard (all healthy by default)."""

    down: bool = False
    slowdown: float = 1.0
    flaky_rate: float = 0.0

    @property
    def healthy(self) -> bool:
        """Whether this profile injects nothing."""
        return not self.down and self.slowdown == 1.0 and self.flaky_rate == 0.0


@dataclass
class FaultStats:
    """Counters over everything the injector actually did."""

    kills: int = 0
    revives: int = 0
    injected_down: int = 0
    injected_timeouts: int = 0
    injected_flaky: int = 0

    @property
    def injected_total(self) -> int:
        """All injected request failures, regardless of kind."""
        return self.injected_down + self.injected_timeouts + self.injected_flaky


class FaultInjector:
    """Per-shard fault switchboard shared by live servers and the simulator.

    Parameters
    ----------
    seed:
        seeds the flaky-error coin so chaos runs are reproducible.
    timeout_factor:
        slowdown multiplier at (or beyond) which the live data plane
        reports a client-side timeout instead of merely serving slowly —
        the untimed cluster's stand-in for a per-request timer. The
        simulator, which has a clock, keeps serving below this threshold
        with inflated service times.
    """

    def __init__(self, seed: int = 0, timeout_factor: float = 8.0) -> None:
        if timeout_factor <= 1.0:
            raise ConfigurationError("timeout_factor must be > 1")
        self._profiles: dict[str, ShardFaultProfile] = {}
        self._rng = random.Random(seed)
        self._timeout_factor = timeout_factor
        self.stats = FaultStats()

    # ------------------------------------------------------------- controls

    def profile(self, server_id: str) -> ShardFaultProfile:
        """The (mutable) fault profile of ``server_id``, created on demand."""
        profile = self._profiles.get(server_id)
        if profile is None:
            profile = self._profiles[server_id] = ShardFaultProfile()
        return profile

    def kill(self, server_id: str) -> None:
        """Take the shard down; every request fails until :meth:`revive`."""
        profile = self.profile(server_id)
        if not profile.down:
            profile.down = True
            self.stats.kills += 1

    def revive(self, server_id: str) -> None:
        """Bring the shard back (breakers re-probe it on their own)."""
        profile = self.profile(server_id)
        if profile.down:
            profile.down = False
            self.stats.revives += 1

    def set_slowdown(self, server_id: str, factor: float) -> None:
        """Inflate the shard's service time by ``factor`` (1.0 = healthy)."""
        if factor < 1.0:
            raise ConfigurationError("slowdown factor must be >= 1")
        self.profile(server_id).slowdown = factor

    def set_flaky(self, server_id: str, error_rate: float) -> None:
        """Make each request fail independently with ``error_rate``."""
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        self.profile(server_id).flaky_rate = error_rate

    def clear(self, server_id: str) -> None:
        """Remove every injected fault from the shard."""
        self._profiles.pop(server_id, None)

    # ----------------------------------------------------------- inspection

    def is_down(self, server_id: str) -> bool:
        """Whether the shard is currently killed."""
        profile = self._profiles.get(server_id)
        return profile.down if profile is not None else False

    def slowdown(self, server_id: str) -> float:
        """The shard's current service-time multiplier."""
        profile = self._profiles.get(server_id)
        return profile.slowdown if profile is not None else 1.0

    def down_servers(self) -> frozenset[str]:
        """Ids of every currently-killed shard."""
        return frozenset(
            sid for sid, profile in self._profiles.items() if profile.down
        )

    def tracked_servers(self) -> frozenset[str]:
        """Ids with a fault profile on record (healthy profiles included).

        Cluster-wide invariant checks assert this stays a subset of the
        live membership: :meth:`~repro.cluster.cluster.CacheCluster.remove_server`
        clears the departing shard's profile, so a dead-set entry can
        never outlive its shard and leak onto a future one.
        """
        return frozenset(self._profiles)

    # ------------------------------------------------------------ injection

    def probe(self, server_id: str) -> ShardFailure | None:
        """The failure this request suffers, or ``None`` when it succeeds.

        Non-raising form used by the simulator (exceptions do not belong
        in an event loop); :meth:`check` is the raising form for the live
        data plane. Stats are counted here, once per failed request.
        """
        profile = self._profiles.get(server_id)
        if profile is None:
            return None
        if profile.down:
            self.stats.injected_down += 1
            return ShardDownError(f"shard {server_id} is down")
        if profile.slowdown >= self._timeout_factor:
            self.stats.injected_timeouts += 1
            return ShardTimeoutError(
                f"shard {server_id} exceeded the request deadline "
                f"({profile.slowdown:g}x slowdown)"
            )
        if profile.flaky_rate and self._rng.random() < profile.flaky_rate:
            self.stats.injected_flaky += 1
            return ShardFlakyError(f"shard {server_id} flaked")
        return None

    def check(self, server_id: str) -> None:
        """Raise the failure this request suffers, if any (live data plane)."""
        failure = self.probe(server_id)
        if failure is not None:
            raise failure
