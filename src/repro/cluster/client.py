"""The front-end cache client (the paper's modified spymemcached role).

:class:`FrontEndClient` implements the client-driven protocol of Section 2
end to end:

* **get** — try the local front-end cache; on a miss, route to the owning
  shard via consistent hashing (recording the lookup in the local load
  monitor); on a caching-layer miss, read from persistent storage and
  *populate both* the shard and (subject to the policy's admission filter)
  the local cache.
* **set** — write to persistent storage, invalidate the local copy
  (penalizing hotness under CoT's dual-cost model via
  ``policy.record_update``), and send a delete to the caching layer.
* **delete** — delete from storage, invalidate locally, delete in the
  caching layer.

The client is policy-agnostic: any :class:`~repro.policies.base.CachePolicy`
(including :class:`~repro.core.cache.CoTCache`) plugs in unchanged, which
is how all the comparison experiments share one code path.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.loadmonitor import LoadMonitor
from repro.policies.base import MISSING, CachePolicy
from repro.workloads.request import OpType, Request

__all__ = ["FrontEndClient"]


class FrontEndClient:
    """One stateless front-end server's caching client.

    Parameters
    ----------
    cluster:
        the shared back-end cluster.
    policy:
        this front end's local cache replacement policy.
    client_id:
        identity used in experiment output.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        policy: CachePolicy,
        client_id: str = "front-0",
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.client_id = client_id
        self.monitor = LoadMonitor(cluster.server_ids)

    # ------------------------------------------------------------- protocol

    def get(self, key: Hashable) -> Any:
        """Read path of the client-driven protocol.

        Dispatches through the policy's fused ``get_or_admit`` entry
        point: the policy resolves the key once, and only on a local miss
        does :meth:`_fetch_from_backend` route to the owning shard.
        """
        return self.policy.get_or_admit(key, self._fetch_from_backend)

    def _fetch_from_backend(self, key: Hashable) -> Any:
        """Miss loader: shard lookup (load-monitored) with storage backfill."""
        server = self.cluster.server_for(key)
        self.monitor.record_lookup(server.server_id)
        value = server.get(key)
        if value is MISSING:
            value = self.cluster.storage.get(key)
            server.set(key, value)
        return value

    def get_many(self, keys: list[Hashable]) -> dict[Hashable, Any]:
        """Batched read path (spymemcached's getMulti).

        A single page load fetches hundreds of objects (the paper's
        motivating workload); this path serves what it can from the local
        cache, groups the misses by owning shard, issues one batched
        lookup per shard, and backfills layer misses from storage. Every
        key still counts as one lookup toward that shard's load.
        """
        results: dict[Hashable, Any] = {}
        misses_by_server: dict[str, list[Hashable]] = {}
        for key in keys:
            value = self.policy.lookup(key)
            if value is not MISSING:
                results[key] = value
                continue
            server_id = self.cluster.ring.server_for(key)
            misses_by_server.setdefault(server_id, []).append(key)
        for server_id, missed in misses_by_server.items():
            server = self.cluster.server(server_id)
            for _ in missed:
                self.monitor.record_lookup(server_id)
            found = server.get_many(missed)
            for key in missed:
                value = found.get(key, MISSING)
                if value is MISSING:
                    value = self.cluster.storage.get(key)
                    server.set(key, value)
                self.policy.admit(key, value)
                results[key] = value
        return results

    def set(self, key: Hashable, value: Any) -> None:
        """Write path: storage write + local and layer invalidation."""
        self.cluster.storage.set(key, value)
        self.policy.record_update(key)
        self.cluster.server_for(key).delete(key)

    def delete(self, key: Hashable) -> None:
        """Delete path: authoritative delete + invalidations."""
        self.cluster.storage.delete(key)
        self.policy.invalidate(key)
        self.cluster.server_for(key).delete(key)

    def execute(self, request: Any) -> Any:
        """Dispatch one workload operation.

        Accepts :class:`Request` (get/set/delete) and the YCSB
        :class:`~repro.workloads.ycsb.ScanRequest` (mapped onto
        :meth:`get_many` over the scan's key range).
        """
        from repro.workloads.ycsb import ScanRequest  # cycle-free local import

        if isinstance(request, ScanRequest):
            return self.get_many(request.keys())
        if request.op is OpType.GET:
            return self.get(request.key)
        if request.op is OpType.SET:
            self.set(request.key, request.value)
            return None
        self.delete(request.key)
        return None

    # -------------------------------------------------------------- metrics

    def local_hit_rate(self) -> float:
        """Lifetime front-end cache hit rate."""
        return self.policy.stats.hit_rate

    def local_imbalance(self) -> float:
        """This front end's lifetime contribution to back-end imbalance."""
        return self.monitor.imbalance()

    def __repr__(self) -> str:
        return (
            f"FrontEndClient(id={self.client_id!r}, "
            f"policy={type(self.policy).__name__}, "
            f"hit_rate={self.local_hit_rate():.3f})"
        )
