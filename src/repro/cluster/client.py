"""The front-end cache client (the paper's modified spymemcached role).

:class:`FrontEndClient` implements the client-driven protocol of Section 2
end to end:

* **get** — try the local front-end cache; on a miss, route to the owning
  shard via consistent hashing (recording the lookup in the local load
  monitor); on a caching-layer miss, read from persistent storage and
  *populate both* the shard and (subject to the policy's admission filter)
  the local cache.
* **set** — write to persistent storage, invalidate the local copy
  (penalizing hotness under CoT's dual-cost model via
  ``policy.record_update``), and send a delete to the caching layer.
* **delete** — delete from storage, invalidate locally, delete in the
  caching layer.

The client is policy-agnostic: any :class:`~repro.policies.base.CachePolicy`
(including :class:`~repro.core.cache.CoTCache`) plugs in unchanged, which
is how all the comparison experiments share one code path.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.loadmonitor import LoadMonitor
from repro.cluster.retry import ClusterGuard
from repro.errors import ShardUnavailableError
from repro.obs.trace import Trace, Tracer
from repro.policies.base import MISSING, CachePolicy
from repro.workloads.request import OpType, Request

__all__ = ["FrontEndClient"]


class FrontEndClient:
    """One stateless front-end server's caching client.

    Every shard request goes through a :class:`ClusterGuard` — bounded
    retries with backoff for transient failures and a per-shard circuit
    breaker. When a shard is unavailable (breaker open / retries
    exhausted) reads degrade gracefully to persistent storage and are
    counted as *degraded reads* in the load monitor; writes lose only the
    shard-side invalidation (the authoritative storage write always
    lands), which is repaired when the shard revives cold.

    Parameters
    ----------
    cluster:
        the shared back-end cluster.
    policy:
        this front end's local cache replacement policy.
    client_id:
        identity used in experiment output.
    guard:
        retry/breaker layer; a default-configured one is built when
        omitted.
    fallback_penalty:
        accounted extra latency (seconds) of one storage-fallback read,
        fed to :meth:`LoadMonitor.record_degraded` (the untimed data
        plane measures time, it does not spend it).
    tracer:
        optional sampling :class:`~repro.obs.trace.Tracer`; sampled reads
        record a span tree (front-end cache → ring route → shard lookup →
        retry/breaker → storage fallback). ``None`` (and any sampling
        rate of 0) leaves the hot path untouched — decisions, counters
        and outputs are identical with and without it.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        policy: CachePolicy,
        client_id: str = "front-0",
        guard: ClusterGuard | None = None,
        fallback_penalty: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.client_id = client_id
        self.monitor = LoadMonitor(cluster.server_ids)
        self.guard = guard or ClusterGuard(cluster.server_ids)
        self.fallback_penalty = fallback_penalty
        self.tracer = tracer

    # ------------------------------------------------------------- protocol

    def get(self, key: Hashable) -> Any:
        """Read path of the client-driven protocol.

        Dispatches through the policy's fused ``get_or_admit`` entry
        point: the policy resolves the key once, and only on a local miss
        does :meth:`_fetch_from_backend` route to the owning shard.

        The sampling gate is inlined (credit accumulator arithmetic, no
        method call) so an attached low-rate tracer costs almost nothing
        on unsampled requests — the perf gate pins the overhead at <5%.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.credit += tracer.sample_rate
            if tracer.credit >= 1.0:
                return self._traced_get(
                    key, tracer.start_sampled("request.get")
                )
        return self.policy.get_or_admit(key, self._fetch_from_backend)

    def _traced_get(self, key: Hashable, trace: Trace) -> Any:
        """Sampled read: same decisions as :meth:`get`, plus a span tree.

        The policy/guard/monitor calls are identical to the untraced path
        (the equivalence test pins this); only span bookkeeping is added
        around them, so a traced run's counters and outputs match an
        untraced run access-for-access.
        """
        trace.note("key", key)
        trace.note("outcome", "hit")
        try:
            with trace.span("frontend.cache"):
                return self.policy.get_or_admit(
                    key, lambda k: self._traced_fetch(k, trace)
                )
        finally:
            self.tracer.finish(trace)

    def _traced_fetch(self, key: Hashable, trace: Trace) -> Any:
        """Traced twin of :meth:`_fetch_from_backend` (span per stage)."""
        trace.note("outcome", "miss")
        with trace.span("ring.route"):
            server = self.cluster.server_for(key)
        server_id = server.server_id
        self.monitor.record_lookup(server_id)
        stats = self.guard.stats
        retries_before = stats.retries
        try:
            with trace.span("shard.lookup", shard=server_id) as span:
                try:
                    value = self.guard.call(server_id, lambda: server.get(key))
                finally:
                    retried = stats.retries - retries_before
                    if retried:
                        span.meta["retries"] = retried
        except ShardUnavailableError:
            trace.note("outcome", "degraded")
            with trace.span("storage.degraded_read", shard=server_id):
                return self._degraded_read(server_id, key)
        if value is MISSING:
            with trace.span("storage.fallback"):
                value = self.cluster.storage.get(key)
            with trace.span("shard.backfill", shard=server_id):
                self._backfill(server, key, value)
        return value

    def _fetch_from_backend(self, key: Hashable) -> Any:
        """Miss loader: guarded shard lookup with storage backfill.

        An unavailable shard turns the read into a degraded read: the
        value comes straight from persistent storage (always correct —
        storage is authoritative) and the fallback is counted.
        """
        server = self.cluster.server_for(key)
        server_id = server.server_id
        self.monitor.record_lookup(server_id)
        try:
            value = self.guard.call(server_id, lambda: server.get(key))
        except ShardUnavailableError:
            return self._degraded_read(server_id, key)
        if value is MISSING:
            value = self.cluster.storage.get(key)
            self._backfill(server, key, value)
        return value

    def _degraded_read(self, server_id: str, key: Hashable) -> Any:
        """Serve ``key`` from storage because its shard is unavailable."""
        value = self.cluster.storage.get(key)
        self.monitor.record_degraded(server_id, penalty=self.fallback_penalty)
        return value

    def _backfill(self, server: Any, key: Hashable, value: Any) -> None:
        """Populate a shard after a layer miss; best-effort under faults."""
        try:
            self.guard.call(server.server_id, lambda: server.set(key, value))
        except ShardUnavailableError:
            pass  # the value is safe in storage; the shard warms later

    def get_many(self, keys: list[Hashable]) -> dict[Hashable, Any]:
        """Batched read path (spymemcached's getMulti).

        A single page load fetches hundreds of objects (the paper's
        motivating workload). The batch is served in two passes that keep
        the *decisions* identical to sequential :meth:`get` calls:

        1. a side-effect-free ``in policy`` probe splits the batch into
           local hits and prospective misses, groups the misses by owning
           shard (deduplicated), and prefetches each group with one
           batched lookup per shard (layer misses backfilled from
           storage, unavailable shards degrading to storage);
        2. every key then flows through the policy's fused
           ``get_or_admit`` *in original access order*, with a loader
           that serves from the prefetched values — so admission,
           tracking and eviction decisions match the sequential path
           exactly (``tests/test_fastpath_equivalence.py`` pins this).

        A key whose prefetch was invalidated by an earlier admission in
        the same batch (evicted mid-batch, duplicate churn) falls back to
        a normal guarded single-key fetch. Every prefetched key still
        counts as one lookup toward its shard's load.
        """
        policy = self.policy
        prefetched: dict[Hashable, Any] = {}
        misses_by_server: dict[str, list[Hashable]] = {}
        queued: set[Hashable] = set()
        ring_server_for = self.cluster.ring.server_for
        for key in keys:
            if key not in policy and key not in queued:
                queued.add(key)
                misses_by_server.setdefault(ring_server_for(key), []).append(key)
        for server_id, missed in misses_by_server.items():
            server = self.cluster.server(server_id)
            for _ in missed:
                self.monitor.record_lookup(server_id)
            try:
                found = self.guard.call(
                    server_id, lambda: server.get_many(missed)
                )
            except ShardUnavailableError:
                for key in missed:
                    prefetched[key] = self._degraded_read(server_id, key)
                continue
            for key in missed:
                value = found.get(key, MISSING)
                if value is MISSING:
                    value = self.cluster.storage.get(key)
                    self._backfill(server, key, value)
                prefetched[key] = value

        missing = MISSING

        def loader(key: Hashable) -> Any:
            value = prefetched.get(key, missing)
            if value is missing:
                value = self._fetch_from_backend(key)
            return value

        get_or_admit = policy.get_or_admit
        return {key: get_or_admit(key, loader) for key in keys}

    def set(self, key: Hashable, value: Any) -> None:
        """Write path: storage write + local and layer invalidation."""
        self.cluster.storage.set(key, value)
        self.policy.record_update(key)
        self._invalidate_shard(key)

    def delete(self, key: Hashable) -> None:
        """Delete path: authoritative delete + invalidations."""
        self.cluster.storage.delete(key)
        self.policy.invalidate(key)
        self._invalidate_shard(key)

    def _invalidate_shard(self, key: Hashable) -> None:
        """Best-effort shard-side delete; counted when the shard is gone.

        Storage already holds the authoritative value, so a lost
        invalidation only risks shard-side staleness — which cold revival
        (:meth:`CacheCluster.revive_server`) wipes.
        """
        server = self.cluster.server_for(key)
        try:
            self.guard.call(server.server_id, lambda: server.delete(key))
        except ShardUnavailableError:
            self.guard.stats.lost_invalidations += 1

    def execute(self, request: Any) -> Any:
        """Dispatch one workload operation.

        Accepts :class:`Request` (get/set/delete) and the YCSB
        :class:`~repro.workloads.ycsb.ScanRequest` (mapped onto
        :meth:`get_many` over the scan's key range).
        """
        from repro.workloads.ycsb import ScanRequest  # cycle-free local import

        if isinstance(request, ScanRequest):
            return self.get_many(request.keys())
        if request.op is OpType.GET:
            return self.get(request.key)
        if request.op is OpType.SET:
            self.set(request.key, request.value)
            return None
        self.delete(request.key)
        return None

    # -------------------------------------------------------------- metrics

    def local_hit_rate(self) -> float:
        """Lifetime front-end cache hit rate."""
        return self.policy.stats.hit_rate

    def local_imbalance(self) -> float:
        """This front end's lifetime contribution to back-end imbalance."""
        return self.monitor.imbalance()

    def __repr__(self) -> str:
        return (
            f"FrontEndClient(id={self.client_id!r}, "
            f"policy={type(self.policy).__name__}, "
            f"hit_rate={self.local_hit_rate():.3f})"
        )
