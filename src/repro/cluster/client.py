"""The front-end cache client (the paper's modified spymemcached role).

:class:`FrontEndClient` implements the client-driven protocol of Section 2
end to end:

* **get** — try the local front-end cache; on a miss, route to the owning
  shard via consistent hashing (recording the lookup in the local load
  monitor); on a caching-layer miss, read from persistent storage and
  *populate both* the shard and (subject to the policy's admission filter)
  the local cache.
* **set** — write to persistent storage, invalidate the local copy
  (penalizing hotness under CoT's dual-cost model via
  ``policy.record_update``), and send a delete to the caching layer.
* **delete** — delete from storage, invalidate locally, delete in the
  caching layer.

The client is policy-agnostic: any :class:`~repro.policies.base.CachePolicy`
(including :class:`~repro.core.cache.CoTCache`) plugs in unchanged, which
is how all the comparison experiments share one code path.

When a :class:`~repro.cluster.replication.HotKeyRouter` is attached
(:meth:`FrontEndClient.attach_router`), keys the router promoted into the
replicated hot-key tier take a different route: reads pick among the
key's replica shards with power-of-two-choices over this front end's own
per-shard load window (dead replicas excluded via the circuit breakers),
and writes fan the invalidation out to every shard that may hold a copy.
With no router attached — the default — every path below is byte-for-byte
the classic single-owner protocol.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.loadmonitor import LoadMonitor
from repro.cluster.replication import HotKeyRouter, ReplicaEntry
from repro.cluster.retry import BreakerState, ClusterGuard
from repro.errors import ClusterError, ShardUnavailableError
from repro.obs.trace import Trace, Tracer
from repro.policies.base import MISSING, CachePolicy
from repro.workloads.request import OpType, Request

if TYPE_CHECKING:  # cycle-free: writepolicy only names this class in hints
    from repro.cluster.writepolicy import (
        TTLWritePolicy,
        WriteBehindPolicy,
        WritePolicy,
    )

__all__ = ["FrontEndClient"]


class FrontEndClient:
    """One stateless front-end server's caching client.

    Every shard request goes through a :class:`ClusterGuard` — bounded
    retries with backoff for transient failures and a per-shard circuit
    breaker. When a shard is unavailable (breaker open / retries
    exhausted) reads degrade gracefully to persistent storage and are
    counted as *degraded reads* in the load monitor; writes lose only the
    shard-side invalidation (the authoritative storage write always
    lands), which is repaired when the shard revives cold.

    Parameters
    ----------
    cluster:
        the shared back-end cluster.
    policy:
        this front end's local cache replacement policy.
    client_id:
        identity used in experiment output.
    guard:
        retry/breaker layer; a default-configured one is built when
        omitted.
    fallback_penalty:
        accounted extra latency (seconds) of one storage-fallback read,
        fed to :meth:`LoadMonitor.record_degraded` (the untimed data
        plane measures time, it does not spend it).
    tracer:
        optional sampling :class:`~repro.obs.trace.Tracer`; sampled reads
        record a span tree (front-end cache → ring route → shard lookup →
        retry/breaker → storage fallback). ``None`` (and any sampling
        rate of 0) leaves the hot path untouched — decisions, counters
        and outputs are identical with and without it.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        policy: CachePolicy,
        client_id: str = "front-0",
        guard: ClusterGuard | None = None,
        fallback_penalty: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.client_id = client_id
        self.monitor = LoadMonitor(cluster.server_ids)
        self.guard = guard or ClusterGuard(cluster.server_ids)
        self.fallback_penalty = fallback_penalty
        self.tracer = tracer
        #: replicated hot-key tier; ``None`` keeps the classic protocol
        self.router: HotKeyRouter | None = None
        #: bound ``router.routes`` dict — one ``dict.get`` per miss is the
        #: entire hot-path cost of an attached (but idle) tier
        self._routes: dict[Hashable, ReplicaEntry] | None = None
        self._route_rng: random.Random | None = None
        #: write-path coherence strategy; ``None`` runs the inline
        #: cache-aside body below, byte-for-byte the classic protocol
        self.write_policy: "WritePolicy | None" = None
        #: the attached policy again iff it needs the read-path TTL /
        #: dirty-buffer hooks — kept as dedicated slots so the default
        #: mode pays one ``is None`` test, never an isinstance
        self._write_ttl: "TTLWritePolicy | None" = None
        self._write_behind: "WriteBehindPolicy | None" = None
        # Purge per-shard routing state the moment a shard is scaled in:
        # a forgotten breaker / load-window entry keyed on the departed id
        # would otherwise linger forever and poison any later shard that
        # aliased the id.
        cluster.removal_listeners.append(self._on_server_removed)
        cluster.cold_revival_listeners.append(self._on_cold_revival)

    def _on_server_removed(self, server_id: str) -> None:
        """Drop breaker and load-window state of a shard that left."""
        self.guard.forget(server_id)
        self.monitor.forget_server(server_id)

    def _on_cold_revival(self, server_id: str) -> None:
        """Reset this front end's breaker for a shard that revived cold.

        Breaker state must not alias across shard incarnations. The
        zero-stale-read argument needs "breaker not CLOSED ⇒ the shard is
        really down" to hold for *every* front end: a write whose
        shard-side invalidation is skipped by an open breaker is safe
        only while the stale copy is unreachable cluster-wide. A breaker
        left OPEN past a cold revival broke that — the writer kept
        skipping invalidations against a live, wiped shard while other
        front ends (whose breakers were closed) filled it and then read
        the copy the writer never deleted. The failure streak belongs to
        the dead incarnation; the revived shard starts with a clean
        breaker, exactly as a freshly added shard does.
        """
        self.guard.forget(server_id)

    def attach_router(self, router: HotKeyRouter, seed: int = 0) -> None:
        """Join the replicated hot-key tier.

        Binds the router's route table for the read hot path, seeds this
        front end's independent choice RNG, and registers the cold-revival
        hook that zeroes the revived shard's epoch-load window (a wiped
        shard carries zero real load; stale window counts would skew
        two-choices routing — see :meth:`LoadMonitor.reset_server_window`).

        Idempotent with respect to the cluster's listener list: attaching
        twice (or re-attaching a new router) rebinds the route table but
        registers the revival hook only once.
        """
        self.router = router
        self._routes = router.routes
        self._route_rng = router.make_choice_rng(seed)
        listeners = self.cluster.cold_revival_listeners
        if self.monitor.reset_server_window not in listeners:
            listeners.append(self.monitor.reset_server_window)

    def detach_router(self) -> None:
        """Leave the tier: classic protocol resumes, revival hook removed.

        Clients outliving a run must not keep mutating a shared cluster's
        listener list. Idempotent — detaching with no router attached is
        a no-op.
        """
        self.router = None
        self._routes = None
        self._route_rng = None
        try:
            self.cluster.cold_revival_listeners.remove(
                self.monitor.reset_server_window
            )
        except ValueError:
            pass

    def attach_write_policy(self, policy: "WritePolicy") -> None:
        """Adopt a write-path coherence strategy for this front end.

        One shared :class:`~repro.cluster.writepolicy.WritePolicy`
        instance serves every front end of a run (its dirty buffers and
        logical clock are cluster state). ``set``/``delete`` dispatch to
        it; the read path additionally gains the policy's TTL-expiry or
        dirty-buffer hooks when the strategy declares it needs them.
        With no policy attached — the default — every path is the
        inline cache-aside protocol, byte-for-byte.
        """
        self.write_policy = policy
        self._write_behind = policy if policy.buffered else None
        self._write_ttl = policy if policy.ttl_hooks else None
        if policy.ttl_hooks:
            policy.attach_local_hygiene(self)

    # ------------------------------------------------------------- protocol

    def get(self, key: Hashable) -> Any:
        """Read path of the client-driven protocol.

        Dispatches through the policy's fused ``get_or_admit`` entry
        point: the policy resolves the key once, and only on a local miss
        does :meth:`_fetch_from_backend` route to the owning shard.

        The sampling gate is inlined (credit accumulator arithmetic, no
        method call) so an attached low-rate tracer costs almost nothing
        on unsampled requests — the perf gate pins the overhead at <5%.
        """
        ttl = self._write_ttl
        if ttl is not None:
            ttl.expire_local(self, key)
            was_cached = key in self.policy
        tracer = self.tracer
        if tracer is not None:
            tracer.credit += tracer.sample_rate
            if tracer.credit >= 1.0:
                return self._traced_get(
                    key, tracer.start_sampled("request.get")
                )
        value = self.policy.get_or_admit(key, self._fetch_from_backend)
        # Stamp only copies that actually entered the cache: the policy
        # may decline to admit a loader's result (CoT's hotness bar).
        if ttl is not None and not was_cached and key in self.policy:
            ttl.note_local_fill(self.client_id, key)
        return value

    def _traced_get(self, key: Hashable, trace: Trace) -> Any:
        """Sampled read: same decisions as :meth:`get`, plus a span tree.

        The policy/guard/monitor calls are identical to the untraced path
        (the equivalence test pins this); only span bookkeeping is added
        around them, so a traced run's counters and outputs match an
        untraced run access-for-access.
        """
        trace.note("key", key)
        trace.note("outcome", "hit")
        ttl = self._write_ttl
        was_cached = ttl is not None and key in self.policy
        try:
            with trace.span("frontend.cache"):
                value = self.policy.get_or_admit(
                    key, lambda k: self._traced_fetch(k, trace)
                )
        finally:
            self.tracer.finish(trace)
        if ttl is not None and not was_cached and key in self.policy:
            ttl.note_local_fill(self.client_id, key)
        return value

    def _traced_fetch(self, key: Hashable, trace: Trace) -> Any:
        """Traced twin of :meth:`_fetch_from_backend` (span per stage)."""
        trace.note("outcome", "miss")
        routes = self._routes
        if routes is not None:
            entry = routes.get(key)
            if entry is not None:
                with trace.span("shard.replicated_lookup"):
                    return self._fetch_replicated(key, entry)
        with trace.span("ring.route"):
            server = self.cluster.server_for(key)
        server_id = server.server_id
        self.monitor.record_lookup(server_id)
        ttl = self._write_ttl
        if ttl is not None:
            ttl.expire_shard(self, server_id, key)
        stats = self.guard.stats
        retries_before = stats.retries
        try:
            with trace.span("shard.lookup", shard=server_id) as span:
                try:
                    value = self.guard.call(server_id, lambda: server.get(key))
                finally:
                    retried = stats.retries - retries_before
                    if retried:
                        span.meta["retries"] = retried
        except ShardUnavailableError:
            trace.note("outcome", "degraded")
            with trace.span("storage.degraded_read", shard=server_id):
                value = self._degraded_read(server_id, key)
            return value
        if value is MISSING:
            with trace.span("storage.fallback"):
                value = self._resolve_miss(key)
            with trace.span("shard.backfill", shard=server_id):
                self._backfill(server, key, value)
        return value

    def _fetch_from_backend(self, key: Hashable) -> Any:
        """Miss loader: guarded shard lookup with storage backfill.

        An unavailable shard turns the read into a degraded read: the
        value comes straight from persistent storage (always correct —
        storage is authoritative) and the fallback is counted.

        Keys promoted into the replicated tier branch to
        :meth:`_fetch_replicated` instead; with no router attached the
        branch costs nothing.
        """
        routes = self._routes
        if routes is not None:
            entry = routes.get(key)
            if entry is not None:
                return self._fetch_replicated(key, entry)
        server = self.cluster.server_for(key)
        server_id = server.server_id
        self.monitor.record_lookup(server_id)
        ttl = self._write_ttl
        if ttl is not None:
            ttl.expire_shard(self, server_id, key)
        try:
            value = self.guard.call(server_id, lambda: server.get(key))
        except ShardUnavailableError:
            return self._degraded_read(server_id, key)
        if value is MISSING:
            value = self._resolve_miss(key)
            self._backfill(server, key, value)
        return value

    def _resolve_miss(self, key: Hashable) -> Any:
        """The value a caching-layer miss resolves to.

        Persistent storage is authoritative — except in write-behind
        mode, where an acknowledged write may still be in a shard's
        dirty buffer: the queue is part of the shard's state, so a miss
        (the shard evicted its copy before the flush) must serve the
        pending value, not the stale durable one.
        """
        wb = self._write_behind
        if wb is not None:
            value = wb.buffered_value(key)
            if value is not MISSING:
                return value
        return self.cluster.storage.get(key)

    def _fetch_replicated(self, key: Hashable, entry: ReplicaEntry) -> Any:
        """Replicated-tier read: power-of-``d``-choices over live replicas.

        The choice set is the entry's eligible replicas (quarantined
        shards already excluded) minus shards whose circuit breaker is
        OPEN — a killed replica falls out within one breaker trip and
        folds back in through the HALF_OPEN probe after it revives. Two
        (or ``d``) distinct candidates are sampled with this front end's
        seeded RNG and the one with the lighter epoch-load window wins;
        the shard-side protocol (guarded lookup, storage backfill on a
        layer miss, degraded read when unavailable) is the classic one.

        With every replica OPEN the read falls back to the primary,
        whose open breaker fails fast into a degraded storage read — the
        same behaviour the unreplicated path has when the owner is down.
        """
        router = self.router
        rstats = router.stats
        rstats.replicated_reads += 1
        guard = self.guard
        state = guard.state
        open_state = BreakerState.OPEN
        alive = [sid for sid in entry.eligible if state(sid) is not open_state]
        count = len(alive)
        if count == 0:
            rstats.primary_fallbacks += 1
            target = entry.replicas[0]
        elif count == 1:
            target = alive[0]
        else:
            rng = self._route_rng
            d = router.config.choices
            if d >= count:
                sample = alive
            elif d == 2:
                i = rng.randrange(count)
                j = rng.randrange(count - 1)
                if j >= i:
                    j += 1
                sample = (alive[i], alive[j])
            else:
                sample = rng.sample(alive, d)
            loads = self.monitor.epoch_window
            target = sample[0]
            best = loads.get(target, 0)
            for sid in sample[1:]:
                load = loads.get(sid, 0)
                if load < best:
                    target = sid
                    best = load
            if len(sample) > 1:
                rstats.two_choice_reads += 1
        self.monitor.record_lookup(target)
        server = self.cluster.server(target)
        ttl = self._write_ttl
        if ttl is not None:
            ttl.expire_shard(self, target, key)
        try:
            value = guard.call(target, lambda: server.get(key))
        except ShardUnavailableError:
            return self._degraded_read(target, key)
        if value is MISSING:
            value = self._resolve_miss(key)
            self._backfill(server, key, value)
        return value

    def _degraded_read(self, server_id: str, key: Hashable) -> Any:
        """Serve ``key`` from storage because its shard is unavailable."""
        value = self.cluster.storage.get(key)
        self.monitor.record_degraded(server_id, penalty=self.fallback_penalty)
        return value

    def _backfill(self, server: Any, key: Hashable, value: Any) -> None:
        """Populate a shard after a layer miss; best-effort under faults."""
        try:
            self.guard.call(server.server_id, lambda: server.set(key, value))
        except ShardUnavailableError:
            pass  # the value is safe in storage; the shard warms later
        else:
            ttl = self._write_ttl
            if ttl is not None:
                ttl.note_backfill(server.server_id, key)

    def get_many(self, keys: list[Hashable]) -> dict[Hashable, Any]:
        """Batched read path (spymemcached's getMulti).

        A single page load fetches hundreds of objects (the paper's
        motivating workload). The batch is served in two passes that keep
        the *decisions* identical to sequential :meth:`get` calls:

        1. a side-effect-free ``in policy`` probe splits the batch into
           local hits and prospective misses, groups the misses by owning
           shard (deduplicated), and prefetches each group with one
           batched lookup per shard (layer misses backfilled from
           storage, unavailable shards degrading to storage);
        2. every key then flows through the policy's fused
           ``get_or_admit`` *in original access order*, with a loader
           that serves from the prefetched values — so admission,
           tracking and eviction decisions match the sequential path
           exactly (``tests/test_fastpath_equivalence.py`` pins this).

        A key whose prefetch was invalidated by an earlier admission in
        the same batch (evicted mid-batch, duplicate churn) falls back to
        a normal guarded single-key fetch. Every prefetched key still
        counts as one lookup toward its shard's load.
        """
        policy = self.policy
        ttl = self._write_ttl
        was_cached: dict[Hashable, bool] = {}
        if ttl is not None:
            for key in keys:
                ttl.expire_local(self, key)
            was_cached = {key: key in policy for key in keys}
        prefetched: dict[Hashable, Any] = {}
        misses_by_server: dict[str, list[Hashable]] = {}
        queued: set[Hashable] = set()
        ring_server_for = self.cluster.ring.server_for
        routes = self._routes
        for key in keys:
            if key not in policy and key not in queued:
                queued.add(key)
                if routes is not None:
                    entry = routes.get(key)
                    if entry is not None:
                        # Replicated keys keep their two-choices routing
                        # even inside a batch — grouping them under the
                        # primary would re-concentrate the hot load the
                        # tier exists to spread.
                        prefetched[key] = self._fetch_replicated(key, entry)
                        continue
                misses_by_server.setdefault(ring_server_for(key), []).append(key)
        for server_id, missed in misses_by_server.items():
            server = self.cluster.server(server_id)
            for _ in missed:
                self.monitor.record_lookup(server_id)
            if ttl is not None:
                for key in missed:
                    ttl.expire_shard(self, server_id, key)
            try:
                found = self.guard.call(
                    server_id, lambda: server.get_many(missed)
                )
            except ShardUnavailableError:
                for key in missed:
                    prefetched[key] = self._degraded_read(server_id, key)
                continue
            for key in missed:
                value = found.get(key, MISSING)
                if value is MISSING:
                    value = self._resolve_miss(key)
                    self._backfill(server, key, value)
                prefetched[key] = value

        missing = MISSING

        def loader(key: Hashable) -> Any:
            value = prefetched.get(key, missing)
            if value is missing:
                value = self._fetch_from_backend(key)
            return value

        get_or_admit = policy.get_or_admit
        values = {key: get_or_admit(key, loader) for key in keys}
        if ttl is not None:
            # Stamp fill time for the batch keys that actually entered
            # (and stayed in) the local cache — mirrors :meth:`get`.
            for key in values:
                if not was_cached[key] and key in policy:
                    ttl.note_local_fill(self.client_id, key)
        return values

    def set(self, key: Hashable, value: Any) -> None:
        """Write path: dispatched to the attached write-path strategy.

        With none attached (the default) the inline body *is* the
        cache-aside strategy: storage write + local and layer
        invalidation — byte-for-byte the classic protocol.
        """
        wp = self.write_policy
        if wp is not None:
            wp.on_set(self, key, value)
            return
        self.cluster.storage.set(key, value)
        self.policy.record_update(key)
        self._invalidate_shard(key)

    def delete(self, key: Hashable) -> None:
        """Delete path: authoritative delete + invalidations."""
        wp = self.write_policy
        if wp is not None:
            wp.on_delete(self, key)
            return
        self.cluster.storage.delete(key)
        self.policy.invalidate(key)
        self._invalidate_shard(key)

    def _invalidate_shard(self, key: Hashable) -> None:
        """Best-effort shard-side delete; counted when the shard is gone.

        Storage already holds the authoritative value, so a lost
        invalidation only risks shard-side staleness — which cold revival
        (:meth:`CacheCluster.revive_server`) wipes.

        Keys with replicated-tier state fan out instead: see
        :meth:`_invalidate_replicas`.
        """
        router = self.router
        if router is not None:
            targets = router.write_targets(key)
            if targets:
                self._invalidate_replicas(key, targets)
                return
        server = self.cluster.server_for(key)
        try:
            self.guard.call(server.server_id, lambda: server.delete(key))
        except ShardUnavailableError:
            self.guard.stats.lost_invalidations += 1

    def _invalidate_replicas(self, key: Hashable, targets: tuple[str, ...]) -> None:
        """Fan a write's invalidation out to every shard holding a copy.

        ``targets`` is the router's write-target set: the full replica
        set plus any quarantined shards from earlier failed deletes. A
        delete that cannot land quarantines its shard — the copy there
        may now be stale, so the shard leaves the read choice set until
        some later delete succeeds or it revives cold. A delete that does
        land lifts any quarantine. This is what preserves the zero-
        stale-read guarantee under kill/revive during replicated writes.
        """
        router = self.router
        rstats = router.stats
        guard = self.guard
        cluster = self.cluster
        for server_id in targets:
            try:
                server = cluster.server(server_id)
            except ClusterError:
                # The shard left the cluster entirely; its copy is gone.
                router.clear_pending(key, server_id)
                continue
            rstats.replica_invalidations += 1
            try:
                guard.call(server_id, lambda s=server: s.delete(key))
            except ShardUnavailableError:
                guard.stats.lost_invalidations += 1
                rstats.failed_replica_invalidations += 1
                router.quarantine(key, server_id)
            else:
                router.clear_pending(key, server_id)

    def execute(self, request: Any) -> Any:
        """Dispatch one workload operation.

        Accepts :class:`Request` (get/set/delete) and the YCSB
        :class:`~repro.workloads.ycsb.ScanRequest` (mapped onto
        :meth:`get_many` over the scan's key range).
        """
        from repro.workloads.ycsb import ScanRequest  # cycle-free local import

        if isinstance(request, ScanRequest):
            return self.get_many(request.keys())
        if request.op is OpType.GET:
            return self.get(request.key)
        if request.op is OpType.SET:
            self.set(request.key, request.value)
            return None
        self.delete(request.key)
        return None

    # -------------------------------------------------------------- metrics

    def local_hit_rate(self) -> float:
        """Lifetime front-end cache hit rate."""
        return self.policy.stats.hit_rate

    def local_imbalance(self) -> float:
        """This front end's lifetime contribution to back-end imbalance."""
        return self.monitor.imbalance()

    def __repr__(self) -> str:
        return (
            f"FrontEndClient(id={self.client_id!r}, "
            f"policy={type(self.policy).__name__}, "
            f"hit_rate={self.local_hit_rate():.3f})"
        )
