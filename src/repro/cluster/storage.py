"""The persistent storage layer beneath the caching layer.

In the paper's architecture (Figure 1) every key always exists in
persistent storage; the caching layer and front-end caches hold copies.
:class:`PersistentStore` models that: reads always succeed (values are
synthesized lazily for never-written keys, so a million-key universe costs
no memory up front), writes are authoritative, and read/write counters
expose how much load leaks past both cache tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

__all__ = ["PersistentStore", "StorageStats"]


@dataclass
class StorageStats:
    """Operation counters for the persistent layer."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0


def _default_value_factory(key: Hashable) -> Any:
    """Synthesize a deterministic placeholder value for an unwritten key."""
    return ("value-of", key, 0)


class PersistentStore:
    """Authoritative key/value store with lazy default values.

    Parameters
    ----------
    value_factory:
        called to synthesize the value of a key that has never been
        written (the pre-loaded dataset of the paper's experiments).
        Deleted keys also revert to factory values on the next read,
        matching a store where the loader re-creates records on demand.
    """

    def __init__(
        self, value_factory: Callable[[Hashable], Any] = _default_value_factory
    ) -> None:
        self._written: dict[Hashable, Any] = {}
        self._deleted: set[Hashable] = set()
        self._value_factory = value_factory
        self.stats = StorageStats()

    def get(self, key: Hashable) -> Any:
        """Read a key (never misses; synthesizes unwritten values)."""
        self.stats.reads += 1
        if key in self._written:
            return self._written[key]
        return self._value_factory(key)

    def set(self, key: Hashable, value: Any) -> None:
        """Authoritative write."""
        self.stats.writes += 1
        self._deleted.discard(key)
        self._written[key] = value

    def delete(self, key: Hashable) -> bool:
        """Delete a written value; returns whether one existed."""
        self.stats.deletes += 1
        self._deleted.add(key)
        return self._written.pop(key, None) is not None

    def was_written(self, key: Hashable) -> bool:
        """Whether ``key`` currently holds an explicitly written value."""
        return key in self._written

    def __len__(self) -> int:
        return len(self._written)
