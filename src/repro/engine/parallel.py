"""The parallel scenario fabric: process-pool fan-out with deterministic merge.

Two execution strategies live here (see DESIGN.md §10):

* **Sweep fan-out** — :func:`map_specs` / :func:`map_calls` distribute
  the *independent tasks* of an experiment (one spec per sweep point, or
  one search per policy) across a spawned worker pool. Each task carries
  its own explicit seeds, runs a complete scenario in its worker, and
  returns a picklable :class:`~repro.engine.telemetry.TelemetrySnapshot`
  (or a plain value). Results come back **in task order** regardless of
  completion order, and every snapshot a worker froze is *replayed* to
  the parent's snapshot listeners in that same order — so rendered
  tables and ``--metrics-out`` pages are byte-identical to a sequential
  run at any worker count.

* **Process-per-front-end drive** — :class:`ParallelClusterRunner` runs
  one cluster scenario's N front ends as true separate processes against
  a shard-server process reached through a batched message channel. Only
  scenarios whose published telemetry is provably order-independent are
  eligible (:func:`cluster_spec_parallelizable`): sequential drive mode,
  pure reads, no faults/phases/tracers. Front-end decisions (hit, miss,
  admit, evict) depend only on each client's own seeded stream and local
  policy state; per-shard load counts are commutative sums of routed
  misses; so the merged snapshot equals the sequential runner's exactly.

Determinism rules, in one place:

1. seeds are a pure function of the task — specs pin explicit seeds, and
   tasks that need derived ones use
   :func:`~repro.workloads.seeding.spawn_seed` ``(root, task_index)``;
   nothing is ever derived from worker identity or scheduling order;
2. results merge in spec order (``pool.map`` with ``chunksize=1``
   preserves input order);
3. anything order-dependent (interleaved drives, phased fault schedules,
   per-access hooks, elastic epochs) is *ineligible* and runs on the
   unchanged sequential path.

Workers are spawned (never forked), so each has a fresh interpreter with
per-process lazily-initialized caches (the zeta memo); specs must be
picklable (:func:`repro.engine.spec.spawn_safe`) — anything that is not
silently takes the in-process sequential path.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.cluster.cluster import CacheCluster
from repro.engine import telemetry as T
from repro.engine.runners import (
    STREAM_CHUNK,
    ClusterRunner,
    PolicyStreamRunner,
    ScenarioResult,
    SimRunner,
)
from repro.engine.spec import ScenarioSpec, spawn_safe
from repro.engine.telemetry import (
    TelemetryBus,
    TelemetrySnapshot,
    add_snapshot_listener,
    notify_snapshot_listeners,
    remove_snapshot_listener,
)
from repro.errors import ConfigurationError
from repro.policies.base import MISSING
from repro.workloads.base import format_key
from repro.workloads.seeding import derive_seeds, spawn_seed

__all__ = [
    "ParallelClusterRunner",
    "cluster_spec_parallelizable",
    "configure",
    "configured_workers",
    "default_workers",
    "derive_seeds",
    "map_calls",
    "map_specs",
    "parallel_workers",
    "shutdown",
    "spawn_seed",
]

#: Runner kinds accepted by :func:`map_specs`.
_RUNNER_KINDS: dict[str, Callable[[], Any]] = {
    "policy": PolicyStreamRunner,
    "cluster": ClusterRunner,
    "sim": SimRunner,
}

#: Upper bound for the cpu-derived default — beyond this the sweeps in
#: this repo stop scaling (they have at most a few dozen tasks) and pool
#: startup cost dominates.
_DEFAULT_WORKER_CAP = 8

_workers = 1
#: Set in every fabric worker (pool initializer / process main) so work
#: running inside a worker never tries to fan out again.
_in_worker = False

_pool: Any = None
_pool_size = 0


# --------------------------------------------------------------------------
# worker configuration


def default_workers() -> int:
    """The cpu-aware default worker count: ``min(os.cpu_count(), 8)``."""
    return max(1, min(os.cpu_count() or 1, _DEFAULT_WORKER_CAP))


def configure(workers: int | None) -> int:
    """Set the fabric's worker count (``None`` → :func:`default_workers`).

    ``1`` disables fan-out entirely: every call runs in-process on the
    exact sequential code path. Returns the effective count.
    """
    global _workers
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigurationError("parallel workers must be >= 1")
    _workers = workers
    return _workers


def configured_workers() -> int:
    """The currently configured worker count."""
    return _workers


@contextmanager
def parallel_workers(workers: int | None) -> Iterator[int]:
    """Scoped :func:`configure` — restores the previous count on exit."""
    previous = _workers
    try:
        yield configure(workers)
    finally:
        configure(previous)


def in_worker() -> bool:
    """Whether this process is a fabric worker (fan-out is disabled)."""
    return _in_worker


def _mark_worker() -> None:
    global _in_worker
    _in_worker = True


# --------------------------------------------------------------------------
# the spawn pool


def _get_pool(workers: int) -> Any:
    """The cached spawn pool, rebuilt when the worker count changes."""
    global _pool, _pool_size
    if _pool is not None and _pool_size != workers:
        shutdown()
    if _pool is None:
        context = multiprocessing.get_context("spawn")
        _pool = context.Pool(workers, initializer=_mark_worker)
        _pool_size = workers
    return _pool


def shutdown() -> None:
    """Tear down the cached worker pool (idempotent; re-created on demand)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_size = 0


atexit.register(shutdown)


def _noop() -> None:
    return None


def warm_pool() -> int:
    """Spawn and import-warm the pool ahead of timed work; returns its size.

    Pool workers import the full package in their initializer, so the
    first :func:`map_specs` after a (re)configure pays interpreter
    startup. Benchmarks call this first to keep one-time spawn cost out
    of steady-state scaling measurements.
    """
    if _workers <= 1 or _in_worker or not _main_spawn_safe():
        return 1
    pool = _get_pool(_workers)
    pool.starmap(_noop, [() for _ in range(_workers)], chunksize=1)
    return _workers


# --------------------------------------------------------------------------
# sweep fan-out


class _TaskOutcome:
    """A worker's return: the task value plus the snapshots it froze."""

    __slots__ = ("value", "snapshots")

    def __init__(
        self, value: Any, snapshots: tuple[TelemetrySnapshot, ...]
    ) -> None:
        self.value = value
        self.snapshots = snapshots


@contextmanager
def _captured_snapshots() -> Iterator[list[TelemetrySnapshot]]:
    """Collect every snapshot frozen inside the block (worker side)."""
    captured: list[TelemetrySnapshot] = []
    add_snapshot_listener(captured.append)
    try:
        yield captured
    finally:
        remove_snapshot_listener(captured.append)


def _run_spec_task(task: tuple[str, ScenarioSpec]) -> _TaskOutcome:
    kind, spec = task
    runner = _RUNNER_KINDS[kind]()
    with _captured_snapshots() as captured:
        result = runner.run(spec)
    return _TaskOutcome(result.telemetry, tuple(captured))


def _run_call_task(task: tuple[Callable[..., Any], tuple]) -> _TaskOutcome:
    func, args = task
    with _captured_snapshots() as captured:
        value = func(*args)
    return _TaskOutcome(value, tuple(captured))


def _main_spawn_safe() -> bool:
    """Whether spawned children can re-import this process's ``__main__``.

    Spawn bootstraps each child by re-importing the parent's main module.
    A main run from a real file, ``-c`` or ``-m`` re-imports fine, but a
    script piped on stdin (``python - <<EOF``) leaves ``__main__.__file__``
    as ``"<stdin>"`` — no child can load that, so fan-out must fall back
    to the in-process path.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    return path is None or os.path.exists(path)


def _use_pool(task_count: int, tasks: Iterable[Any]) -> bool:
    """Fan out only when it can help and every task survives pickling."""
    if _in_worker or _workers <= 1 or task_count <= 1:
        return False
    return _main_spawn_safe() and all(spawn_safe(task) for task in tasks)


def _replay(outcomes: Sequence[_TaskOutcome]) -> None:
    """Replay worker-side snapshots to parent listeners, in task order."""
    for outcome in outcomes:
        for snapshot in outcome.snapshots:
            notify_snapshot_listeners(snapshot)


def map_specs(
    runner_kind: str, specs: Iterable[ScenarioSpec]
) -> list[TelemetrySnapshot]:
    """Run independent scenario specs, returning snapshots in spec order.

    ``runner_kind`` is ``"policy"``, ``"cluster"`` or ``"sim"``. With one
    configured worker (or a single spec, or any unpicklable spec) this is
    exactly the legacy sequential loop — same runner, same order, same
    in-process listener notifications. With more workers, specs fan out
    over the spawn pool one task per spec and the parent replays each
    task's snapshots in task order, so outputs are byte-identical at any
    worker count.
    """
    if runner_kind not in _RUNNER_KINDS:
        raise ConfigurationError(
            f"unknown runner kind {runner_kind!r}; "
            f"choose from {sorted(_RUNNER_KINDS)}"
        )
    spec_list = list(specs)
    tasks = [(runner_kind, spec) for spec in spec_list]
    if not _use_pool(len(tasks), tasks):
        runner = _RUNNER_KINDS[runner_kind]()
        return [runner.run(spec).telemetry for spec in spec_list]
    outcomes = _get_pool(_workers).map(_run_spec_task, tasks, chunksize=1)
    _replay(outcomes)
    return [outcome.value for outcome in outcomes]


def map_calls(
    func: Callable[..., Any], args_list: Iterable[tuple]
) -> list[Any]:
    """Run ``func(*args)`` per args-tuple, returning results in input order.

    The generic fan-out for tasks that are *searches* rather than single
    specs (Table 2's per-policy min-cache search): ``func`` must be a
    module-level callable and each args tuple picklable, else everything
    runs in-process sequentially. Worker-side snapshots are replayed to
    parent listeners in task order, exactly as :func:`map_specs`.
    """
    calls = [(func, tuple(args)) for args in args_list]
    if not _use_pool(len(calls), calls):
        return [func(*args) for _f, args in calls]
    outcomes = _get_pool(_workers).map(_run_call_task, calls, chunksize=1)
    _replay(outcomes)
    return [outcome.value for outcome in outcomes]


# --------------------------------------------------------------------------
# process-per-front-end cluster drive


def cluster_spec_parallelizable(spec: ScenarioSpec) -> bool:
    """Whether a cluster scenario may run on the process-per-client drive.

    Eligibility is exactly the set of specs whose *published* telemetry
    is order-independent across front ends:

    * sequential drive mode only — ``interleave`` and ``phases`` make
      client ordering observable (shared epoch windows, phase deltas);
    * pure reads (``read_fraction`` unset or >= 1) — writes couple
      clients through storage contents and invalidations;
    * no faults, custom storage, verify oracle, tracer, per-client
      factory or hooks — each either couples clients through shared
      mutable state or holds live objects the parent would need back;
    * no replicated hot-key tier — its router is shared agreement state
      (promotion epochs, quarantines) that cannot span processes;
    * no write-path strategy and no bespoke operation mixer — a shared
      write policy (dirty buffers, logical clock) cannot span processes,
      and a ``mixer_factory`` drive issues writes;
    * no socket data plane — a network-enabled topology holds live
      sockets and a loop thread (and is already measuring real I/O;
      the in-process process-drive would measure something else);
    * at least two front ends (one gains nothing from a process), and
      the spec must survive pickling.

    Everything else runs the unchanged sequential drive.
    """
    workload = spec.workload
    return (
        not spec.interleave
        and spec.phases is None
        and spec.hooks is None
        and spec.client_factory is None
        and spec.verify_value is None
        and spec.tracer is None
        and spec.topology.storage is None
        and spec.topology.faults is None
        and not spec.topology.replication.enabled
        and not spec.topology.write.enabled
        and not spec.topology.network.enabled
        and workload.mixer_factory is None
        and (workload.read_fraction is None or workload.read_fraction >= 1.0)
        and spec.num_clients >= 2
        and spawn_safe(spec)
    )


def should_use_process_drive(spec: ScenarioSpec) -> bool:
    """Fabric-config gate for :class:`ClusterRunner`'s delegation hook."""
    return (
        not _in_worker
        and _workers > 1
        and _main_spawn_safe()
        and cluster_spec_parallelizable(spec)
    )


class _BatchLoader:
    """Miss loader for a worker front end: queue the key, synthesize the value.

    The authoritative shard lookup happens in the shard-server process;
    the worker only needs *a* value for the policy to store. Reads never
    write, so storage would synthesize its deterministic default anyway —
    returning it locally keeps the channel one-way (fire-and-forget
    batches) without changing a single policy decision (values never
    influence decisions; the equivalence test pins the whole snapshot).
    """

    __slots__ = ("batch",)

    def __init__(self) -> None:
        self.batch: list = []

    def __call__(self, key: Any) -> Any:
        self.batch.append(key)
        return ("value-of", key, 0)

    def take(self) -> list:
        batch = self.batch
        self.batch = []
        return batch


def _front_end_main(
    spec: ScenarioSpec,
    client_index: int,
    per_client: int,
    ops_queue: Any,
    results_queue: Any,
) -> None:
    """One front end: own policy + seeded stream, batched misses to the server.

    Seeding matches :meth:`ClusterRunner._drive_sequential` exactly —
    client ``i`` draws from ``base_seed + i`` — so the local hit/miss/
    admission sequence is identical to the sequential drive's.
    """
    _mark_worker()
    policy = spec.policy.build(client_index)
    generator = spec.workload.build_generator(
        spec.scale.key_space, spec.base_seed, client_index
    )
    loader = _BatchLoader()
    get_or_admit = policy.get_or_admit
    keys_array = generator.keys_array
    remaining = per_client
    while remaining > 0:
        n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
        for key in keys_array(n):
            get_or_admit(format_key(key), loader)
        batch = loader.take()
        if batch:
            ops_queue.put(("ops", batch))
        remaining -= n
    ops_queue.put(("done", client_index))
    stats = policy.stats
    results_queue.put(
        (client_index, stats.hits, stats.misses, stats.accesses)
    )


def _shard_server_main(
    spec: ScenarioSpec, num_clients: int, ops_queue: Any, loads_queue: Any
) -> None:
    """The shard-server process: the authoritative cluster, fed by batches.

    Applies every routed miss exactly as the sequential data plane does —
    ring route, shard lookup, storage backfill on a layer miss — so
    per-shard ``gets`` counters (the published load families) are the
    real thing, not a reconstruction. Batch *arrival order* across
    clients is nondeterministic, but the counts are commutative sums and
    shard contents are never published, so the reported loads are exact.
    """
    _mark_worker()
    topology = spec.topology
    cluster = CacheCluster(
        num_servers=spec.num_servers,
        capacity_bytes=topology.capacity_bytes,
        value_size=topology.value_size,
    )
    server_for = cluster.server_for
    storage_get = cluster.storage.get
    pending = num_clients
    while pending:
        message = ops_queue.get()
        if message[0] == "done":
            pending -= 1
            continue
        for key in message[1]:
            server = server_for(key)
            if server.get(key) is MISSING:
                server.set(key, storage_get(key))
    loads_queue.put((cluster.loads(), cluster.epoch_loads()))


class ParallelClusterRunner:
    """Run an eligible cluster scenario with real per-client processes.

    Same contract as :class:`~repro.engine.runners.ClusterRunner` for
    eligible specs (:func:`cluster_spec_parallelizable`): the returned
    snapshot is equal field-for-field to the sequential runner's. The
    result's live-object fields (``policies``/``front_ends``/``cluster``)
    are empty — the objects lived and died in the worker processes;
    consumers of the parallel path read telemetry only.

    ``workers`` bounds how many front-end processes run concurrently
    (default: the fabric's configured count); the shard server always
    runs alongside them.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._workers = workers

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        if not cluster_spec_parallelizable(spec):
            raise ConfigurationError(
                "scenario is not eligible for the process-per-client drive "
                "(see cluster_spec_parallelizable); use ClusterRunner"
            )
        workers = self._workers if self._workers is not None else _workers
        workers = max(1, workers)
        num_clients = spec.num_clients
        per_client = spec.total_accesses // num_clients

        context = multiprocessing.get_context("spawn")
        ops_queue = context.Queue()
        results_queue = context.Queue()
        loads_queue = context.Queue()
        server = context.Process(
            target=_shard_server_main,
            args=(spec, num_clients, ops_queue, loads_queue),
            daemon=True,
        )
        server.start()
        front_ends = [
            context.Process(
                target=_front_end_main,
                args=(spec, index, per_client, ops_queue, results_queue),
                daemon=True,
            )
            for index in range(num_clients)
        ]
        # Waves bound concurrent front-end processes to the worker budget;
        # the shard server drains the channel throughout.
        for start in range(0, num_clients, workers):
            wave = front_ends[start : start + workers]
            for process in wave:
                process.start()
            for process in wave:
                process.join()
        payloads = [results_queue.get() for _ in range(num_clients)]
        loads, epoch_loads = loads_queue.get()
        server.join()

        payloads.sort()  # client order (payloads lead with client_index)
        hits = sum(p[1] for p in payloads)
        misses = sum(p[2] for p in payloads)
        accesses = sum(p[3] for p in payloads)

        # Mirror ClusterRunner._publish exactly (same counters in the
        # same insertion order, zeros included) so snapshots — and the
        # metrics pages rendered from them — compare equal byte-for-byte.
        bus = TelemetryBus()
        bus.inc(T.HITS, hits)
        bus.inc(T.MISSES, misses)
        bus.inc(T.ACCESSES, accesses)
        bus.inc(T.TOTAL_REQUESTS, per_client * num_clients)
        bus.inc(T.DEGRADED_READS, 0)
        bus.inc(T.RETRIES, 0)
        bus.inc(T.OPEN_REJECTIONS, 0)
        bus.inc(T.BREAKER_OPENS, 0)
        bus.inc(T.BREAKER_CLOSES, 0)
        bus.inc(T.FAILED_INVALIDATIONS, 0)
        bus.record_shard_loads(loads, epoch_loads)
        bus.fallback_latency = 0.0
        return ScenarioResult(spec, bus.snapshot())
