"""Pluggable scenario runners behind one :class:`Runner` protocol.

Three runners interpret :class:`~repro.engine.spec.ScenarioSpec`s, one
per execution substrate:

* :class:`PolicyStreamRunner` — a bare policy against a key stream (the
  hit-rate setting of Figure 4 and the appendix);
* :class:`ClusterRunner` — N front ends over one shared cluster, with
  sequential or interleaved scheduling, warm-up windows, elastic front
  ends and phased fault/workload schedules (Figures 3, 7, 8, Table 2 and
  the chaos extension);
* :class:`SimRunner` — the discrete-event testbed with closed-loop
  clients, FCFS shard queues and network latency (Figures 5-6).

All three publish into one typed :class:`~repro.engine.telemetry.TelemetryBus`
and return a :class:`ScenarioResult`. The chunking constants and seeding
offsets are part of the engine's contract: they reproduce the original
hand-wired harnesses access-for-access, which is what keeps experiment
outputs byte-identical across the refactor
(``tests/test_golden_outputs.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.replication import HotKeyRouter
from repro.core.elastic import ElasticCoTClient
from repro.engine import telemetry as T
from repro.engine.spec import RunContext, ScenarioSpec, make_generator
from repro.engine.telemetry import PhaseTelemetry, TelemetryBus, TelemetrySnapshot
from repro.errors import ConfigurationError
from repro.metrics.latency import LatencyRecorder
from repro.obs.hist import LatencyHistogram
from repro.policies.adaptive import AdaptiveArbiter
from repro.policies.base import MISSING, CachePolicy
from repro.sim.client import SimClient
from repro.sim.events import Simulator
from repro.sim.network import FixedLatency
from repro.sim.server import ServiceModel, SimBackendServer
from repro.workloads.base import format_key
from repro.workloads.mixer import OperationMixer

__all__ = [
    "STREAM_CHUNK",
    "ClusterRunner",
    "PolicyStreamRunner",
    "Runner",
    "ScenarioResult",
    "SimRunner",
]

#: Keys drawn/driven per batch by the streaming drive paths: large enough
#: to amortize per-chunk overhead, small enough to keep the materialized
#: key lists cache- and memory-friendly at paper scale.
STREAM_CHUNK = 16_384

#: Seed offsets separating a client's operation-mix stream from its key
#: stream (cluster and sim paths draw from historically distinct offsets;
#: both are part of the reproducibility contract).
CLUSTER_MIXER_SEED_OFFSET = 1_000
SIM_MIXER_SEED_OFFSET = 500

#: Seed offset separating a front end's replica-choice RNG from its key
#: and mixer streams (replication-enabled runs only).
REPLICA_ROUTE_SEED_OFFSET = 2_000


@dataclass
class ScenarioResult:
    """What a runner hands back: typed telemetry plus the live objects.

    ``telemetry`` is the reporting surface; the live objects (policies,
    front ends, cluster, sim clients) stay available for deep inspection
    in tests and ablations.
    """

    spec: ScenarioSpec
    telemetry: TelemetrySnapshot
    policies: list[CachePolicy] = field(default_factory=list)
    cluster: CacheCluster | None = None
    front_ends: list[FrontEndClient] = field(default_factory=list)
    sim_clients: list[SimClient] = field(default_factory=list)
    servers: dict[str, SimBackendServer] = field(default_factory=dict)

    @property
    def policy(self) -> CachePolicy:
        """The single policy of a one-client scenario."""
        return self.policies[0]

    @property
    def front_end(self) -> FrontEndClient:
        """The single front end of a one-client scenario."""
        return self.front_ends[0]


@runtime_checkable
class Runner(Protocol):
    """Anything that can execute a :class:`ScenarioSpec`."""

    def run(self, spec: ScenarioSpec) -> ScenarioResult:  # pragma: no cover
        """Execute the scenario and return its result."""
        ...


# --------------------------------------------------------------------------
# policy streams


class PolicyStreamRunner:
    """Drive a bare policy with a key stream; no cluster plumbing.

    The setting of the paper's hit-rate comparisons: every miss is
    admitted (subject to the policy's own filter). Without hooks the
    stream runs through the fused batch APIs (``keys_array`` →
    ``run_stream``); with :class:`~repro.engine.spec.StreamHooks` it runs
    an exactly decision-equivalent per-access loop exposing the
    ``before``/``after`` instrumentation points.
    """

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        policy = spec.policy.build(0)
        generator = spec.workload.build_generator(
            spec.scale.key_space, spec.base_seed, 0
        )
        accesses = spec.total_accesses
        hooks = spec.hooks
        if hooks is None:
            keys_array = generator.keys_array
            run_stream = policy.run_stream
            remaining = accesses
            while remaining > 0:
                n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
                run_stream(keys_array(n))
                remaining -= n
        else:
            before, after = hooks.before, hooks.after
            next_key = generator.next_key
            lookup, admit = policy.lookup, policy.admit
            for i in range(accesses):
                if before is not None:
                    before(i)
                key = next_key()
                hit = lookup(key) is not MISSING
                if not hit:
                    admit(key, key)
                if after is not None:
                    after(i, key, hit)

        bus = TelemetryBus()
        stats = policy.stats
        bus.inc(T.HITS, stats.hits)
        bus.inc(T.MISSES, stats.misses)
        bus.inc(T.ACCESSES, stats.accesses)
        bus.inc(T.TOTAL_REQUESTS, accesses)
        _publish_adaptive(bus, [policy])
        return ScenarioResult(spec, bus.snapshot(), policies=[policy])


def _publish_adaptive(bus: TelemetryBus, policies: list[CachePolicy]) -> None:
    """Publish ``adaptive.*`` telemetry for any arbiters among ``policies``.

    No-op on pinned-policy runs (no counters appear, keeping those runs
    byte-identical). Counters sum across arbiters; the per-candidate
    shadow hit rates and the regret estimate are access-weighted.
    """
    arbiters = [p for p in policies if isinstance(p, AdaptiveArbiter)]
    if not arbiters:
        return
    bus.inc(T.ADAPTIVE_SWITCHES, sum(a.switches for a in arbiters))
    bus.inc(T.ADAPTIVE_EPOCHS, sum(a.epochs for a in arbiters))
    bus.inc(T.ADAPTIVE_SHADOW_SAMPLES, sum(a.samples for a in arbiters))
    bus.set_gauge(T.ADAPTIVE_REGRET, sum(a.regret for a in arbiters))
    rates: dict[str, float] = {}
    weights: dict[str, int] = {}
    for arbiter in arbiters:
        for name, rate in arbiter.shadow_hit_rates().items():
            weight = arbiter.samples or 1
            rates[name] = rates.get(name, 0.0) + rate * weight
            weights[name] = weights.get(name, 0) + weight
    for name, total in rates.items():
        bus.set_gauge(f"adaptive.shadow_hit_rate.{name}", total / weights[name])


def _publish_net(bus: TelemetryBus, net: dict[str, Any]) -> None:
    """Publish ``net.*`` telemetry from a network plane's wire counters.

    Only network-enabled runs call this (default runs publish no ``net.*``
    names at all, keeping them byte-identical). The batch-depth
    distribution is published as a histogram whose observations are the
    coalesced-flush depths (requests per socket write).
    """
    bus.inc(T.NET_CONNECTIONS, net["connections"])
    bus.inc(T.NET_RECONNECTS, net["reconnects"])
    bus.inc(T.NET_REQUESTS, net["requests"])
    bus.inc(T.NET_BATCHES, net["batches"])
    bus.inc(T.NET_TIMEOUTS, net["timeouts"])
    bus.inc(T.NET_PROTOCOL_ERRORS, net["protocol_errors"])
    bus.inc(T.NET_FAULT_ERRORS, net["fault_errors"])
    bus.inc(T.NET_BYTES_IN, net["bytes_in"])
    bus.inc(T.NET_BYTES_OUT, net["bytes_out"])
    depths = net.get("batch_depths") or {}
    if depths:
        histogram = LatencyHistogram()
        for depth, count in sorted(depths.items()):
            for _ in range(count):
                histogram.record(float(depth))
        bus.record_histogram(T.NET_BATCH_DEPTH, histogram)


# --------------------------------------------------------------------------
# cluster runs


def _resilience_counts(front_ends: list[FrontEndClient]) -> dict[str, int]:
    """Monotone resilience/hit counters summed across front ends."""
    counts = {
        "hits": 0, "misses": 0, "degraded": 0, "retries": 0,
        "rejections": 0, "opens": 0, "closes": 0,
    }
    for client in front_ends:
        stats = client.policy.stats
        guard = client.guard.stats
        transitions = client.guard.breaker_transitions()
        counts["hits"] += stats.hits
        counts["misses"] += stats.misses
        counts["degraded"] += client.monitor.degraded_reads()
        counts["retries"] += guard.retries
        counts["rejections"] += guard.open_rejections
        counts["opens"] += transitions["opens"]
        counts["closes"] += transitions["closes"]
    return counts


class ClusterRunner:
    """Drive N front ends over one shared back-end cluster.

    Scheduling modes (all decision-equivalent to the hand-wired loops
    they replace):

    * **sequential** (default) — each client drains its whole quota
      before the next starts, keys drawn through the chunked batch API;
      ``read_fraction`` below 1 routes through an
      :class:`~repro.workloads.mixer.OperationMixer` per client.
    * **interleaved** (``spec.interleave``) — clients advance round-robin
      one access at a time (Table 2's measurement and the only mode that
      exercises concurrent front ends against shared shard state); a
      ``warmup_fraction`` resets the cluster's epoch window mid-run.
    * **phased** (``spec.phases``) — interleaved drive segmented by a
      fault/workload schedule: each phase may fire an action against the
      live cluster, swap the key distribution, and is telemetered as its
      own :class:`~repro.engine.telemetry.PhaseTelemetry` delta.

    Elastic front ends plug in through ``spec.client_factory``; their
    epoch records are published to the bus as typed epoch events.

    When the parallel fabric is configured with more than one worker,
    eligible sequential-mode scenarios (pure reads, no faults/phases/
    hooks — see :func:`repro.engine.parallel.cluster_spec_parallelizable`)
    delegate to :class:`~repro.engine.parallel.ParallelClusterRunner`,
    which runs the front ends as real processes and returns an equal
    snapshot. Everything else runs here unchanged.
    """

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        # Local import: parallel imports this module at its top level.
        from repro.engine import parallel

        if parallel.should_use_process_drive(spec):
            return parallel.ParallelClusterRunner().run(spec)
        topology = spec.topology
        cluster = CacheCluster(
            num_servers=spec.num_servers,
            capacity_bytes=topology.capacity_bytes,
            value_size=topology.value_size,
            storage=topology.storage,
            faults=topology.faults,
        )
        num_clients = spec.num_clients
        if num_clients < 1:
            raise ConfigurationError("cluster scenario needs >= 1 front end")
        # The socket-plane axis (default off → `target is cluster`, the
        # classic byte-identical path): front ends, router and write
        # policy all talk to the plane facade, so every shard hop —
        # reads, writes, replica invalidations — crosses the wire.
        plane = None
        if topology.network.enabled:
            plane = topology.network.build_plane(cluster)
        target = cluster if plane is None else plane
        try:
            return self._run_on(spec, cluster, target, plane, num_clients)
        finally:
            if plane is not None:
                plane.close()

    def _run_on(
        self,
        spec: ScenarioSpec,
        cluster: CacheCluster,
        target: Any,
        plane: Any,
        num_clients: int,
    ) -> "ScenarioResult":
        topology = spec.topology
        if spec.client_factory is not None:
            front_ends = [
                spec.client_factory(target, i) for i in range(num_clients)
            ]
        else:
            front_ends = [
                FrontEndClient(target, spec.policy.build(i), client_id=f"front-{i}")
                for i in range(num_clients)
            ]
        if spec.tracer is not None:
            # One shared tracer across the run's front ends (covers
            # factory-built clients, e.g. elastic ones, as well).
            for client in front_ends:
                client.tracer = spec.tracer
        router: HotKeyRouter | None = None
        if topology.replication.enabled:
            # One shared router per run (the agreement layer); each front
            # end keeps its own independently-seeded choice RNG.
            router = HotKeyRouter(target, topology.replication.build_config())
            for i, client in enumerate(front_ends):
                client.attach_router(
                    router, seed=spec.base_seed + REPLICA_ROUTE_SEED_OFFSET + i
                )
        write_policy = None
        if topology.write.enabled:
            # One shared strategy per run (dirty buffers / logical clock
            # are cluster state); the default mode builds nothing at all.
            write_policy = topology.write.build_policy()
            write_policy.bind_cluster(target)
            for client in front_ends:
                client.attach_write_policy(write_policy)

        bus = TelemetryBus()
        per_client = spec.total_accesses // num_clients
        if spec.phases is not None:
            driven = self._drive_phased(
                spec, cluster, front_ends, per_client, bus, router, write_policy
            )
        elif spec.interleave:
            driven = self._drive_interleaved(
                spec, cluster, front_ends, per_client, router, write_policy
            )
        else:
            driven = self._drive_sequential(
                spec, front_ends, per_client, router, write_policy
            )

        self._publish(spec, cluster, front_ends, driven, bus, router, write_policy)
        if plane is not None:
            _publish_net(bus, plane.telemetry())
        return ScenarioResult(
            spec,
            bus.snapshot(),
            policies=[client.policy for client in front_ends],
            cluster=cluster,
            front_ends=front_ends,
        )

    # ------------------------------------------------------------- drive modes

    def _drive_sequential(
        self,
        spec: ScenarioSpec,
        front_ends: list[FrontEndClient],
        per_client: int,
        router: HotKeyRouter | None = None,
        write_policy: "Any | None" = None,
    ) -> int:
        workload = spec.workload
        read_fraction = workload.read_fraction
        # Promotion-epoch cadence: with a router attached, the promoted
        # key set is refreshed every `refresh_every` accesses (counted
        # across the whole run), keeping epoch boundaries deterministic.
        refresh_every = (
            spec.topology.replication.refresh_every if router is not None else 0
        )
        # Write-behind flush cadence, same cross-run counting; only a
        # buffered strategy needs one.
        flush_every = (
            spec.topology.write.flush_every
            if write_policy is not None and write_policy.buffered
            else 0
        )
        # A mixer_factory routes the whole drive through `execute` —
        # the hatch bespoke operation streams (YCSB A-F) come in through.
        mixed = workload.mixer_factory is not None or (
            read_fraction is not None and read_fraction < 1.0
        )
        driven = 0
        for i, client in enumerate(front_ends):
            if not mixed:
                generator = workload.build_generator(
                    spec.scale.key_space, spec.base_seed, i
                )
                get = client.get
                remaining = per_client
                while remaining > 0:
                    n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
                    if refresh_every or flush_every:
                        for key in generator.keys_array(n):
                            get(format_key(key))
                            driven += 1
                            if refresh_every and driven % refresh_every == 0:
                                router.refresh(front_ends)
                            if flush_every and driven % flush_every == 0:
                                write_policy.flush()
                    else:
                        for key in generator.keys_array(n):
                            get(format_key(key))
                    remaining -= n
            else:
                if workload.mixer_factory is not None:
                    mixer = workload.mixer_factory(i)
                else:
                    generator = workload.build_generator(
                        spec.scale.key_space, spec.base_seed, i
                    )
                    mixer = OperationMixer(
                        generator,
                        read_fraction=read_fraction,
                        seed=spec.base_seed + CLUSTER_MIXER_SEED_OFFSET + i,
                    )
                execute = client.execute
                remaining = per_client
                while remaining > 0:
                    n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
                    if refresh_every or flush_every:
                        for request in mixer.next_requests(n):
                            execute(request)
                            driven += 1
                            if refresh_every and driven % refresh_every == 0:
                                router.refresh(front_ends)
                            if flush_every and driven % flush_every == 0:
                                write_policy.flush()
                    else:
                        for request in mixer.next_requests(n):
                            execute(request)
                    remaining -= n
        return per_client * len(front_ends)

    def _drive_interleaved(
        self,
        spec: ScenarioSpec,
        cluster: CacheCluster,
        front_ends: list[FrontEndClient],
        per_client: int,
        router: HotKeyRouter | None = None,
        write_policy: "Any | None" = None,
    ) -> int:
        generators = [
            spec.workload.build_generator(spec.scale.key_space, spec.base_seed, i)
            for i in range(len(front_ends))
        ]
        warmup = int(per_client * spec.warmup_fraction)
        refresh_every = (
            spec.topology.replication.refresh_every if router is not None else 0
        )
        flush_every = (
            spec.topology.write.flush_every
            if write_policy is not None and write_policy.buffered
            else 0
        )
        driven = 0
        for j in range(per_client):
            if warmup and j == warmup:
                cluster.reset_epoch()
            for client, generator in zip(front_ends, generators):
                client.get(format_key(generator.next_key()))
                if refresh_every or flush_every:
                    driven += 1
                    if refresh_every and driven % refresh_every == 0:
                        router.refresh(front_ends)
                    if flush_every and driven % flush_every == 0:
                        write_policy.flush()
        return per_client * len(front_ends)

    def _drive_phased(
        self,
        spec: ScenarioSpec,
        cluster: CacheCluster,
        front_ends: list[FrontEndClient],
        per_client: int,
        bus: TelemetryBus,
        router: HotKeyRouter | None = None,
        write_policy: "Any | None" = None,
    ) -> int:
        faults = spec.topology.faults
        verify = spec.verify_value
        refresh_every = (
            spec.topology.replication.refresh_every if router is not None else 0
        )
        flush_every = (
            spec.topology.write.flush_every
            if write_policy is not None and write_policy.buffered
            else 0
        )
        context = RunContext(
            spec=spec, cluster=cluster, faults=faults, front_ends=front_ends
        )
        generators = [
            spec.workload.build_generator(spec.scale.key_space, spec.base_seed, i)
            for i in range(len(front_ends))
        ]
        elastic = [c for c in front_ends if isinstance(c, ElasticCoTClient)]
        published = 0
        driven = 0
        for index, phase in enumerate(spec.phases or ()):
            if phase.action is not None:
                phase.action(context)
            if phase.dist is not None:
                generators = [
                    make_generator(phase.dist, spec.scale.key_space, spec.base_seed + i)
                    for i in range(len(front_ends))
                ]
            down = tuple(sorted(faults.down_servers())) if faults else ()
            before = _resilience_counts(front_ends)
            start_epoch = len(elastic[0].history) if elastic else 0
            incorrect_before = bus.counter(T.INCORRECT_READS)
            phase_accesses = per_client if phase.accesses is None else phase.accesses
            for _j in range(phase_accesses):
                for client, generator in zip(front_ends, generators):
                    key = format_key(generator.next_key())
                    value = client.get(key)
                    if verify is not None and value != verify(key):
                        bus.inc(T.INCORRECT_READS)
                    if refresh_every or flush_every:
                        driven += 1
                        if refresh_every and driven % refresh_every == 0:
                            router.refresh(front_ends)
                        if flush_every and driven % flush_every == 0:
                            write_policy.flush()
            if not (refresh_every or flush_every):
                driven += phase_accesses * len(front_ends)
            after = _resilience_counts(front_ends)
            # Publish the epochs that closed during this phase.
            for client in elastic:
                for record in client.history[published:]:
                    bus.emit_epoch(record)
                published = len(client.history)
            bus.push_phase(PhaseTelemetry(
                index=index,
                label=phase.label,
                down=down,
                reads=phase_accesses * len(front_ends),
                hits=after["hits"] - before["hits"],
                degraded_reads=after["degraded"] - before["degraded"],
                retries=after["retries"] - before["retries"],
                open_rejections=after["rejections"] - before["rejections"],
                breaker_opens=after["opens"] - before["opens"],
                breaker_closes=after["closes"] - before["closes"],
                incorrect_reads=bus.counter(T.INCORRECT_READS) - incorrect_before,
                start_epoch=start_epoch,
                epoch_events=bus.epoch_events_since(
                    start_epoch if elastic else 0
                ) if elastic else (),
            ))
        return driven

    # ---------------------------------------------------------------- publish

    def _publish(
        self,
        spec: ScenarioSpec,
        cluster: CacheCluster,
        front_ends: list[FrontEndClient],
        driven: int,
        bus: TelemetryBus,
        router: HotKeyRouter | None = None,
        write_policy: "Any | None" = None,
    ) -> None:
        counts = _resilience_counts(front_ends)
        accesses = sum(c.policy.stats.accesses for c in front_ends)
        failed = sum(c.guard.stats.lost_invalidations for c in front_ends)
        bus.inc(T.HITS, counts["hits"])
        bus.inc(T.MISSES, counts["misses"])
        bus.inc(T.ACCESSES, accesses)
        bus.inc(T.TOTAL_REQUESTS, driven)
        bus.inc(T.DEGRADED_READS, counts["degraded"])
        bus.inc(T.RETRIES, counts["retries"])
        bus.inc(T.OPEN_REJECTIONS, counts["rejections"])
        bus.inc(T.BREAKER_OPENS, counts["opens"])
        bus.inc(T.BREAKER_CLOSES, counts["closes"])
        bus.inc(T.FAILED_INVALIDATIONS, failed)
        bus.record_shard_loads(cluster.loads(), cluster.epoch_loads())
        bus.fallback_latency = sum(
            c.monitor.fallback_latency_total for c in front_ends
        )
        if router is not None:
            rstats = router.stats
            bus.inc(T.REPLICA_REFRESHES, rstats.refreshes)
            bus.inc(T.REPLICA_PROMOTIONS, rstats.promotions)
            bus.inc(T.REPLICA_DEMOTIONS, rstats.demotions)
            bus.inc(T.REPLICATED_READS, rstats.replicated_reads)
            bus.inc(T.TWO_CHOICE_READS, rstats.two_choice_reads)
            bus.inc(T.REPLICA_PRIMARY_FALLBACKS, rstats.primary_fallbacks)
            bus.inc(T.REPLICA_INVALIDATIONS, rstats.replica_invalidations)
            bus.inc(
                T.FAILED_REPLICA_INVALIDATIONS,
                rstats.failed_replica_invalidations,
            )
            bus.set_gauge("replication.active_keys", float(len(router)))
        if write_policy is not None:
            # Residual depth before the final drain is the interesting
            # gauge (how much acknowledged data was volatile at the end);
            # the counters are read after it so the drain's flushes count.
            bus.set_gauge(
                "write.dirty_buffer_depth", float(write_policy.dirty_depth())
            )
            write_policy.flush()
            ws = write_policy.stats
            bus.inc(T.WRITE_STORAGE_WRITES, ws.storage_writes)
            bus.inc(T.WRITE_THROUGH_WRITES, ws.through_writes)
            bus.inc(T.WRITE_BUFFERED, ws.buffered_writes)
            bus.inc(T.WRITE_COALESCED, ws.coalesced_writes)
            bus.inc(T.WRITE_FLUSHED, ws.flushed_writes)
            bus.inc(T.WRITE_FLUSHES, ws.flushes)
            bus.inc(T.WRITE_BOUND_FLUSHES, ws.bound_flushes)
            bus.inc(T.WRITE_LOST, ws.lost_writes)
            bus.inc(T.WRITE_SYNC_FALLBACKS, ws.sync_fallbacks)
            bus.inc(T.WRITE_TTL_EXPIRATIONS, ws.ttl_expirations)
            bus.set_gauge("write.peak_dirty_depth", float(ws.peak_dirty))
        elastic = [c for c in front_ends if isinstance(c, ElasticCoTClient)]
        if elastic and spec.phases is None:
            # Phased runs publish epochs incrementally; publish here
            # otherwise so plain elastic runs still expose their series.
            for client in elastic:
                for record in client.history:
                    bus.emit_epoch(record)
        if len(elastic) == 1:
            cache, tracker = elastic[0].converged_sizes()
            bus.set_gauge("elastic.final_cache", cache)
            bus.set_gauge("elastic.final_tracker", tracker)
            bus.set_gauge(
                "elastic.alpha_target", elastic[0].controller.alpha_target
            )
        if elastic:
            triggers = sum(c.decay_policy.triggers for c in elastic)
            epoch_decays = sum(c.decay_policy.epoch_decays for c in elastic)
            if triggers or epoch_decays:
                bus.inc(T.DECAY_TRIGGERS, triggers)
                bus.inc(T.DECAY_EPOCH_DECAYS, epoch_decays)
        _publish_adaptive(bus, [c.policy for c in front_ends])


# --------------------------------------------------------------------------
# discrete-event simulation


class SimRunner:
    """Execute a scenario on the discrete-event testbed (Figures 5-6).

    Assembles a shared content cluster, per-shard timing models, a
    latency model, and N closed-loop clients each with its own front-end
    policy, runs the event loop to completion, and publishes the
    *overall running time* (the paper's metric: time until the last
    client finishes its quota) plus load, latency-percentile and
    resilience telemetry.

    ``spec.topology.faults`` attaches to the per-shard *timing* models:
    killed shards fail requests into the degraded-read path, slowed
    shards serve with inflated service times. The shared content cluster
    stays fault-free — content correctness is storage's job, timing
    faults are modeled here.
    """

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        num_clients = spec.num_clients
        per_client = spec.requests_per_client
        if per_client is None:
            per_client = max(1, spec.total_accesses // max(num_clients, 1))
        if num_clients < 1 or per_client < 1:
            raise ConfigurationError("need >= 1 client and >= 1 request")
        sim = Simulator()
        topology = spec.topology
        cluster = CacheCluster(
            num_servers=spec.num_servers,
            capacity_bytes=topology.capacity_bytes,
            value_size=topology.value_size,
            storage=topology.storage,
        )
        faults = topology.faults
        model = spec.service_model or ServiceModel()
        latency = spec.latency or FixedLatency()
        fair = 1.0 / len(cluster.server_ids)
        total_counter = [0]
        servers: dict[str, SimBackendServer] = {}
        for server_id in cluster.server_ids:
            server = SimBackendServer(server_id, model, fair, fault_injector=faults)
            server.bind_total_counter(total_counter)
            servers[server_id] = server
        clients: list[SimClient] = []
        for client_id in range(num_clients):
            client = SimClient(
                client_id=client_id,
                sim=sim,
                mixer=self._build_mixer(spec, client_id),
                policy=spec.policy.build(client_id),
                cluster=cluster,
                servers=servers,
                latency=latency,
                total_requests=per_client,
                tracer=spec.tracer,
            )
            clients.append(client)

        for client in clients:
            client.start()
        runtime = sim.run()
        bus = self._publish(clients, servers, runtime)
        return ScenarioResult(
            spec,
            bus.snapshot(),
            policies=[client.policy for client in clients],
            cluster=cluster,
            sim_clients=clients,
            servers=servers,
        )

    def _build_mixer(self, spec: ScenarioSpec, client_id: int) -> OperationMixer:
        workload = spec.workload
        if workload.mixer_factory is not None:
            return workload.mixer_factory(client_id)
        generator = workload.build_generator(
            spec.scale.key_space, spec.base_seed, client_id
        )
        mixer_seed = spec.base_seed + SIM_MIXER_SEED_OFFSET + client_id
        if workload.read_fraction is None:
            return OperationMixer(generator, seed=mixer_seed)
        return OperationMixer(
            generator, read_fraction=workload.read_fraction, seed=mixer_seed
        )

    def _publish(
        self,
        clients: list[SimClient],
        servers: dict[str, SimBackendServer],
        runtime: float,
    ) -> TelemetryBus:
        bus = TelemetryBus()
        hits = sum(c.policy.stats.hits for c in clients)
        misses = sum(c.policy.stats.misses for c in clients)
        accesses = sum(c.policy.stats.accesses for c in clients)
        total_requests = sum(c.completed for c in clients)
        bus.inc(T.HITS, hits)
        bus.inc(T.MISSES, misses)
        bus.inc(T.ACCESSES, accesses)
        bus.inc(T.TOTAL_REQUESTS, total_requests)
        bus.inc(T.DEGRADED_READS, sum(c.degraded_reads for c in clients))
        bus.inc(
            T.FAILED_INVALIDATIONS, sum(c.failed_invalidations for c in clients)
        )
        bus.record_shard_loads(
            {sid: server.arrivals for sid, server in servers.items()}
        )
        bus.runtime = runtime
        bus.per_client_runtime = tuple(
            c.finish_time if c.finish_time is not None else runtime for c in clients
        )
        latency_total = sum(c.latencies_sum for c in clients)
        bus.mean_latency = latency_total / total_requests if total_requests else 0.0
        # Cross-client percentiles go through the count-weighted reservoir
        # merge — concatenating raw reservoirs weighs every client equally
        # once any reservoir saturates, biasing the merged p50/p99 toward
        # low-traffic clients. The fixed-bucket histogram merge is exact
        # and is what the bus publishes as the full distribution.
        merged = LatencyRecorder.merged(
            (c.latency_recorder for c in clients), seed=0
        )
        bus.p50_latency = merged.percentile(50) if merged.count else 0.0
        bus.p99_latency = merged.percentile(99) if merged.count else 0.0
        histogram = LatencyHistogram.merged(c.latency_histogram for c in clients)
        if histogram.count:
            bus.record_histogram(T.REQUEST_LATENCY, histogram)
        bus.fallback_latency = sum(c.fallback_latency_sum for c in clients)
        return bus
