"""The scenario engine: one pipeline for every execution substrate.

Layering (see DESIGN.md §8)::

    ScenarioSpec  ──▶  Runner  ──▶  TelemetryBus  ──▶  reporters
    (declarative       (PolicyStream / (typed counters,  (experiment
     what-to-run)       Cluster / Sim)  gauges, epochs)   render())

Experiment modules build :class:`ScenarioSpec`s and register themselves
in the spec registry; the CLI, benches and CI smoke stage enumerate the
registry instead of hand-maintained lists.
"""

from repro.engine.registry import (
    RegisteredExperiment,
    experiment_ids,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.engine.runners import (
    STREAM_CHUNK,
    ClusterRunner,
    PolicyStreamRunner,
    Runner,
    ScenarioResult,
    SimRunner,
)
from repro.engine.spec import (
    Phase,
    PolicySpec,
    RunContext,
    Scale,
    ScenarioSpec,
    StreamHooks,
    TopologySpec,
    WorkloadSpec,
    make_generator,
)
from repro.engine.telemetry import PhaseTelemetry, TelemetryBus, TelemetrySnapshot

__all__ = [
    "STREAM_CHUNK",
    "ClusterRunner",
    "Phase",
    "PhaseTelemetry",
    "PolicySpec",
    "PolicyStreamRunner",
    "RegisteredExperiment",
    "RunContext",
    "Runner",
    "Scale",
    "ScenarioResult",
    "ScenarioSpec",
    "SimRunner",
    "StreamHooks",
    "TelemetryBus",
    "TelemetrySnapshot",
    "TopologySpec",
    "WorkloadSpec",
    "experiment_ids",
    "get_experiment",
    "make_generator",
    "register_experiment",
    "run_experiment",
]
