"""The scenario engine: one pipeline for every execution substrate.

Layering (see DESIGN.md §8)::

    ScenarioSpec  ──▶  Runner  ──▶  TelemetryBus  ──▶  reporters
    (declarative       (PolicyStream / (typed counters,  (experiment
     what-to-run)       Cluster / Sim)  gauges, epochs)   render())

Experiment modules build :class:`ScenarioSpec`s and register themselves
in the spec registry; the CLI, benches and CI smoke stage enumerate the
registry instead of hand-maintained lists.

The parallel fabric (:mod:`repro.engine.parallel`, DESIGN.md §10) slots
between specs and runners: :func:`map_specs`/:func:`map_calls` fan
independent tasks across a spawned worker pool and merge results back in
spec order, with outputs byte-identical at every worker count.
"""

from repro.engine.parallel import (
    ParallelClusterRunner,
    cluster_spec_parallelizable,
    configure,
    configured_workers,
    default_workers,
    derive_seeds,
    map_calls,
    map_specs,
    parallel_workers,
    spawn_seed,
)
from repro.engine.registry import (
    RegisteredExperiment,
    experiment_ids,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.engine.runners import (
    STREAM_CHUNK,
    ClusterRunner,
    PolicyStreamRunner,
    Runner,
    ScenarioResult,
    SimRunner,
)
from repro.engine.spec import (
    ArbitrationSpec,
    Phase,
    PolicySpec,
    ReplicationSpec,
    RunContext,
    Scale,
    ScenarioSpec,
    StreamHooks,
    TopologySpec,
    WorkloadSpec,
    WriteSpec,
    make_generator,
    spawn_safe,
)
from repro.engine.telemetry import (
    PhaseTelemetry,
    TelemetryBus,
    TelemetrySnapshot,
    merge_snapshots,
)

__all__ = [
    "STREAM_CHUNK",
    "ArbitrationSpec",
    "ClusterRunner",
    "ParallelClusterRunner",
    "Phase",
    "PhaseTelemetry",
    "PolicySpec",
    "PolicyStreamRunner",
    "RegisteredExperiment",
    "ReplicationSpec",
    "RunContext",
    "Runner",
    "Scale",
    "ScenarioResult",
    "ScenarioSpec",
    "SimRunner",
    "StreamHooks",
    "TelemetryBus",
    "TelemetrySnapshot",
    "TopologySpec",
    "WorkloadSpec",
    "WriteSpec",
    "cluster_spec_parallelizable",
    "configure",
    "configured_workers",
    "default_workers",
    "derive_seeds",
    "experiment_ids",
    "get_experiment",
    "make_generator",
    "map_calls",
    "map_specs",
    "merge_snapshots",
    "parallel_workers",
    "register_experiment",
    "run_experiment",
    "spawn_safe",
    "spawn_seed",
]
