"""Typed telemetry for scenario runs.

Every runner publishes its measurements through one :class:`TelemetryBus`
instead of handing callers a grab-bag of dicts: counters (monotone event
counts such as hits or degraded reads), gauges (latest-value readings
such as converged cache size), per-shard load families, epoch events
(the elastic controller's :class:`~repro.core.epoch.EpochRecord` stream)
and phase marks (fault-schedule segments). At the end of a run the bus
freezes into a :class:`TelemetrySnapshot` — the single typed result
surface the experiment reporters read, replacing the ad-hoc
``policy.stats``/``cluster.loads()``/simulation-result dict pokes the
three legacy harnesses used to hand-wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.loadmonitor import load_imbalance
from repro.core.epoch import EpochRecord

__all__ = [
    "ACCESSES",
    "BREAKER_CLOSES",
    "BREAKER_OPENS",
    "DEGRADED_READS",
    "FAILED_INVALIDATIONS",
    "HITS",
    "INCORRECT_READS",
    "MISSES",
    "OPEN_REJECTIONS",
    "RETRIES",
    "TOTAL_REQUESTS",
    "PhaseTelemetry",
    "TelemetryBus",
    "TelemetrySnapshot",
]

# Canonical counter names shared by every runner. Keeping them as module
# constants (rather than stringly-typed call sites) is what lets the
# reporters stay in sync with the runners.
HITS = "policy.hits"
MISSES = "policy.misses"
ACCESSES = "policy.accesses"
TOTAL_REQUESTS = "run.requests"
DEGRADED_READS = "resilience.degraded_reads"
RETRIES = "resilience.retries"
OPEN_REJECTIONS = "resilience.open_rejections"
BREAKER_OPENS = "resilience.breaker_opens"
BREAKER_CLOSES = "resilience.breaker_closes"
FAILED_INVALIDATIONS = "resilience.failed_invalidations"
INCORRECT_READS = "verify.incorrect_reads"


@dataclass(frozen=True)
class PhaseTelemetry:
    """One fault-schedule phase of a cluster scenario, fully accounted.

    All count fields are *deltas over the phase*, captured from the same
    monotone counters the lifetime snapshot reports; ``epoch_events``
    holds the elastic epochs that closed during the phase.
    """

    index: int
    label: str
    #: shard ids down while the phase ran (set at phase start, after the
    #: phase action fired)
    down: tuple[str, ...]
    reads: int
    hits: int
    degraded_reads: int
    retries: int
    open_rejections: int
    breaker_opens: int
    breaker_closes: int
    incorrect_reads: int
    #: elastic epoch index at phase start (``switch_epoch`` for Figure 8)
    start_epoch: int
    epoch_events: tuple[EpochRecord, ...]

    @property
    def hit_rate(self) -> float:
        """Front-end hit rate over this phase's reads."""
        return self.hits / self.reads if self.reads else 0.0

    @property
    def max_imbalance(self) -> float:
        """Worst per-epoch ``I_c`` closed during the phase (0 if none)."""
        return max((r.snapshot.imbalance for r in self.epoch_events), default=0.0)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable end-of-run view of a scenario's telemetry.

    The generic channels (``counters``/``gauges``) stay available for
    extensions, but the standard measurements all have typed accessors so
    reporters never reach back into live runner objects.
    """

    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    #: lifetime lookups per back-end shard (the load-balance measurement)
    shard_loads: Mapping[str, int]
    #: lookups per shard since the last epoch reset (Table 2's window)
    epoch_shard_loads: Mapping[str, int]
    epoch_events: tuple[EpochRecord, ...]
    phases: tuple[PhaseTelemetry, ...]
    #: simulated wall-clock of the run (0 for untimed drive paths)
    runtime: float = 0.0
    per_client_runtime: tuple[float, ...] = ()
    mean_latency: float = 0.0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    fallback_latency: float = 0.0

    # ------------------------------------------------------ typed accessors

    def counter(self, name: str) -> int:
        """Read one counter (0 when the runner never touched it)."""
        return self.counters.get(name, 0)

    @property
    def hits(self) -> int:
        return self.counter(HITS)

    @property
    def misses(self) -> int:
        return self.counter(MISSES)

    @property
    def accesses(self) -> int:
        return self.counter(ACCESSES)

    @property
    def hit_rate(self) -> float:
        """Front-end hit rate over all policy accesses."""
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0

    @property
    def total_requests(self) -> int:
        return self.counter(TOTAL_REQUESTS)

    @property
    def degraded_reads(self) -> int:
        return self.counter(DEGRADED_READS)

    @property
    def failed_invalidations(self) -> int:
        return self.counter(FAILED_INVALIDATIONS)

    @property
    def incorrect_reads(self) -> int:
        return self.counter(INCORRECT_READS)

    @property
    def backend_imbalance(self) -> float:
        """Lifetime max/min shard-load ratio."""
        return load_imbalance(dict(self.shard_loads))

    @property
    def throughput(self) -> float:
        """Requests per simulated second (timed runs only)."""
        return self.total_requests / self.runtime if self.runtime else 0.0


class TelemetryBus:
    """Mutable collection side of the telemetry pipeline.

    Runners ``inc``/``set_gauge``/``emit_epoch``/``push_phase`` while
    driving; :meth:`snapshot` freezes the state for the reporters.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._shard_loads: dict[str, int] = {}
        self._epoch_shard_loads: dict[str, int] = {}
        self._epoch_events: list[EpochRecord] = []
        self._phases: list[PhaseTelemetry] = []
        self.runtime: float = 0.0
        self.per_client_runtime: tuple[float, ...] = ()
        self.mean_latency: float = 0.0
        self.p50_latency: float = 0.0
        self.p99_latency: float = 0.0
        self.fallback_latency: float = 0.0

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name``."""
        return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        self._gauges[name] = value

    def record_shard_loads(
        self, total: Mapping[str, int], epoch: Mapping[str, int] | None = None
    ) -> None:
        """Publish the per-shard load families (lifetime + epoch window)."""
        self._shard_loads = dict(total)
        if epoch is not None:
            self._epoch_shard_loads = dict(epoch)

    def emit_epoch(self, record: EpochRecord) -> None:
        """Publish one closed elastic epoch."""
        self._epoch_events.append(record)

    def push_phase(self, phase: PhaseTelemetry) -> None:
        """Publish one completed fault-schedule phase."""
        self._phases.append(phase)

    def epoch_event_count(self) -> int:
        """Epoch events emitted so far (phase-delta bookkeeping)."""
        return len(self._epoch_events)

    def epoch_events_since(self, start: int) -> tuple[EpochRecord, ...]:
        """Epoch events emitted at or after index ``start``."""
        return tuple(self._epoch_events[start:])

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the bus into an immutable result surface."""
        return TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            shard_loads=dict(self._shard_loads),
            epoch_shard_loads=dict(self._epoch_shard_loads),
            epoch_events=tuple(self._epoch_events),
            phases=tuple(self._phases),
            runtime=self.runtime,
            per_client_runtime=self.per_client_runtime,
            mean_latency=self.mean_latency,
            p50_latency=self.p50_latency,
            p99_latency=self.p99_latency,
            fallback_latency=self.fallback_latency,
        )
