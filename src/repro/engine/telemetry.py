"""Typed telemetry for scenario runs.

Every runner publishes its measurements through one :class:`TelemetryBus`
instead of handing callers a grab-bag of dicts: counters (monotone event
counts such as hits or degraded reads), gauges (latest-value readings
such as converged cache size), per-shard load families, epoch events
(the elastic controller's :class:`~repro.core.epoch.EpochRecord` stream)
and phase marks (fault-schedule segments). At the end of a run the bus
freezes into a :class:`TelemetrySnapshot` — the single typed result
surface the experiment reporters read, replacing the ad-hoc
``policy.stats``/``cluster.loads()``/simulation-result dict pokes the
three legacy harnesses used to hand-wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.cluster.loadmonitor import load_imbalance
from repro.core.epoch import EpochRecord
from repro.obs.hist import LatencyHistogram

__all__ = [
    "ACCESSES",
    "ADAPTIVE_EPOCHS",
    "ADAPTIVE_REGRET",
    "ADAPTIVE_SHADOW_SAMPLES",
    "ADAPTIVE_SWITCHES",
    "BREAKER_CLOSES",
    "BREAKER_OPENS",
    "DECAY_EPOCH_DECAYS",
    "DECAY_TRIGGERS",
    "DEGRADED_READS",
    "FAILED_INVALIDATIONS",
    "HITS",
    "INCORRECT_READS",
    "MISSES",
    "NET_BATCHES",
    "NET_BATCH_DEPTH",
    "NET_BYTES_IN",
    "NET_BYTES_OUT",
    "NET_CONNECTIONS",
    "NET_FAULT_ERRORS",
    "NET_PROTOCOL_ERRORS",
    "NET_RECONNECTS",
    "NET_REQUESTS",
    "NET_TIMEOUTS",
    "OPEN_REJECTIONS",
    "REQUEST_LATENCY",
    "RETRIES",
    "TOTAL_REQUESTS",
    "PhaseTelemetry",
    "TelemetryBus",
    "TelemetrySnapshot",
    "add_snapshot_listener",
    "merge_snapshots",
    "notify_snapshot_listeners",
    "remove_snapshot_listener",
]

# Canonical counter names shared by every runner. Keeping them as module
# constants (rather than stringly-typed call sites) is what lets the
# reporters stay in sync with the runners.
HITS = "policy.hits"
MISSES = "policy.misses"
ACCESSES = "policy.accesses"
TOTAL_REQUESTS = "run.requests"
DEGRADED_READS = "resilience.degraded_reads"
RETRIES = "resilience.retries"
OPEN_REJECTIONS = "resilience.open_rejections"
BREAKER_OPENS = "resilience.breaker_opens"
BREAKER_CLOSES = "resilience.breaker_closes"
FAILED_INVALIDATIONS = "resilience.failed_invalidations"
INCORRECT_READS = "verify.incorrect_reads"

# Replicated hot-key tier counters (published only on runs with a
# replication-enabled topology; absent counters read as 0).
REPLICA_REFRESHES = "replication.refreshes"
REPLICA_PROMOTIONS = "replication.promotions"
REPLICA_DEMOTIONS = "replication.demotions"
REPLICATED_READS = "replication.replicated_reads"
TWO_CHOICE_READS = "replication.two_choice_reads"
REPLICA_PRIMARY_FALLBACKS = "replication.primary_fallbacks"
REPLICA_INVALIDATIONS = "replication.replica_invalidations"
FAILED_REPLICA_INVALIDATIONS = "replication.failed_invalidations"

# Write-path coherence counters (published only on runs whose topology
# selects a non-default write mode; absent counters read as 0). The
# "write.dirty_buffer_depth" / "write.peak_dirty_depth" gauges ride
# alongside on write-behind runs.
WRITE_STORAGE_WRITES = "write.storage_writes"
WRITE_THROUGH_WRITES = "write.through_writes"
WRITE_BUFFERED = "write.buffered_writes"
WRITE_COALESCED = "write.coalesced_writes"
WRITE_FLUSHED = "write.flushed_writes"
WRITE_FLUSHES = "write.flushes"
WRITE_BOUND_FLUSHES = "write.bound_flushes"
WRITE_LOST = "write.lost_writes"
WRITE_SYNC_FALLBACKS = "write.sync_fallbacks"
WRITE_TTL_EXPIRATIONS = "write.ttl_expirations"

# Hotness-decay counters (published by runs whose elastic clients carry a
# non-trivial DecayPolicy; absent counters read as 0). "triggers" counts
# explicit Algorithm-3 Case-2 decays, "epoch_decays" the continuous
# per-epoch agings applied by ExponentialDecay.
DECAY_TRIGGERS = "decay.triggers"
DECAY_EPOCH_DECAYS = "decay.epoch_decays"

# Adaptive-arbitration counters/gauges (published only on runs whose
# PolicySpec enables arbitration; absent counters read as 0). The
# per-candidate shadow hit rates ride alongside as
# "adaptive.shadow_hit_rate.<policy>" gauges, and "adaptive.regret" is a
# gauge holding the cumulative estimated hit value forgone vs the best
# shadow (scaled back up through the sampling rate).
ADAPTIVE_SWITCHES = "adaptive.switches"
ADAPTIVE_EPOCHS = "adaptive.epochs"
ADAPTIVE_SHADOW_SAMPLES = "adaptive.shadow_samples"
ADAPTIVE_REGRET = "adaptive.regret"

# Network data plane counters (published only on runs whose topology
# enables the NetworkSpec axis, and by the net load harness; absent
# counters read as 0). bytes_in/bytes_out aggregate both directions of
# both sides; "net.pipelined_batches" counts write-coalescing flushes
# and the NET_BATCH_DEPTH histogram records the depth of each (the
# pipelining-effectiveness distribution, DESIGN.md §15).
NET_CONNECTIONS = "net.connections"
NET_RECONNECTS = "net.reconnects"
NET_REQUESTS = "net.requests"
NET_BATCHES = "net.pipelined_batches"
NET_TIMEOUTS = "net.timeouts"
NET_PROTOCOL_ERRORS = "net.protocol_errors"
NET_FAULT_ERRORS = "net.fault_errors"
NET_BYTES_IN = "net.bytes_in"
NET_BYTES_OUT = "net.bytes_out"

#: histogram of pipelined batch depths (requests per coalesced flush)
NET_BATCH_DEPTH = "net.batch_depth"

#: Canonical histogram name for the per-request latency distribution
#: (timed runners publish it; the Prometheus exporter renders it as a
#: ``*_seconds`` histogram family).
REQUEST_LATENCY = "request.latency"


#: Observers notified with every frozen :class:`TelemetrySnapshot`
#: (read-only: listeners must never mutate runs; the golden tests pin
#: that attaching one is strictly additive). The experiment CLI's
#: ``--metrics-out`` collector plugs in here.
_snapshot_listeners: list[Callable[["TelemetrySnapshot"], None]] = []


def add_snapshot_listener(listener: Callable[["TelemetrySnapshot"], None]) -> None:
    """Subscribe ``listener`` to every snapshot the engine freezes."""
    if listener not in _snapshot_listeners:
        _snapshot_listeners.append(listener)


def remove_snapshot_listener(listener: Callable[["TelemetrySnapshot"], None]) -> None:
    """Unsubscribe a previously-added snapshot listener."""
    try:
        _snapshot_listeners.remove(listener)
    except ValueError:
        pass


def notify_snapshot_listeners(snapshot: "TelemetrySnapshot") -> None:
    """Deliver one already-frozen snapshot to the registered listeners.

    :meth:`TelemetryBus.snapshot` calls this for every snapshot it
    freezes; the parallel fabric calls it directly to *replay* snapshots
    captured inside worker processes (whose listener registrations are
    process-local) into the parent's listeners, in task order — so a
    ``--metrics-out`` collector sees the same snapshot stream whether a
    sweep ran sequentially or fanned out.
    """
    for listener in _snapshot_listeners:
        listener(snapshot)


@dataclass(frozen=True)
class PhaseTelemetry:
    """One fault-schedule phase of a cluster scenario, fully accounted.

    All count fields are *deltas over the phase*, captured from the same
    monotone counters the lifetime snapshot reports; ``epoch_events``
    holds the elastic epochs that closed during the phase.
    """

    index: int
    label: str
    #: shard ids down while the phase ran (set at phase start, after the
    #: phase action fired)
    down: tuple[str, ...]
    reads: int
    hits: int
    degraded_reads: int
    retries: int
    open_rejections: int
    breaker_opens: int
    breaker_closes: int
    incorrect_reads: int
    #: elastic epoch index at phase start (``switch_epoch`` for Figure 8)
    start_epoch: int
    epoch_events: tuple[EpochRecord, ...]

    @property
    def hit_rate(self) -> float:
        """Front-end hit rate over this phase's reads."""
        return self.hits / self.reads if self.reads else 0.0

    @property
    def max_imbalance(self) -> float:
        """Worst per-epoch ``I_c`` closed during the phase.

        A phase in which no epoch closed is *vacuously balanced*: the
        default matches :func:`~repro.cluster.loadmonitor.load_imbalance`'s
        empty-input value of 1.0 (max/min of nothing), so reporters that
        compare phases against ``I_t`` never see an impossible ``I_c`` of
        0 (every real imbalance ratio is >= 1).
        """
        return max((r.snapshot.imbalance for r in self.epoch_events), default=1.0)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable end-of-run view of a scenario's telemetry.

    The generic channels (``counters``/``gauges``) stay available for
    extensions, but the standard measurements all have typed accessors so
    reporters never reach back into live runner objects.
    """

    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    #: lifetime lookups per back-end shard (the load-balance measurement)
    shard_loads: Mapping[str, int]
    #: lookups per shard since the last epoch reset (Table 2's window)
    epoch_shard_loads: Mapping[str, int]
    epoch_events: tuple[EpochRecord, ...]
    phases: tuple[PhaseTelemetry, ...]
    #: simulated wall-clock of the run (0 for untimed drive paths)
    runtime: float = 0.0
    per_client_runtime: tuple[float, ...] = ()
    mean_latency: float = 0.0
    #: percentile scalars are *derived* from the latency pipeline (exact
    #: histogram merge / count-weighted reservoir merge) — never from
    #: concatenated per-client reservoirs
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    fallback_latency: float = 0.0
    #: full latency distributions by name (fixed-bucket, exactly merged
    #: across clients); :data:`REQUEST_LATENCY` is the canonical family
    histograms: Mapping[str, LatencyHistogram] = field(default_factory=dict)

    # ------------------------------------------------------ typed accessors

    def counter(self, name: str) -> int:
        """Read one counter (0 when the runner never touched it)."""
        return self.counters.get(name, 0)

    @property
    def hits(self) -> int:
        return self.counter(HITS)

    @property
    def misses(self) -> int:
        return self.counter(MISSES)

    @property
    def accesses(self) -> int:
        return self.counter(ACCESSES)

    @property
    def hit_rate(self) -> float:
        """Front-end hit rate over all policy accesses."""
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0

    @property
    def total_requests(self) -> int:
        return self.counter(TOTAL_REQUESTS)

    @property
    def degraded_reads(self) -> int:
        return self.counter(DEGRADED_READS)

    @property
    def failed_invalidations(self) -> int:
        return self.counter(FAILED_INVALIDATIONS)

    @property
    def incorrect_reads(self) -> int:
        return self.counter(INCORRECT_READS)

    @property
    def backend_imbalance(self) -> float:
        """Lifetime max/min shard-load ratio."""
        return load_imbalance(dict(self.shard_loads))

    @property
    def throughput(self) -> float:
        """Requests per simulated second (timed runs only)."""
        return self.total_requests / self.runtime if self.runtime else 0.0

    def histogram(self, name: str) -> LatencyHistogram | None:
        """One named latency histogram, or ``None`` if never recorded."""
        return self.histograms.get(name)

    @property
    def request_latency(self) -> LatencyHistogram | None:
        """The canonical per-request latency distribution (timed runs)."""
        return self.histograms.get(REQUEST_LATENCY)


def merge_snapshots(snapshots: "list[TelemetrySnapshot]") -> "TelemetrySnapshot":
    """Merge per-task snapshots into one aggregate view.

    The merge uses the PR 4 primitives and is *order-insensitive* for
    every additive family — counters, shard-load families and fallback
    latency sum; histograms go through the exact fixed-bucket merge —
    so a sweep merged from parallel workers equals the same sweep merged
    sequentially. Order-dependent families keep the input (task) order:
    epoch events and phases concatenate, gauges are last-writer-wins.
    ``runtime`` takes the max (tasks are concurrent, not serial);
    ``mean_latency``/percentile scalars are recomputed from the merged
    :data:`REQUEST_LATENCY` histogram when one exists, else count-weighted
    (mean) or left at 0 (percentiles — raw reservoirs are per-run state
    the snapshot does not carry).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    shard_loads: dict[str, int] = {}
    epoch_shard_loads: dict[str, int] = {}
    epoch_events: list[EpochRecord] = []
    phases: list[PhaseTelemetry] = []
    histograms: dict[str, LatencyHistogram] = {}
    runtime = 0.0
    fallback_latency = 0.0
    per_client_runtime: list[float] = []
    latency_weighted = 0.0
    for snap in snapshots:
        for name, value in snap.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snap.gauges)
        for sid, count in snap.shard_loads.items():
            shard_loads[sid] = shard_loads.get(sid, 0) + count
        for sid, count in snap.epoch_shard_loads.items():
            epoch_shard_loads[sid] = epoch_shard_loads.get(sid, 0) + count
        epoch_events.extend(snap.epoch_events)
        phases.extend(snap.phases)
        for name, histogram in snap.histograms.items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = histogram.copy()
            else:
                existing.merge(histogram)
        runtime = max(runtime, snap.runtime)
        fallback_latency += snap.fallback_latency
        per_client_runtime.extend(snap.per_client_runtime)
        latency_weighted += snap.mean_latency * snap.counter(TOTAL_REQUESTS)
    total_requests = counters.get(TOTAL_REQUESTS, 0)
    merged_latency = histograms.get(REQUEST_LATENCY)
    if merged_latency is not None and merged_latency.count:
        p50 = merged_latency.percentile(50)
        p99 = merged_latency.percentile(99)
    else:
        p50 = p99 = 0.0
    return TelemetrySnapshot(
        counters=counters,
        gauges=gauges,
        shard_loads=shard_loads,
        epoch_shard_loads=epoch_shard_loads,
        epoch_events=tuple(epoch_events),
        phases=tuple(phases),
        runtime=runtime,
        per_client_runtime=tuple(per_client_runtime),
        mean_latency=latency_weighted / total_requests if total_requests else 0.0,
        p50_latency=p50,
        p99_latency=p99,
        fallback_latency=fallback_latency,
        histograms=histograms,
    )


class TelemetryBus:
    """Mutable collection side of the telemetry pipeline.

    Runners ``inc``/``set_gauge``/``emit_epoch``/``push_phase`` while
    driving; :meth:`snapshot` freezes the state for the reporters.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._shard_loads: dict[str, int] = {}
        self._epoch_shard_loads: dict[str, int] = {}
        self._epoch_events: list[EpochRecord] = []
        self._phases: list[PhaseTelemetry] = []
        self._histograms: dict[str, LatencyHistogram] = {}
        self.runtime: float = 0.0
        self.per_client_runtime: tuple[float, ...] = ()
        self.mean_latency: float = 0.0
        self.p50_latency: float = 0.0
        self.p99_latency: float = 0.0
        self.fallback_latency: float = 0.0

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name``."""
        return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name`` (created lazily)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram()
        histogram.record(value)

    def record_histogram(self, name: str, histogram: LatencyHistogram) -> None:
        """Publish a pre-built histogram (merged into any existing one)."""
        existing = self._histograms.get(name)
        if existing is None:
            self._histograms[name] = histogram.copy()
        else:
            existing.merge(histogram)

    def histogram(self, name: str) -> LatencyHistogram | None:
        """The live histogram named ``name`` (``None`` if never touched)."""
        return self._histograms.get(name)

    def record_shard_loads(
        self, total: Mapping[str, int], epoch: Mapping[str, int] | None = None
    ) -> None:
        """Publish the per-shard load families (lifetime + epoch window)."""
        self._shard_loads = dict(total)
        if epoch is not None:
            self._epoch_shard_loads = dict(epoch)

    def emit_epoch(self, record: EpochRecord) -> None:
        """Publish one closed elastic epoch."""
        self._epoch_events.append(record)

    def push_phase(self, phase: PhaseTelemetry) -> None:
        """Publish one completed fault-schedule phase."""
        self._phases.append(phase)

    def epoch_event_count(self) -> int:
        """Epoch events emitted so far (phase-delta bookkeeping)."""
        return len(self._epoch_events)

    def epoch_events_since(self, start: int) -> tuple[EpochRecord, ...]:
        """Epoch events emitted at or after index ``start``."""
        return tuple(self._epoch_events[start:])

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the bus into an immutable result surface.

        Registered snapshot listeners (:func:`add_snapshot_listener`) are
        notified with the frozen snapshot — the hook the Prometheus
        export surface collects through.
        """
        snap = TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            shard_loads=dict(self._shard_loads),
            epoch_shard_loads=dict(self._epoch_shard_loads),
            epoch_events=tuple(self._epoch_events),
            phases=tuple(self._phases),
            runtime=self.runtime,
            per_client_runtime=self.per_client_runtime,
            mean_latency=self.mean_latency,
            p50_latency=self.p50_latency,
            p99_latency=self.p99_latency,
            fallback_latency=self.fallback_latency,
            histograms={
                name: histogram.copy()
                for name, histogram in self._histograms.items()
            },
        )
        notify_snapshot_listeners(snap)
        return snap
