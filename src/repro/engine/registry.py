"""Spec registry: the catalog of runnable experiments.

Mirrors :mod:`repro.policies.registry`: experiment modules call
:func:`register_experiment` at import time, and everything that needs to
enumerate the evaluation — the CLI (``python -m repro.experiments``), the
engine smoke stage of ``scripts/verify.sh``, the benches — resolves
through :func:`get_experiment` / :func:`experiment_ids` instead of a
hand-maintained id list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentError

__all__ = [
    "RegisteredExperiment",
    "experiment_ids",
    "get_experiment",
    "register_experiment",
    "run_experiment",
]


@dataclass(frozen=True)
class RegisteredExperiment:
    """One catalog entry: id, one-line description, and the entry point.

    ``run`` takes the :class:`~repro.engine.spec.Scale` preset (plus any
    experiment-specific keyword overrides) and returns one
    :class:`~repro.experiments.common.ExperimentResult` or a list of
    them. ``order`` fixes the canonical paper ordering used by ``all``
    and ``--list`` regardless of module import order.
    """

    experiment_id: str
    description: str
    run: Callable[..., Any]
    order: int = 1_000


_REGISTRY: dict[str, RegisteredExperiment] = {}


def register_experiment(
    experiment_id: str,
    description: str,
    run: Callable[..., Any],
    *,
    order: int = 1_000,
) -> None:
    """Add one experiment to the catalog (import-time, id must be unique)."""
    if experiment_id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id: {experiment_id!r}")
    _REGISTRY[experiment_id] = RegisteredExperiment(
        experiment_id, description, run, order
    )


def experiment_ids() -> tuple[str, ...]:
    """All registered ids in canonical (paper) order."""
    entries = sorted(_REGISTRY.values(), key=lambda e: (e.order, e.experiment_id))
    return tuple(entry.experiment_id for entry in entries)


def get_experiment(experiment_id: str) -> RegisteredExperiment:
    """Look up one catalog entry by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"registered: {', '.join(experiment_ids())}"
        ) from None


def run_experiment(
    experiment_id: str,
    *args: Any,
    workers: int | None = None,
    **kwargs: Any,
) -> Any:
    """Resolve and invoke one experiment's entry point.

    ``workers`` scopes the parallel fabric for the call: ``None`` keeps
    the current configuration, any other value runs the experiment under
    :func:`repro.engine.parallel.parallel_workers`. Outputs are identical
    at every worker count (the fabric's invariance contract).
    """
    entry = get_experiment(experiment_id)
    if workers is None:
        return entry.run(*args, **kwargs)
    from repro.engine import parallel  # local import: registry stays light

    with parallel.parallel_workers(workers):
        return entry.run(*args, **kwargs)
