"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is the engine's unit of execution: *what* to run
(workload + policy + topology + fault schedule + scale + seeds) with no
*how*. Runners (:mod:`repro.engine.runners`) interpret specs; experiment
modules build them; the spec registry (:mod:`repro.engine.registry`)
enumerates the experiments that produce them.

``Scale`` lives here as the single source of truth for the
``smoke``/``default``/``paper`` sizing presets (plus the ``tiny`` test
preset and ``scaled`` overrides) — experiment modules, tests and benches
all derive their sizings from these presets instead of re-declaring
numbers.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, TYPE_CHECKING

from repro.errors import ExperimentError
from repro.policies.base import CachePolicy
from repro.policies.registry import make_policy
from repro.workloads.base import KeyGenerator
from repro.workloads.mixer import OperationMixer
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cluster.cluster import CacheCluster
    from repro.cluster.faults import FaultInjector
    from repro.cluster.client import FrontEndClient
    from repro.cluster.storage import PersistentStore
    from repro.obs.trace import Tracer
    from repro.sim.network import LatencyModel
    from repro.sim.server import ServiceModel

__all__ = [
    "ArbitrationSpec",
    "NetworkSpec",
    "Phase",
    "PolicySpec",
    "ReplicationSpec",
    "Scale",
    "ScenarioSpec",
    "StreamHooks",
    "TopologySpec",
    "WorkloadSpec",
    "WriteSpec",
    "make_generator",
    "spawn_safe",
]


def spawn_safe(obj: Any) -> bool:
    """Whether ``obj`` can cross a process boundary (round-trips pickle).

    The parallel fabric (:mod:`repro.engine.parallel`) ships specs to
    spawned workers, so everything a spec closes over must be picklable:
    factories must be module-level callables or instances of module-level
    classes — locally-defined closures and lambdas are not. Specs that
    fail this check are still valid; the fabric just runs them in-process
    on the sequential path.
    """
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs.

    ``paper`` replicates the paper's workload sizes (slow in pure Python);
    ``default`` shrinks the key space and access count ~10-20× while
    preserving every qualitative shape; ``smoke`` is for CI/benchmarks;
    ``tiny`` is the unit-test sizing. Derived sizings use :meth:`scaled`
    rather than re-declaring the numbers.
    """

    name: str
    key_space: int
    accesses: int
    num_clients: int = 20
    num_servers: int = 8
    seed: int = 42

    @classmethod
    def smoke(cls) -> "Scale":
        """Seconds-scale: CI and pytest-benchmark runs."""
        return cls("smoke", key_space=20_000, accesses=60_000, num_clients=4)

    @classmethod
    def default(cls) -> "Scale":
        """Minutes-scale: the EXPERIMENTS.md numbers."""
        return cls("default", key_space=100_000, accesses=1_000_000)

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's full size (1M keys, 10M accesses)."""
        return cls("paper", key_space=1_000_000, accesses=10_000_000)

    @classmethod
    def tiny(cls) -> "Scale":
        """Sub-second unit-test sizing."""
        return cls(
            "tiny", key_space=5_000, accesses=20_000, num_clients=2, num_servers=4
        )

    @classmethod
    def named(cls, name: str) -> "Scale":
        """Resolve a preset by name."""
        presets = {"smoke": cls.smoke, "default": cls.default, "paper": cls.paper}
        if name not in presets:
            raise ExperimentError(
                f"unknown scale {name!r}; choose from {sorted(presets)}"
            )
        return presets[name]()

    def scaled(self, **overrides: Any) -> "Scale":
        """A copy of this preset with explicit field overrides."""
        return dataclasses.replace(self, **overrides)


def make_generator(dist: str, key_space: int, seed: int) -> KeyGenerator:
    """Build a generator from a distribution id (``uniform``/``zipf-<s>``)."""
    if dist == "uniform":
        return UniformGenerator(key_space, seed=seed)
    if dist.startswith("zipf-"):
        theta = float(dist.split("-", 1)[1])
        return ZipfianGenerator(key_space, theta=theta, seed=seed)
    raise ExperimentError(f"unknown distribution id: {dist!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """What keys/operations the scenario issues.

    ``dist`` names a distribution (``uniform``/``zipf-<s>``) built with
    the engine's per-client seeding; ``generator_factory`` is the escape
    hatch for bespoke generators (hotspot, gaussian, rotating hot sets),
    called with the client index — make it a module-level callable (not a
    closure) to keep the spec eligible for the parallel fabric (see
    :func:`spawn_safe`). ``read_fraction`` of ``None`` keeps the
    consumer's default (pure reads on the cluster path, the
    :class:`~repro.workloads.mixer.OperationMixer` default on the sim
    path); ``mixer_factory`` overrides operation mixing entirely — on
    the sim path and the sequential cluster drive, which routes every
    operation through ``FrontEndClient.execute`` (the YCSB A-F hatch).
    """

    dist: str | None = None
    read_fraction: float | None = None
    generator_factory: Callable[[int], KeyGenerator] | None = None
    mixer_factory: Callable[[int], OperationMixer] | None = None

    def build_generator(self, key_space: int, seed: int, client_index: int) -> KeyGenerator:
        """One client's key stream (independently seeded per client)."""
        if self.generator_factory is not None:
            return self.generator_factory(client_index)
        if self.dist is None:
            raise ExperimentError("workload needs a dist or a generator_factory")
        return make_generator(self.dist, key_space, seed + client_index)


@dataclass(frozen=True)
class PolicySpec:
    """Which front-end cache policy each client runs.

    ``name``/``cache_lines``/``tracker_lines`` route through
    :func:`repro.policies.registry.make_policy` (one policy instance per
    client); ``factory`` is the escape hatch for pre-configured policies,
    called with the client index. Like generator factories, a ``factory``
    must be a module-level callable (a picklable callable class works too)
    for the spec to stay :func:`spawn_safe`.

    ``arbitration`` (default ``None`` — off, byte-identical to a pinned
    policy) wraps each client's policy in an
    :class:`~repro.policies.adaptive.AdaptiveArbiter` at the same
    ``cache_lines``/``tracker_lines``, with ``name`` as the initial live
    policy when it is one of the candidates (DESIGN.md §14).
    """

    name: str = "none"
    cache_lines: int = 0
    tracker_lines: int | None = None
    factory: Callable[[int], CachePolicy] | None = None
    arbitration: "ArbitrationSpec | None" = None

    def build(self, client_index: int) -> CachePolicy:
        """Construct this spec's policy for one client."""
        if self.factory is not None:
            return self.factory(client_index)
        if self.name == "none" or self.cache_lines == 0:
            return make_policy("none", 0)
        if self.arbitration is not None and self.arbitration.enabled:
            return self.arbitration.build(
                self.name, self.cache_lines, self.tracker_lines
            )
        return make_policy(
            self.name, self.cache_lines, tracker_capacity=self.tracker_lines
        )


@dataclass(frozen=True)
class ArbitrationSpec:
    """The adaptive-arbitration axis on :class:`PolicySpec` (default: off).

    With ``PolicySpec.arbitration = None`` (the default everywhere) the
    engine builds exactly the pinned policy it always has — every
    registered experiment stays byte-identical, pinned by the golden
    tests. When attached and ``enabled``, each client's policy becomes an
    :class:`~repro.policies.adaptive.AdaptiveArbiter` wrapping the spec's
    sizing; the fields mirror the arbiter's constructor (see
    ``repro/policies/adaptive.py`` for semantics).
    """

    enabled: bool = True
    candidates: tuple[str, ...] = ("lru", "lfu", "arc", "lru2", "cot")
    epoch_length: int = 2_048
    sample_shift: int = 6
    hit_value: float = 1.0
    line_cost: float = 0.05
    switch_margin: float = 0.02
    patience: int = 1
    min_samples: int = 8
    #: starting live policy; ``None`` uses the PolicySpec's ``name`` when
    #: it is a candidate, else the first candidate.
    initial: str | None = None

    def build(
        self, name: str, cache_lines: int, tracker_lines: int | None
    ) -> CachePolicy:
        """Construct one client's arbiter around the spec's sizing."""
        from repro.policies.adaptive import AdaptiveArbiter

        initial = self.initial
        if initial is None:
            initial = name if name in self.candidates else self.candidates[0]
        return AdaptiveArbiter(
            cache_lines,
            candidates=self.candidates,
            tracker_capacity=tracker_lines,
            epoch_length=self.epoch_length,
            sample_shift=self.sample_shift,
            hit_value=self.hit_value,
            line_cost=self.line_cost,
            switch_margin=self.switch_margin,
            patience=self.patience,
            min_samples=self.min_samples,
            initial=initial,
        )


@dataclass(frozen=True)
class ReplicationSpec:
    """The replicated hot-key tier's declarative axis (default: off).

    With ``enabled=False`` (the default everywhere) the runner builds no
    router and every run is byte-identical to the pre-tier engine. When
    enabled, the runner shares one
    :class:`~repro.cluster.replication.HotKeyRouter` across the run's
    front ends and refreshes the promoted key set every
    ``refresh_every`` total accesses — a deterministic promotion-epoch
    cadence, so two runs of the same spec agree on every epoch boundary.
    The remaining fields mirror
    :class:`~repro.cluster.replication.ReplicationConfig`.
    """

    enabled: bool = False
    degree: int = 3
    choices: int = 2
    top_n: int = 64
    max_keys: int = 64
    min_share: float = 0.05
    demote_share: float | None = None
    #: total accesses (across front ends) between promotion epochs
    refresh_every: int = 2_048

    def build_config(self) -> "Any":
        """The cluster-layer config this spec describes."""
        from repro.cluster.replication import ReplicationConfig

        return ReplicationConfig(
            degree=self.degree,
            choices=self.choices,
            top_n=self.top_n,
            max_keys=self.max_keys,
            min_share=self.min_share,
            demote_share=self.demote_share,
        )


@dataclass(frozen=True)
class WriteSpec:
    """The write-path coherence axis (default: cache-aside, inline).

    ``mode`` names one of ``repro.cluster.writepolicy.WRITE_MODES``.
    The default, ``"cache-aside"``, builds no strategy object at all —
    the client runs its inline write body and every existing experiment
    stays byte-identical. Any other mode makes the runner share one
    :class:`~repro.cluster.writepolicy.WritePolicy` across the run's
    front ends and publish ``write.*`` telemetry.
    """

    mode: str = "cache-aside"
    #: write-behind: max acknowledged-but-unflushed writes per shard
    dirty_limit: int = 64
    #: write-behind: total accesses (across front ends) between flushes
    flush_every: int = 2_048
    #: ttl: logical-clock ticks (write operations) a cached copy lives
    ttl: int = 1_024

    @property
    def enabled(self) -> bool:
        """Whether a strategy object must be built (non-default mode)."""
        return self.mode != "cache-aside"

    def build_policy(self) -> "Any":
        """The shared write strategy this spec describes."""
        from repro.cluster.writepolicy import make_write_policy

        return make_write_policy(
            self.mode, dirty_limit=self.dirty_limit, ttl=self.ttl
        )


@dataclass(frozen=True)
class NetworkSpec:
    """The socket data plane axis (default: off, byte-identical).

    With ``enabled=False`` (the default everywhere) the runner builds
    the classic in-process plane — every registered experiment stays
    byte-identical, pinned by the golden tests. When enabled, the
    runner wraps the run's cluster in a
    :class:`~repro.net.plane.NetworkPlane`: each shard is served over a
    localhost TCP socket by an asyncio memcached-protocol server and
    front ends reach it through the pipelined transport
    (DESIGN.md §15). Decisions are identical by construction — the
    equivalence gate (:func:`repro.net.harness.decision_equivalence`)
    enforces it — but the run pays (and ``net.*`` telemetry measures)
    real serialization and syscall cost.
    """

    enabled: bool = False
    host: str = "127.0.0.1"
    #: persistent connections per shard in the front-end pool
    pool_size: int = 1
    #: bounded per-connection inflight queue (server backpressure)
    inflight_limit: int = 256
    #: per-request client timeout (seconds) → ``ShardTimeoutError``
    timeout: float = 5.0

    def build_plane(self, cluster: "CacheCluster") -> "Any":
        """The started socket plane this spec describes."""
        from repro.net.plane import NetworkPlane

        return NetworkPlane(
            cluster,
            host=self.host,
            pool_size=self.pool_size,
            inflight_limit=self.inflight_limit,
            timeout=self.timeout,
        ).start()


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape: shards, front ends, capacities, storage, faults.

    ``None`` fields inherit from the scenario's :class:`Scale`.
    """

    num_servers: int | None = None
    num_clients: int | None = None
    capacity_bytes: int = 1 << 40
    value_size: int = 1
    storage: "PersistentStore | None" = None
    faults: "FaultInjector | None" = None
    #: replicated hot-key tier axis; the default is off (classic protocol)
    replication: ReplicationSpec = field(default_factory=ReplicationSpec)
    #: write-path coherence axis; the default is inline cache-aside
    write: WriteSpec = field(default_factory=WriteSpec)
    #: socket data plane axis; the default is the in-process simulator
    network: NetworkSpec = field(default_factory=NetworkSpec)


@dataclass(frozen=True)
class Phase:
    """One segment of a phased cluster run (fault/workload schedule).

    ``action`` fires against the live run context at phase start (kill a
    shard, flip a fault, …). ``dist`` of ``None`` continues the current
    key stream; a distribution id swaps in a fresh stream (the Figure 8
    workload switch). ``accesses`` of ``None`` uses the scenario's
    per-client access count.
    """

    label: str
    accesses: int | None = None
    action: Callable[["RunContext"], None] | None = None
    dist: str | None = None


@dataclass(frozen=True)
class StreamHooks:
    """Per-access instrumentation for policy-stream scenarios.

    When present, the runner switches from the fused chunked drive to an
    exactly-equivalent per-access loop and calls ``before(i)`` ahead of
    each key draw and ``after(i, key, hit)`` behind each access — the
    hook points the rotation/drift/decay extensions need.
    """

    before: Callable[[int], None] | None = None
    after: Callable[[int, Hashable, bool], None] | None = None


@dataclass
class RunContext:
    """Live objects a phase action may manipulate (set up by the runner)."""

    spec: "ScenarioSpec"
    cluster: "CacheCluster | None" = None
    faults: "FaultInjector | None" = None
    front_ends: list["FrontEndClient"] = field(default_factory=list)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described run: the engine's declarative unit.

    Runner-specific knobs are optional fields with inert defaults; each
    runner documents which it consumes. ``seed`` of ``None`` inherits
    ``scale.seed`` — sweeps that re-seed per repetition (Figure 5's
    ``base_seed + 10_000 × rep``) override it explicitly.
    """

    scale: Scale
    workload: WorkloadSpec
    policy: PolicySpec = PolicySpec()
    topology: TopologySpec = TopologySpec()
    seed: int | None = None
    #: total accesses (policy-stream / cluster paths); None -> scale.accesses
    accesses: int | None = None
    #: per-client request quota (sim path); None -> derived by the caller
    requests_per_client: int | None = None
    #: drive clients round-robin per access instead of sequentially
    #: (Table 2's interleaved measurement; required for elastic runs)
    interleave: bool = False
    #: fraction of the run before the cluster's epoch counters reset
    #: (Table 2 excludes cold-start misses from its measurement window)
    warmup_fraction: float = 0.0
    #: front-end factory for non-standard clients (elastic front ends);
    #: called with (cluster, client_index)
    client_factory: Callable[["CacheCluster", int], "FrontEndClient"] | None = None
    #: fault/workload schedule for phased cluster runs
    phases: tuple[Phase, ...] | None = None
    #: per-access instrumentation (policy-stream path)
    hooks: StreamHooks | None = None
    #: authoritative-value oracle; when set, every cluster read is checked
    #: and mismatches are counted as ``INCORRECT_READS``
    verify_value: Callable[[Hashable], Any] | None = None
    #: sim-path timing models
    service_model: "ServiceModel | None" = None
    latency: "LatencyModel | None" = None
    #: sampling request tracer shared by every client of the run; the
    #: runners attach it to front ends / sim clients (factory-built
    #: clients included). ``None`` — and any tracer at sample rate 0 —
    #: is observationally inert: outputs stay byte-identical.
    tracer: "Tracer | None" = None

    # ------------------------------------------------------------ resolution

    @property
    def base_seed(self) -> int:
        """The run's root seed (per-client streams offset from it)."""
        return self.scale.seed if self.seed is None else self.seed

    @property
    def total_accesses(self) -> int:
        """Accesses across all clients (policy-stream / cluster paths)."""
        return self.scale.accesses if self.accesses is None else self.accesses

    @property
    def num_servers(self) -> int:
        return (
            self.scale.num_servers
            if self.topology.num_servers is None
            else self.topology.num_servers
        )

    @property
    def num_clients(self) -> int:
        return (
            self.scale.num_clients
            if self.topology.num_clients is None
            else self.topology.num_clients
        )
