"""The network plane: a cluster facade whose shards live behind sockets.

:class:`NetworkPlane` wraps an existing
:class:`~repro.cluster.cluster.CacheCluster` and serves every backend
shard over a localhost TCP socket (one
:class:`~repro.net.server.ShardServer` each, on an asyncio event loop
running in a dedicated thread). It then re-exposes the cluster's entire
*client-facing* surface — ``ring``, ``storage``, ``server_ids``,
``server()``/``server_for()``, the revival/removal listener lists — but
``server()`` resolves to a :class:`ShardProxy` whose
``get``/``get_many``/``set``/``delete`` cross the wire through the
pipelined transport (:mod:`repro.net.client`).

Because the facade duck-types ``CacheCluster`` exactly where front ends
touch it, an **unchanged** :class:`~repro.cluster.client.FrontEndClient`
(elastic, coherent, replicated — all of them) runs against the plane and
makes byte-identical cache decisions: policy admissions, ring routing,
retries, breaker trips and storage fallbacks all execute the same code;
only the shard hop is real I/O. That is the two-plane equivalence
argument (DESIGN.md §15), and :func:`repro.net.harness.decision_equivalence`
checks it end to end.

Topology churn maps onto real sockets: shards added after start are
served lazily on first route; removed shards tear their server down via
the cluster's ``removal_listeners``; :meth:`drop_connections` hard-drops
a shard's live connections (the network face of a kill) so clients
observe ``ConnectionError`` → :class:`~repro.errors.ShardDownError` and
reconnect lazily after the revival.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Hashable, Iterable

from repro.cluster.cluster import CacheCluster
from repro.errors import ClusterError, ShardDownError
from repro.net.client import NetClientStats, ShardEndpoint
from repro.net.server import ShardServer, ShardServerStats

__all__ = ["LoopThread", "NetworkPlane", "ShardProxy"]


class LoopThread:
    """An asyncio event loop running in a daemon thread, callable from sync code."""

    def __init__(self, name: str = "repro-net-loop") -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro, timeout: float | None = None) -> Any:
        """Run ``coro`` on the loop and block for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def stop(self) -> None:
        if not self.loop.is_closed():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=5.0)
            self.loop.close()


class ShardProxy:
    """Synchronous shard-object stand-in backed by a wire endpoint.

    Exposes exactly the surface front ends use on a
    :class:`~repro.cluster.backend.BackendCacheServer` — ``server_id``,
    ``get``, ``get_many``, ``set``, ``delete`` — with every call one
    blocking round-trip through the plane's loop thread. Exceptions
    (injected faults, timeouts, dead connections) surface as the same
    :class:`~repro.errors.ShardFailure` types the in-process plane
    raises, so the retry/breaker layer upstack is oblivious.
    """

    def __init__(self, endpoint: ShardEndpoint, loop: LoopThread) -> None:
        self._endpoint = endpoint
        self._loop = loop

    @property
    def server_id(self) -> str:
        return self._endpoint.server_id

    def get(self, key: Hashable) -> Any:
        return self._loop.call(self._endpoint.get(key))

    def get_many(self, keys: Iterable[Hashable]) -> dict[Hashable, Any]:
        return self._loop.call(self._endpoint.get_many(list(keys)))

    def set(self, key: Hashable, value: Any, size: int | None = None) -> None:
        return self._loop.call(self._endpoint.set(key, value, size))

    def delete(self, key: Hashable) -> bool:
        return self._loop.call(self._endpoint.delete(key))

    def touch(self, key: Hashable, exptime: int = 0) -> bool:
        return self._loop.call(self._endpoint.touch(key, exptime))


class NetworkPlane:
    """Serve a :class:`CacheCluster`'s shards over localhost sockets.

    Construct, :meth:`start`, hand to front ends in place of the
    cluster, :meth:`close` when done (also a context manager).
    """

    def __init__(
        self,
        cluster: CacheCluster,
        host: str = "127.0.0.1",
        pool_size: int = 1,
        inflight_limit: int = 256,
        timeout: float = 5.0,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.pool_size = pool_size
        self.inflight_limit = inflight_limit
        self.timeout = timeout
        self.client_stats = NetClientStats()
        self._loop: LoopThread | None = None
        self._servers: dict[str, ShardServer] = {}
        self._endpoints: dict[str, ShardEndpoint] = {}
        self._proxies: dict[str, ShardProxy] = {}
        self._started = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "NetworkPlane":
        if self._started:
            return self
        self._loop = LoopThread()
        for server_id in self.cluster.server_ids:
            self._serve_shard(server_id)
        self.cluster.removal_listeners.append(self._on_server_removed)
        self._started = True
        return self

    def close(self) -> None:
        if not self._started:
            return
        self._started = False
        try:
            self.cluster.removal_listeners.remove(self._on_server_removed)
        except ValueError:
            pass
        loop = self._loop
        assert loop is not None
        for endpoint in self._endpoints.values():
            try:
                loop.call(endpoint.close(), timeout=5.0)
            except Exception:
                pass
        for server in self._servers.values():
            try:
                loop.call(server.stop(), timeout=5.0)
            except Exception:
                pass
        self._endpoints.clear()
        self._proxies.clear()
        self._servers.clear()
        loop.stop()
        self._loop = None

    def __enter__(self) -> "NetworkPlane":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _serve_shard(self, server_id: str) -> None:
        assert self._loop is not None
        backend = self.cluster.server(server_id)
        server = ShardServer(
            backend,
            host=self.host,
            inflight_limit=self.inflight_limit,
        )
        self._loop.call(server.start())
        endpoint = ShardEndpoint(
            server_id,
            server.host,
            server.port,
            pool_size=self.pool_size,
            timeout=self.timeout,
            stats=self.client_stats,
        )
        self._servers[server_id] = server
        self._endpoints[server_id] = endpoint
        self._proxies[server_id] = ShardProxy(endpoint, self._loop)

    def _on_server_removed(self, server_id: str) -> None:
        server = self._servers.pop(server_id, None)
        endpoint = self._endpoints.pop(server_id, None)
        self._proxies.pop(server_id, None)
        if self._loop is None:
            return
        if endpoint is not None:
            try:
                self._loop.call(endpoint.close(), timeout=5.0)
            except Exception:
                pass
        if server is not None:
            try:
                self._loop.call(server.stop(), timeout=5.0)
            except Exception:
                pass

    # ------------------------------------------------------- fault surface

    def drop_connections(self, server_id: str) -> None:
        """Hard-drop a shard's live sockets (network face of a kill)."""
        server = self._servers.get(server_id)
        if server is None or self._loop is None:
            return
        self._loop.loop.call_soon_threadsafe(server.abort_connections)

    # -------------------------------------------------- cluster duck-typing

    @property
    def ring(self):
        return self.cluster.ring

    @property
    def storage(self):
        return self.cluster.storage

    @property
    def faults(self):
        return self.cluster.faults

    @property
    def value_size(self) -> int:
        return self.cluster.value_size

    @property
    def server_ids(self) -> tuple[str, ...]:
        return self.cluster.server_ids

    @property
    def removal_listeners(self) -> list[Callable[[str], None]]:
        return self.cluster.removal_listeners

    @property
    def cold_revival_listeners(self) -> list[Callable[[str], None]]:
        return self.cluster.cold_revival_listeners

    def server(self, server_id: str) -> ShardProxy:
        proxy = self._proxies.get(server_id)
        if proxy is None:
            if not self._started:
                raise ShardDownError("network plane is not started")
            # A shard added after start is served lazily on first route.
            if server_id not in self.cluster.server_ids:
                raise ClusterError(f"unknown server: {server_id}")
            self._serve_shard(server_id)
            proxy = self._proxies[server_id]
        return proxy

    def server_for(self, key: Hashable) -> ShardProxy:
        return self.server(self.cluster.ring.server_for(key))

    def replicas_for(self, key: Hashable, r: int) -> tuple[str, ...]:
        return self.cluster.replicas_for(key, r)

    def loads(self) -> dict[str, int]:
        return self.cluster.loads()

    def epoch_loads(self) -> dict[str, int]:
        return self.cluster.epoch_loads()

    def imbalance(self) -> float:
        return self.cluster.imbalance()

    def total_lookups(self) -> int:
        return self.cluster.total_lookups()

    def reset_epoch(self) -> None:
        self.cluster.reset_epoch()

    # ------------------------------------------------------------ telemetry

    def server_stats(self) -> dict[str, ShardServerStats]:
        return {sid: srv.stats for sid, srv in self._servers.items()}

    def telemetry(self) -> dict[str, Any]:
        """Aggregated wire counters, shaped for ``net.*`` publishing."""
        servers = list(self._servers.values())
        depth_counts: dict[int, int] = {}
        for source in [self.client_stats.batch_depths] + [
            s.stats.batch_depths for s in servers
        ]:
            for depth, count in source.items():
                depth_counts[depth] = depth_counts.get(depth, 0) + count
        return {
            "connections": self.client_stats.connections,
            "reconnects": self.client_stats.reconnects,
            "requests": self.client_stats.requests,
            "batches": self.client_stats.batches,
            "timeouts": self.client_stats.timeouts,
            "errors": self.client_stats.errors,
            "bytes_in": self.client_stats.bytes_in
            + sum(s.stats.bytes_in for s in servers),
            "bytes_out": self.client_stats.bytes_out
            + sum(s.stats.bytes_out for s in servers),
            "server_requests": sum(s.stats.requests for s in servers),
            "protocol_errors": sum(s.stats.protocol_errors for s in servers),
            "fault_errors": sum(s.stats.fault_errors for s in servers),
            "batch_depths": depth_counts,
        }
