"""Closed-loop load harness and two-plane equivalence gate.

Two jobs live here:

* :func:`run_network_load` — drive the socket data plane at scale with
  **real processes**: one spawned server process per shard, one spawned
  client process per front end (the PR-5 fabric's spawn-context /
  :func:`~repro.workloads.seeding.spawn_seed` discipline), each client
  running a closed loop of ``concurrency`` asyncio workers over the
  pipelined transport. Per-request wall time is measured with
  ``perf_counter_ns`` and recorded into
  :class:`~repro.obs.hist.LatencyHistogram`\\ s that merge exactly
  across processes — the first numbers in this repo that include real
  serialization and syscall cost.
* :func:`decision_equivalence` — replay one seeded request stream (a
  get/set/delete mix) through the in-process plane and through the
  network plane and compare every observable cache decision: per-front-
  end hits/misses/accesses and cached-key sets, per-shard
  gets/hits/sets/deletes/evictions (admissions and invalidations), and
  storage reads/writes. The planes share all decision code
  (DESIGN.md §15), so the traces must be *identical* — this is the gate
  ``verify.sh`` and ``run_perf_gate.py --network`` run.

:func:`measure_pipelining` isolates the pipelining win for the perf
gate: same request count against one server process, depth 1 (strictly
sequential round-trips) vs depth N (N concurrent workers on one
connection), reported as a throughput ratio.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.cluster.backend import BackendCacheServer
from repro.cluster.hashring import ConsistentHashRing
from repro.obs.hist import LatencyHistogram
from repro.policies.base import MISSING
from repro.workloads.base import format_key
from repro.workloads.seeding import spawn_seed

__all__ = [
    "NetLoadReport",
    "decision_equivalence",
    "decision_trace",
    "measure_pipelining",
    "run_network_load",
]

_HOST = "127.0.0.1"


# --------------------------------------------------------------------------
# worker process mains (module-level: spawn requires picklable targets)


def _server_main(server_id, host, capacity_bytes, ready_q, stop_evt, result_q):
    """One shard server process: serve until told to stop, then drain."""
    from repro.net.server import ShardServer

    backend = BackendCacheServer(
        server_id, capacity_bytes=capacity_bytes, default_value_size=1
    )

    async def main() -> None:
        server = ShardServer(backend, host=host)
        await server.start()
        ready_q.put((server_id, server.port))
        while not stop_evt.is_set():
            await asyncio.sleep(0.02)
        await server.stop()
        stats = server.stats
        result_q.put(
            (
                "server",
                server_id,
                {
                    "requests": stats.requests,
                    "batches": stats.batches,
                    "bytes_in": stats.bytes_in,
                    "bytes_out": stats.bytes_out,
                    "connections": stats.connections,
                    "batch_depths": dict(stats.batch_depths),
                    "backend_gets": backend.stats.gets,
                    "backend_sets": backend.stats.sets,
                },
            )
        )

    asyncio.run(main())


def _client_main(
    index,
    addresses,
    requests,
    concurrency,
    key_space,
    theta,
    value_bytes,
    seed,
    result_q,
):
    """One closed-loop client process: ``concurrency`` pipelined workers."""
    from repro.net.client import NetClientStats, ShardEndpoint
    from repro.workloads.zipfian import ZipfianGenerator

    generator = ZipfianGenerator(
        key_space, theta=theta, seed=spawn_seed(seed, index)
    )
    keys = [format_key(generator.next_key()) for _ in range(requests)]
    ring = ConsistentHashRing(sorted(addresses), virtual_nodes=128)
    stats = NetClientStats()
    histogram = LatencyHistogram()
    payload = b"x" * value_bytes

    async def main() -> float:
        endpoints = {
            sid: ShardEndpoint(sid, host, port, pool_size=1, stats=stats)
            for sid, (host, port) in addresses.items()
        }
        counter = itertools.count()

        async def worker() -> None:
            while True:
                i = next(counter)
                if i >= requests:
                    return
                key = keys[i]
                endpoint = endpoints[ring.server_for(key)]
                start = time.perf_counter_ns()
                value = await endpoint.get(key)
                if value is MISSING:
                    await endpoint.set(key, payload)
                histogram.record((time.perf_counter_ns() - start) * 1e-9)

        begin = time.perf_counter()
        await asyncio.gather(*(worker() for _ in range(concurrency)))
        elapsed = time.perf_counter() - begin
        for endpoint in endpoints.values():
            await endpoint.close()
        return elapsed

    elapsed = asyncio.run(main())
    result_q.put(
        (
            "client",
            index,
            {
                "requests": requests,
                "elapsed": elapsed,
                "histogram": histogram,
                "connections": stats.connections,
                "reconnects": stats.reconnects,
                "timeouts": stats.timeouts,
                "batches": stats.batches,
                "bytes_in": stats.bytes_in,
                "bytes_out": stats.bytes_out,
                "batch_depths": dict(stats.batch_depths),
            },
        )
    )


# --------------------------------------------------------------------------
# closed-loop load


@dataclass
class NetLoadReport:
    """Aggregate result of one closed-loop network load run."""

    requests: int
    elapsed: float
    num_servers: int
    num_clients: int
    concurrency: int
    histogram: LatencyHistogram
    client_stats: dict[str, Any] = field(default_factory=dict)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Requests per wall-clock second (slowest client bounds it)."""
        return self.requests / self.elapsed if self.elapsed else 0.0

    @property
    def processes(self) -> int:
        return self.num_servers + self.num_clients

    @property
    def throughput_per_core(self) -> float:
        """Throughput normalized by the cores the run could occupy."""
        cores = min(self.processes, os.cpu_count() or 1)
        return self.throughput / max(1, cores)


def run_network_load(
    num_servers: int = 2,
    num_clients: int = 2,
    requests_per_client: int = 10_000,
    concurrency: int = 32,
    key_space: int = 5_000,
    theta: float = 0.9,
    value_bytes: int = 64,
    capacity_bytes: int = 1 << 26,
    seed: int = 42,
    timeout: float = 120.0,
) -> NetLoadReport:
    """Spawn server + client processes, run the closed loop, merge results."""
    ctx = multiprocessing.get_context("spawn")
    ready_q: Any = ctx.Queue()
    result_q: Any = ctx.Queue()
    stop_evt = ctx.Event()
    server_ids = [f"cache-{i}" for i in range(num_servers)]
    servers = [
        ctx.Process(
            target=_server_main,
            args=(sid, _HOST, capacity_bytes, ready_q, stop_evt, result_q),
            daemon=True,
        )
        for sid in server_ids
    ]
    for proc in servers:
        proc.start()
    try:
        addresses = {}
        for _ in server_ids:
            sid, port = ready_q.get(timeout=30.0)
            addresses[sid] = (_HOST, port)
        clients = [
            ctx.Process(
                target=_client_main,
                args=(
                    i,
                    addresses,
                    requests_per_client,
                    concurrency,
                    key_space,
                    theta,
                    value_bytes,
                    seed,
                    result_q,
                ),
                daemon=True,
            )
            for i in range(num_clients)
        ]
        for proc in clients:
            proc.start()
        client_results = []
        deadline = time.monotonic() + timeout
        for _ in clients:
            remaining = max(0.1, deadline - time.monotonic())
            client_results.append(result_q.get(timeout=remaining))
        for proc in clients:
            proc.join(timeout=10.0)
    finally:
        stop_evt.set()
    server_results = []
    for _ in servers:
        try:
            server_results.append(result_q.get(timeout=10.0))
        except Exception:
            break
    for proc in servers:
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - stuck-socket backstop
            proc.terminate()

    histogram = LatencyHistogram()
    total_requests = 0
    slowest = 0.0
    client_stats: dict[str, Any] = {
        "connections": 0,
        "reconnects": 0,
        "timeouts": 0,
        "batches": 0,
        "bytes_in": 0,
        "bytes_out": 0,
        "batch_depths": {},
    }
    for _, _, payload in client_results:
        total_requests += payload["requests"]
        slowest = max(slowest, payload["elapsed"])
        histogram.merge(payload["histogram"])
        for field_name in (
            "connections",
            "reconnects",
            "timeouts",
            "batches",
            "bytes_in",
            "bytes_out",
        ):
            client_stats[field_name] += payload[field_name]
        for depth, count in payload["batch_depths"].items():
            client_stats["batch_depths"][depth] = (
                client_stats["batch_depths"].get(depth, 0) + count
            )
    server_stats = {sid: payload for _, sid, payload in server_results}
    return NetLoadReport(
        requests=total_requests,
        elapsed=slowest,
        num_servers=num_servers,
        num_clients=num_clients,
        concurrency=concurrency,
        histogram=histogram,
        client_stats=client_stats,
        server_stats=server_stats,
    )


# --------------------------------------------------------------------------
# pipelining speedup


def measure_pipelining(
    requests: int = 4_000,
    depth: int = 32,
    key_space: int = 512,
    seed: int = 13,
) -> dict[str, float]:
    """Throughput at pipeline depth ``depth`` vs depth 1, one server.

    One spawned server process; the client runs in this process on one
    persistent connection (pool size 1) so the *only* difference between
    the two measurements is the number of outstanding requests.
    Returns ``{"pipelined": req/s, "unpipelined": req/s, "speedup": x}``.
    """
    from repro.net.client import NetClientStats, ShardEndpoint

    ctx = multiprocessing.get_context("spawn")
    ready_q: Any = ctx.Queue()
    result_q: Any = ctx.Queue()
    stop_evt = ctx.Event()
    proc = ctx.Process(
        target=_server_main,
        args=("cache-0", _HOST, 1 << 26, ready_q, stop_evt, result_q),
        daemon=True,
    )
    proc.start()
    try:
        _, port = ready_q.get(timeout=30.0)
        keys = [format_key(i % key_space) for i in range(requests)]

        async def drive(concurrency: int) -> float:
            endpoint = ShardEndpoint(
                "cache-0", _HOST, port, pool_size=1, stats=NetClientStats()
            )
            # Prime the connection + working set so both measurements
            # run against a warm server.
            for key in sorted(set(keys)):
                await endpoint.set(key, b"v")
            counter = itertools.count()

            async def worker() -> None:
                while True:
                    i = next(counter)
                    if i >= requests:
                        return
                    await endpoint.get(keys[i])

            begin = time.perf_counter()
            await asyncio.gather(*(worker() for _ in range(concurrency)))
            elapsed = time.perf_counter() - begin
            await endpoint.close()
            return elapsed

        sequential = requests / asyncio.run(drive(1))
        pipelined = requests / asyncio.run(drive(depth))
    finally:
        stop_evt.set()
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - stuck-socket backstop
            proc.terminate()
    return {
        "unpipelined": sequential,
        "pipelined": pipelined,
        "depth": float(depth),
        "speedup": pipelined / sequential if sequential else 0.0,
    }


# --------------------------------------------------------------------------
# decision equivalence


def _trace_value(key: Hashable) -> Any:
    """Module-level storage value factory (deterministic, picklable)."""
    return ("value-of", key)


def decision_trace(
    network: bool,
    accesses: int = 10_000,
    num_servers: int = 2,
    num_front_ends: int = 1,
    key_space: int = 2_000,
    theta: float = 0.9,
    cache_lines: int = 128,
    write_fraction: float = 0.08,
    delete_fraction: float = 0.02,
    seed: int = 7,
) -> dict[str, Any]:
    """Every observable cache decision of one seeded mixed request stream.

    The stream (key order, operation mix) is a pure function of the
    arguments; ``network`` only selects which plane serves it. The
    returned dict captures admissions (cached-key sets), hits/misses,
    per-shard lookups/writes/deletes/evictions (invalidations included)
    and storage traffic — everything the two planes must agree on.
    """
    import random

    from repro.cluster.client import FrontEndClient
    from repro.cluster.cluster import CacheCluster
    from repro.cluster.storage import PersistentStore
    from repro.net.plane import NetworkPlane
    from repro.policies.registry import make_policy
    from repro.workloads.zipfian import ZipfianGenerator

    storage = PersistentStore(value_factory=_trace_value)
    cluster = CacheCluster(
        num_servers=num_servers,
        capacity_bytes=max(64, cache_lines) * 4,
        virtual_nodes=64,
        value_size=1,
        storage=storage,
    )
    plane = NetworkPlane(cluster).start() if network else None
    target = plane if plane is not None else cluster
    try:
        front_ends = [
            FrontEndClient(
                target,
                make_policy("cot", cache_lines),
                client_id=f"front-{i}",
            )
            for i in range(num_front_ends)
        ]
        generators = [
            ZipfianGenerator(key_space, theta=theta, seed=spawn_seed(seed, i))
            for i in range(num_front_ends)
        ]
        op_rng = random.Random(seed * 1_000_003)
        per_client = accesses // num_front_ends
        for step in range(per_client):
            for fe, generator in zip(front_ends, generators):
                key = format_key(generator.next_key())
                draw = op_rng.random()
                if draw < write_fraction:
                    fe.set(key, ("w", key, step))
                elif draw < write_fraction + delete_fraction:
                    fe.delete(key)
                else:
                    fe.get(key)
        trace: dict[str, Any] = {
            "front_ends": [
                {
                    "accesses": fe.policy.stats.accesses,
                    "hits": fe.policy.stats.hits,
                    "misses": fe.policy.stats.misses,
                    "cached_keys": sorted(map(str, fe.policy.cached_keys())),
                }
                for fe in front_ends
            ],
            "shards": {
                sid: {
                    "gets": s.stats.gets,
                    "get_hits": s.stats.get_hits,
                    "sets": s.stats.sets,
                    "deletes": s.stats.deletes,
                    "evictions": s.stats.evictions,
                    "keys": sorted(map(str, s.keys())),
                }
                for sid, s in (
                    (sid, cluster.server(sid)) for sid in cluster.server_ids
                )
            },
            "storage": {
                "reads": storage.stats.reads,
                "writes": storage.stats.writes,
                "deletes": storage.stats.deletes,
            },
        }
        return trace
    finally:
        if plane is not None:
            plane.close()


def decision_equivalence(**kwargs: Any) -> tuple[bool, dict[str, Any], dict[str, Any]]:
    """Run :func:`decision_trace` on both planes; ``True`` iff identical."""
    in_process = decision_trace(network=False, **kwargs)
    networked = decision_trace(network=True, **kwargs)
    return in_process == networked, in_process, networked
