"""Pipelined asyncio front-end transport for the shard servers.

Three layers (DESIGN.md §15):

* :class:`Connection` — one persistent socket with **request
  pipelining**: requests are written immediately (a shared lazy-drain
  task coalesces concurrent writes into one syscall) and a FIFO of
  futures matches responses back to requests in order. Head-of-line
  semantics match memcached: responses come back in request order.
* :class:`ShardEndpoint` — a **connection pool** per shard; each
  request picks the pooled connection with the fewest inflight
  requests, reconnecting lazily (and counting reconnects) after a drop.
  Timeouts and socket errors map onto the *existing* failure taxonomy —
  :class:`~repro.errors.ShardTimeoutError` /
  :class:`~repro.errors.ShardDownError` — so the unchanged
  ``RetryPolicy``/``CircuitBreaker`` layer retries and trips exactly as
  it does on the in-process plane; ``SERVER_ERROR`` frames reconstruct
  the injected exception type via :func:`repro.net.proto.decode_failure`.
* :class:`NetClientStats` — wire counters (bytes, timeouts, reconnects,
  pipelined batch depths) that surface as ``net.*`` telemetry.

A ``get_many`` is **one wire round-trip per shard**: the caller groups
keys by ring owner and sends one multi-key ``get`` per group.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.errors import (
    ProtocolError,
    ShardDownError,
    ShardTimeoutError,
)
from repro.net import proto
from repro.net.proto import (
    DeleteCommand,
    GetCommand,
    Reply,
    ResponseDecoder,
    SetCommand,
    TouchCommand,
)
from repro.policies.base import MISSING

__all__ = ["Connection", "NetClientStats", "ShardEndpoint"]

_READ_SIZE = 1 << 16


@dataclass
class NetClientStats:
    """Client-side wire counters (feeds ``net.*`` telemetry)."""

    connections: int = 0
    reconnects: int = 0
    requests: int = 0
    batches: int = 0
    timeouts: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: write-coalescing depth distribution: {depth: flushes at that depth}
    batch_depths: dict[int, int] = field(default_factory=dict)

    def note_batch(self, depth: int) -> None:
        self.batches += 1
        self.batch_depths[depth] = self.batch_depths.get(depth, 0) + 1


class Connection:
    """One pipelined persistent connection to a shard server."""

    def __init__(self, reader, writer, stats: NetClientStats) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats
        self.decoder = ResponseDecoder()
        self.pending: "asyncio.Queue[asyncio.Future] | None" = None
        self._fifo: list[asyncio.Future] = []
        self._written_since_drain = 0
        self._drain_task: asyncio.Task | None = None
        self._recv_task = asyncio.ensure_future(self._receive_loop())
        self.dead = False

    @classmethod
    async def open(cls, host: str, port: int, stats: NetClientStats) -> "Connection":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise ShardDownError(f"connect to {host}:{port} failed: {exc}") from exc
        stats.connections += 1
        return cls(reader, writer, stats)

    @property
    def inflight(self) -> int:
        return len(self._fifo)

    def request(self, payload: bytes) -> "asyncio.Future[Reply]":
        """Pipeline one encoded request; the future resolves to its reply.

        The write lands in the stream buffer immediately; one lazy drain
        task per burst flushes everything written since the last flush
        in a single syscall (the client-side half of pipelining).
        """
        if self.dead:
            raise ShardDownError("connection is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._fifo.append(future)
        self.stats.requests += 1
        self.stats.bytes_out += len(payload)
        self.writer.write(payload)
        self._written_since_drain += 1
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self._drain())
        return future

    async def _drain(self) -> None:
        depth, self._written_since_drain = self._written_since_drain, 0
        self.stats.note_batch(depth)
        try:
            await self.writer.drain()
        except (ConnectionError, OSError) as exc:
            self._fail_all(ShardDownError(f"connection lost: {exc}"))

    async def _receive_loop(self) -> None:
        try:
            while True:
                data = await self.reader.read(_READ_SIZE)
                if not data:
                    self._fail_all(ShardDownError("server closed the connection"))
                    return
                self.stats.bytes_in += len(data)
                for reply in self.decoder.feed(data):
                    if not self._fifo:
                        # Unsolicited frame: the stream is unsyncable.
                        self._fail_all(ProtocolError("unsolicited response"))
                        return
                    future = self._fifo.pop(0)
                    if not future.done():
                        future.set_result(reply)
                if self.decoder.broken:
                    self._fail_all(ProtocolError("response stream unparsable"))
                    return
        except (ConnectionError, OSError) as exc:
            self._fail_all(ShardDownError(f"connection lost: {exc}"))
        except asyncio.CancelledError:
            self._fail_all(ShardDownError("connection closed"))
            raise

    def _fail_all(self, exc: Exception) -> None:
        self.dead = True
        fifo, self._fifo = self._fifo, []
        for future in fifo:
            if not future.done():
                future.set_exception(exc)
        self.writer.close()

    async def close(self) -> None:
        self.dead = True
        self._recv_task.cancel()
        try:
            await self._recv_task
        except (asyncio.CancelledError, Exception):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ShardEndpoint:
    """Connection pool + request API for one shard server.

    The async surface mirrors the
    :class:`~repro.cluster.backend.BackendCacheServer` client surface
    (``get``/``get_many``/``set``/``delete``), returning/raising exactly
    what the in-process plane would — including ``MISSING`` on a miss
    and :class:`~repro.errors.ShardFailure` subclasses on faults — so a
    proxy over this endpoint is a drop-in shard object.
    """

    def __init__(
        self,
        server_id: str,
        host: str,
        port: int,
        pool_size: int = 1,
        timeout: float = 5.0,
        stats: NetClientStats | None = None,
    ) -> None:
        self.server_id = server_id
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        self.timeout = timeout
        self.stats = stats if stats is not None else NetClientStats()
        self._pool: list[Connection | None] = [None] * self.pool_size
        self._connect_lock: asyncio.Lock | None = None

    # ------------------------------------------------------------ transport

    async def _connection(self) -> Connection:
        """The pooled live connection with the fewest inflight requests.

        Connection establishment is serialized behind a lock so a burst
        of concurrent requests against an empty (or just-dropped) pool
        shares the slot's one socket instead of racing opens — the whole
        point of pipelining is many requests per connection.
        """
        best = self._pick()
        if best is not None:
            return best
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            best = self._pick()  # someone else may have connected meanwhile
            if best is not None:
                return best
            for slot, conn in enumerate(self._pool):
                if conn is None or conn.dead:
                    if conn is not None and conn.dead:
                        self.stats.reconnects += 1
                    opened = await Connection.open(self.host, self.port, self.stats)
                    self._pool[slot] = opened
                    return opened
        raise ShardDownError("connection pool exhausted")  # pragma: no cover

    def _pick(self) -> Connection | None:
        """The live pooled connection with the fewest inflight requests.

        ``None`` when a slot is empty/dead — the pool prefers opening
        (under the lock) up to ``pool_size`` sockets before stacking.
        """
        best: Connection | None = None
        for conn in self._pool:
            if conn is None or conn.dead:
                return None
            if best is None or conn.inflight < best.inflight:
                best = conn
        return best

    async def request(self, command: Any) -> Reply:
        """One pipelined round-trip, with timeout/error → failure mapping."""
        try:
            conn = await self._connection()
            reply = await asyncio.wait_for(
                conn.request(command.encode()), timeout=self.timeout
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise ShardTimeoutError(
                f"{self.server_id} did not answer within {self.timeout}s"
            ) from None
        if reply.kind == "SERVER_ERROR":
            self.stats.errors += 1
            raise proto.decode_failure(reply)
        if reply.is_error:
            self.stats.errors += 1
            raise ProtocolError(f"{self.server_id}: {reply.kind} {reply.message}")
        return reply

    # -------------------------------------------------------- shard surface

    async def get(self, key: Hashable) -> Any:
        reply = await self.request(GetCommand((str(key),)))
        if not reply.values:
            return MISSING
        value = reply.values[0]
        return proto.load_value(value.flags, value.data)

    async def get_many(self, keys: Iterable[Hashable]) -> dict[Hashable, Any]:
        keys = list(keys)
        if not keys:
            return {}
        reply = await self.request(GetCommand(tuple(str(k) for k in keys)))
        by_wire_key = {
            v.key: proto.load_value(v.flags, v.data) for v in reply.values
        }
        return {k: by_wire_key[str(k)] for k in keys if str(k) in by_wire_key}

    async def set(self, key: Hashable, value: Any, size: int | None = None) -> None:
        flags, payload = proto.dump_value(value)
        await self.request(SetCommand(str(key), flags, 0, payload))

    async def delete(self, key: Hashable) -> bool:
        reply = await self.request(DeleteCommand(str(key)))
        return reply.kind == "DELETED"

    async def touch(self, key: Hashable, exptime: int = 0) -> bool:
        reply = await self.request(TouchCommand(str(key), exptime))
        return reply.kind == "TOUCHED"

    async def close(self) -> None:
        pool, self._pool = self._pool, [None] * self.pool_size
        for conn in pool:
            if conn is not None:
                await conn.close()
