"""The socket data plane: memcached-protocol shard servers + client.

Two planes serve the same decision logic (DESIGN.md §15):

* the **in-process plane** — the deterministic simulator the experiments
  run on (:mod:`repro.cluster`), where shard calls are object calls;
* the **network plane** (this package) — real asyncio socket servers
  speaking a memcached-style text protocol (:mod:`repro.net.server`), a
  pipelined front-end transport (:mod:`repro.net.client`), and a
  closed-loop multi-process load harness (:mod:`repro.net.harness`).

The :class:`~repro.net.plane.NetworkPlane` facade makes a
:class:`~repro.cluster.cluster.CacheCluster` reachable over localhost
sockets while preserving the client-facing surface, so the unchanged
:class:`~repro.cluster.client.FrontEndClient` makes byte-identical cache
decisions on either plane — the equivalence gate
(:func:`repro.net.harness.decision_equivalence`) asserts exactly that.
"""

from repro.net.proto import (
    MAX_KEY_BYTES,
    RequestDecoder,
    ResponseDecoder,
    dump_value,
    load_value,
)

__all__ = [
    "MAX_KEY_BYTES",
    "RequestDecoder",
    "ResponseDecoder",
    "dump_value",
    "load_value",
]
