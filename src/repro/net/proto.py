"""Memcached-style text protocol codec (DESIGN.md §15).

Grammar (ASCII lines terminated ``\\r\\n``; ``<data>`` is a raw byte
block of the declared length followed by ``\\r\\n``)::

    request  = "get" 1*(" " key) CRLF
             / "gets" 1*(" " key) CRLF
             / "set" " " key " " flags " " exptime " " nbytes [" noreply"] CRLF <data> CRLF
             / "delete" " " key [" noreply"] CRLF
             / "touch" " " key " " exptime [" noreply"] CRLF
             / "version" CRLF
             / "quit" CRLF

    response = *( "VALUE" " " key " " flags " " nbytes [" " cas] CRLF <data> CRLF ) "END" CRLF
             / "STORED" / "DELETED" / "NOT_FOUND" / "TOUCHED" CRLF
             / "VERSION" " " token CRLF
             / "ERROR" CRLF
             / "CLIENT_ERROR" " " text CRLF
             / "SERVER_ERROR" " " code " " text CRLF

Both decoders are incremental push parsers: feed them arbitrary byte
chunks (half a line, a line and a half, one huge blob) and they emit
exactly the frames whose bytes have fully arrived, keeping the rest
buffered. Malformed input never raises — it surfaces as
:class:`BadCommand` / an ``ERROR``-kind :class:`Reply` frame, and the
decoder distinguishes *recoverable* damage (an unknown command on an
otherwise well-framed line: skip the line, keep parsing) from *fatal*
damage (framing lost — an unparsable ``set`` header or an unterminated
line past :data:`MAX_LINE_BYTES`: the connection must be closed because
nothing after the damage can be trusted to be a frame boundary).

Fault transport: injected shard failures
(:class:`~repro.errors.ShardFailure` subclasses) cross the wire as
``SERVER_ERROR <code> <message>`` frames and are reconstructed
client-side by :func:`decode_failure`, so the retry/breaker layer sees
the same exception types on both planes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ProtocolError,
    ShardDownError,
    ShardFailure,
    ShardFlakyError,
    ShardTimeoutError,
)

__all__ = [
    "BadCommand",
    "DeleteCommand",
    "GetCommand",
    "MAX_KEY_BYTES",
    "MAX_LINE_BYTES",
    "MAX_VALUE_BYTES",
    "QuitCommand",
    "Reply",
    "RequestDecoder",
    "ResponseDecoder",
    "SetCommand",
    "TouchCommand",
    "Value",
    "VersionCommand",
    "decode_failure",
    "dump_value",
    "encode_failure",
    "load_value",
    "valid_key",
]

CRLF = b"\r\n"

#: memcached's key limit: at most 250 bytes, no whitespace or control chars.
MAX_KEY_BYTES = 250
#: a command/response line longer than this means framing is lost.
MAX_LINE_BYTES = 16_384
#: default cap on one value's payload (memcached's classic 1 MB).
MAX_VALUE_BYTES = 1 << 20

#: value-payload encodings carried in the ``flags`` field.
FLAG_RAW = 0
FLAG_PICKLE = 1

#: wire codes for the injected-failure taxonomy (SERVER_ERROR frames).
_FAILURE_TO_CODE: dict[type, str] = {
    ShardDownError: "down",
    ShardTimeoutError: "timeout",
    ShardFlakyError: "flaky",
}
_CODE_TO_FAILURE: dict[str, type] = {v: k for k, v in _FAILURE_TO_CODE.items()}


# --------------------------------------------------------------------------
# value payloads


def dump_value(value: object) -> tuple[int, bytes]:
    """Serialize one cached value for the wire → ``(flags, payload)``.

    ``bytes`` pass through untouched (``FLAG_RAW``); everything else is
    pickled (``FLAG_PICKLE``) — the planes exchange arbitrary Python
    values (tuples, ints) and equivalence needs exact round-trips.
    """
    if isinstance(value, bytes):
        return FLAG_RAW, value
    import pickle

    return FLAG_PICKLE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def load_value(flags: int, payload: bytes) -> object:
    """Inverse of :func:`dump_value`."""
    if flags == FLAG_RAW:
        return payload
    if flags == FLAG_PICKLE:
        import pickle

        return pickle.loads(payload)
    raise ProtocolError(f"unknown value flags: {flags}")


def valid_key(key: str) -> bool:
    """Whether ``key`` is legal on the wire (token, ≤250 bytes, printable)."""
    if not isinstance(key, str) or not 0 < len(key) <= MAX_KEY_BYTES:
        return False
    return all(33 <= ord(ch) <= 126 for ch in key)


def _require_key(key: str) -> bytes:
    if not valid_key(key):
        raise ProtocolError(f"key not wire-safe: {key!r}")
    return key.encode("ascii")


# --------------------------------------------------------------------------
# frames


@dataclass(frozen=True)
class GetCommand:
    """``get``/``gets`` — one wire round-trip for any number of keys."""

    keys: tuple[str, ...]
    cas: bool = False

    def encode(self) -> bytes:
        verb = b"gets " if self.cas else b"get "
        return verb + b" ".join(_require_key(k) for k in self.keys) + CRLF


@dataclass(frozen=True)
class SetCommand:
    key: str
    flags: int
    exptime: int
    data: bytes
    noreply: bool = False

    def encode(self) -> bytes:
        head = b"set %s %d %d %d%s\r\n" % (
            _require_key(self.key),
            self.flags,
            self.exptime,
            len(self.data),
            b" noreply" if self.noreply else b"",
        )
        return head + self.data + CRLF


@dataclass(frozen=True)
class DeleteCommand:
    key: str
    noreply: bool = False

    def encode(self) -> bytes:
        tail = b" noreply\r\n" if self.noreply else CRLF
        return b"delete " + _require_key(self.key) + tail


@dataclass(frozen=True)
class TouchCommand:
    key: str
    exptime: int = 0
    noreply: bool = False

    def encode(self) -> bytes:
        return b"touch %s %d%s\r\n" % (
            _require_key(self.key),
            self.exptime,
            b" noreply" if self.noreply else b"",
        )


@dataclass(frozen=True)
class VersionCommand:
    def encode(self) -> bytes:
        return b"version\r\n"


@dataclass(frozen=True)
class QuitCommand:
    def encode(self) -> bytes:
        return b"quit\r\n"


@dataclass(frozen=True)
class BadCommand:
    """Decoder-synthesized frame for input that was not a command.

    ``fatal`` means framing is lost (the server must close the
    connection after replying); non-fatal damage skips one line.
    ``kind`` picks the error reply family: ``"ERROR"`` for an unknown
    verb, ``"CLIENT_ERROR"`` for a recognized verb used wrongly.
    """

    message: str
    kind: str = "CLIENT_ERROR"
    fatal: bool = False


Command = (
    GetCommand
    | SetCommand
    | DeleteCommand
    | TouchCommand
    | VersionCommand
    | QuitCommand
    | BadCommand
)


@dataclass(frozen=True)
class Value:
    """One ``VALUE`` frame of a get response."""

    key: str
    flags: int
    data: bytes
    cas: int | None = None

    def encode(self) -> bytes:
        if self.cas is None:
            head = b"VALUE %s %d %d\r\n" % (
                self.key.encode("ascii"),
                self.flags,
                len(self.data),
            )
        else:
            head = b"VALUE %s %d %d %d\r\n" % (
                self.key.encode("ascii"),
                self.flags,
                len(self.data),
                self.cas,
            )
        return head + self.data + CRLF


@dataclass(frozen=True)
class Reply:
    """Any non-VALUE response frame.

    ``kind`` is the leading token (``STORED``, ``DELETED``,
    ``NOT_FOUND``, ``TOUCHED``, ``VERSION``, ``END``, ``ERROR``,
    ``CLIENT_ERROR``, ``SERVER_ERROR``); ``values`` is populated on
    ``END`` replies with the VALUE frames that preceded the terminator.
    """

    kind: str
    message: str = ""
    values: tuple[Value, ...] = field(default=())

    @property
    def is_error(self) -> bool:
        return self.kind in ("ERROR", "CLIENT_ERROR", "SERVER_ERROR")

    def encode(self) -> bytes:
        body = b"".join(v.encode() for v in self.values)
        if self.message:
            return body + self.kind.encode("ascii") + b" " + self.message.encode("ascii") + CRLF
        return body + self.kind.encode("ascii") + CRLF


def encode_failure(exc: ShardFailure) -> Reply:
    """An injected shard failure as its ``SERVER_ERROR`` wire frame."""
    code = _FAILURE_TO_CODE.get(type(exc), "down")
    message = str(exc).replace("\r", " ").replace("\n", " ")
    return Reply("SERVER_ERROR", f"{code} {message}".strip())


def decode_failure(reply: Reply) -> ShardFailure:
    """Reconstruct the shard-side exception a ``SERVER_ERROR`` carries."""
    code, _, message = reply.message.partition(" ")
    cls = _CODE_TO_FAILURE.get(code, ShardDownError)
    return cls(message or code)


# --------------------------------------------------------------------------
# incremental decoders


class _LineBuffer:
    """Shared incremental framing: CRLF lines + counted data blocks.

    ``readline`` returns ``None`` while incomplete, raises nothing, and
    flags overlong lines through ``overflowed`` so the owner can go
    fatal instead of buffering unboundedly.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._scan = 0  # no byte before this offset contains CRLF
        self.overflowed = False

    def feed(self, data: bytes) -> None:
        self._buf += data

    def readline(self) -> bytes | None:
        idx = self._buf.find(b"\n", self._scan)
        if idx < 0:
            if len(self._buf) > MAX_LINE_BYTES:
                self.overflowed = True
            self._scan = len(self._buf)
            return None
        line = bytes(self._buf[:idx])
        del self._buf[: idx + 1]
        self._scan = 0
        if line.endswith(b"\r"):
            line = line[:-1]
        if len(line) > MAX_LINE_BYTES:
            self.overflowed = True
        return line

    def readblock(self, nbytes: int) -> bytes | None:
        """A counted data block + its trailing CRLF (``None`` if short)."""
        if len(self._buf) < nbytes + 2:
            return None
        block = bytes(self._buf[:nbytes])
        trailer = bytes(self._buf[nbytes : nbytes + 2])
        del self._buf[: nbytes + 2]
        self._scan = 0
        if trailer != CRLF:
            raise ProtocolError("data block not CRLF-terminated")
        return block

    def pending(self) -> int:
        return len(self._buf)


class RequestDecoder:
    """Server-side incremental parser: bytes in, :data:`Command`\\ s out."""

    def __init__(self, max_value_bytes: int = MAX_VALUE_BYTES) -> None:
        self._lines = _LineBuffer()
        self.max_value_bytes = max_value_bytes
        self._pending_set: SetCommand | None = None
        self._pending_nbytes = 0
        self._discard_reason: BadCommand | None = None
        self._broken = False

    @property
    def broken(self) -> bool:
        """Whether a fatal frame was emitted (owner must close)."""
        return self._broken

    def feed(self, data: bytes) -> list[Command]:
        if self._broken:
            return []
        self._lines.feed(data)
        out: list[Command] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                break
            out.append(frame)
            if isinstance(frame, BadCommand) and frame.fatal:
                self._broken = True
                break
        return out

    def _next_frame(self) -> Command | None:
        if self._pending_set is not None or self._discard_reason is not None:
            return self._finish_block()
        line = self._lines.readline()
        if line is None:
            if self._lines.overflowed:
                return BadCommand(
                    "line exceeds maximum length", fatal=True
                )
            return None
        if not line:
            return BadCommand("empty command line")
        return self._parse_line(line)

    def _finish_block(self) -> Command | None:
        nbytes = self._pending_nbytes
        try:
            block = self._lines.readblock(nbytes)
        except ProtocolError:
            self._pending_set = None
            self._discard_reason = None
            return BadCommand("bad data chunk", fatal=True)
        if block is None:
            return None
        if self._discard_reason is not None:
            frame, self._discard_reason = self._discard_reason, None
            return frame
        cmd = self._pending_set
        assert cmd is not None
        self._pending_set = None
        return SetCommand(cmd.key, cmd.flags, cmd.exptime, block, cmd.noreply)

    def _parse_line(self, line: bytes) -> Command:
        try:
            text = line.decode("ascii")
        except UnicodeDecodeError:
            return BadCommand("command line is not ascii")
        parts = text.split()
        verb = parts[0] if parts else ""
        if verb in ("get", "gets"):
            keys = parts[1:]
            if not keys:
                return BadCommand("get needs at least one key")
            if not all(valid_key(k) for k in keys):
                return BadCommand("bad key")
            return GetCommand(tuple(keys), cas=(verb == "gets"))
        if verb == "set":
            return self._parse_set(parts)
        if verb == "delete":
            noreply = parts[-1] == "noreply"
            keys = parts[1 : len(parts) - (1 if noreply else 0)]
            if len(keys) != 1 or not valid_key(keys[0]):
                return BadCommand("delete needs exactly one key")
            return DeleteCommand(keys[0], noreply=noreply)
        if verb == "touch":
            noreply = parts[-1] == "noreply"
            args = parts[1 : len(parts) - (1 if noreply else 0)]
            if len(args) != 2 or not valid_key(args[0]):
                return BadCommand("touch needs a key and an exptime")
            try:
                exptime = int(args[1])
            except ValueError:
                return BadCommand("bad exptime")
            return TouchCommand(args[0], exptime, noreply=noreply)
        if verb == "version" and len(parts) == 1:
            return VersionCommand()
        if verb == "quit" and len(parts) == 1:
            return QuitCommand()
        return BadCommand(f"unknown command: {verb!r}", kind="ERROR")

    def _parse_set(self, parts: list[str]) -> Command:
        noreply = parts[-1] == "noreply"
        args = parts[1 : len(parts) - (1 if noreply else 0)]
        if len(args) != 4:
            # The byte count is unreadable, so the data block that
            # follows cannot be skipped: framing is lost.
            return BadCommand("bad set header", fatal=True)
        key, flags_s, exptime_s, nbytes_s = args
        try:
            flags, exptime, nbytes = int(flags_s), int(exptime_s), int(nbytes_s)
        except ValueError:
            return BadCommand("bad set header", fatal=True)
        if nbytes < 0:
            return BadCommand("bad set header", fatal=True)
        self._pending_nbytes = nbytes
        if nbytes > self.max_value_bytes:
            # Recoverable: the length is known, so the oversized block
            # is consumed and discarded, then the error frame surfaces.
            self._discard_reason = BadCommand("object too large for cache")
            return self._finish_block()
        if not valid_key(key):
            self._discard_reason = BadCommand("bad key")
            return self._finish_block()
        self._pending_set = SetCommand(key, flags, exptime, b"", noreply)
        return self._finish_block()


class ResponseDecoder:
    """Client-side incremental parser: bytes in, :class:`Reply`\\ s out.

    VALUE frames accumulate until their ``END`` terminator and come out
    as one ``Reply("END", values=...)`` — one reply per pipelined
    request, in request order. An error line received while VALUE
    frames are pending terminates that response as the error (the
    server aborts a multi-get by replying with a single error frame).
    """

    _SIMPLE = frozenset(
        ["STORED", "NOT_STORED", "DELETED", "NOT_FOUND", "TOUCHED", "END", "ERROR", "OK"]
    )

    def __init__(self, max_value_bytes: int = MAX_VALUE_BYTES) -> None:
        self._lines = _LineBuffer()
        self.max_value_bytes = max_value_bytes
        self._values: list[Value] = []
        self._pending_value: Value | None = None
        self._pending_nbytes = 0
        self._broken = False

    @property
    def broken(self) -> bool:
        return self._broken

    def feed(self, data: bytes) -> list[Reply]:
        if self._broken:
            return []
        self._lines.feed(data)
        out: list[Reply] = []
        while True:
            try:
                reply = self._next_reply()
            except ProtocolError as exc:
                self._broken = True
                out.append(Reply("CLIENT_ERROR", str(exc)))
                break
            if reply is None:
                break
            out.append(reply)
        return out

    def _next_reply(self) -> Reply | None:
        if self._pending_value is not None:
            head = self._pending_value
            block = self._lines.readblock(self._pending_nbytes)
            if block is None:
                return None
            self._pending_value = None
            self._values.append(Value(head.key, head.flags, block, head.cas))
            return self._next_reply()
        line = self._lines.readline()
        if line is None:
            if self._lines.overflowed:
                raise ProtocolError("response line exceeds maximum length")
            return None
        text = line.decode("ascii", errors="replace")
        parts = text.split()
        kind = parts[0] if parts else ""
        if kind == "VALUE":
            return self._start_value(parts)
        if kind == "END":
            values, self._values = tuple(self._values), []
            return Reply("END", values=values)
        if kind in self._SIMPLE:
            if self._values:
                raise ProtocolError(f"{kind} interleaved with VALUE frames")
            return Reply(kind)
        if kind in ("CLIENT_ERROR", "SERVER_ERROR", "VERSION"):
            # An error aborts any multi-get in flight; partial values drop.
            self._values = []
            return Reply(kind, text[len(kind) + 1 :])
        raise ProtocolError(f"unparsable response line: {text!r}")

    def _start_value(self, parts: list[str]) -> Reply | None:
        if len(parts) not in (4, 5):
            raise ProtocolError("bad VALUE header")
        try:
            flags, nbytes = int(parts[2]), int(parts[3])
            cas = int(parts[4]) if len(parts) == 5 else None
        except ValueError:
            raise ProtocolError("bad VALUE header") from None
        if nbytes < 0 or nbytes > self.max_value_bytes:
            raise ProtocolError("VALUE payload exceeds maximum size")
        self._pending_nbytes = nbytes
        self._pending_value = Value(parts[1], flags, b"", cas)
        return self._next_reply()
