"""Asyncio shard server speaking the memcached-style text protocol.

One :class:`ShardServer` wraps one
:class:`~repro.cluster.backend.BackendCacheServer` and serves it over a
TCP socket. The connection design is queue-based load leveling
(DESIGN.md §15):

* a **reader task** per connection parses requests incrementally
  (:class:`~repro.net.proto.RequestDecoder`) and enqueues them on a
  **bounded inflight queue** — when the shard falls behind, the queue
  fills, the reader stops draining the socket, and TCP backpressure
  propagates to the client instead of unbounded buffering;
* a **worker task** per connection drains the queue in arrival order,
  executes commands against the backend, and **coalesces every response
  that is ready into one socket write** — the server-side half of
  pipelining (the batch-depth distribution is recorded per drain);
* injected shard failures (:class:`~repro.errors.ShardFailure`) become
  ``SERVER_ERROR <code> …`` frames, so fault schedules exercise the
  wire path end to end and the client reconstructs the exact exception
  type for its retry/breaker layer.

Shutdown is a **graceful drain**: :meth:`ShardServer.stop` first closes
the listener (no new connections), then waits for every inflight queue
to empty and every response to flush before tearing connections down —
acknowledged work is never dropped on the floor.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.cluster.backend import BackendCacheServer
from repro.errors import ShardFailure
from repro.policies.base import MISSING as _MISSING
from repro.net import proto
from repro.net.proto import (
    BadCommand,
    DeleteCommand,
    GetCommand,
    QuitCommand,
    Reply,
    RequestDecoder,
    SetCommand,
    TouchCommand,
    Value,
    VersionCommand,
)

__all__ = ["ShardServer", "ShardServerStats", "SERVER_VERSION"]

SERVER_VERSION = "repro-net/1"

#: socket read size; large enough that a deep pipeline arrives in one read.
_READ_SIZE = 1 << 16


@dataclass
class ShardServerStats:
    """Wire-level counters for one shard server (feeds ``net.*`` telemetry)."""

    connections: int = 0
    active_connections: int = 0
    requests: int = 0
    batches: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    protocol_errors: int = 0
    fault_errors: int = 0
    #: response-coalescing depth distribution: {depth: drains at that depth}
    batch_depths: dict[int, int] = field(default_factory=dict)


class _Connection:
    """One client connection: reader task + bounded queue + worker task."""

    def __init__(self, server: "ShardServer", reader, writer) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=server.inflight_limit)
        self.decoder = RequestDecoder(max_value_bytes=server.max_value_bytes)
        self.closing = False

    async def run(self) -> None:
        stats = self.server.stats
        stats.connections += 1
        stats.active_connections += 1
        worker = asyncio.ensure_future(self._worker())
        try:
            await self._read_loop()
        finally:
            # EOF (or a fatal protocol error): let queued work drain,
            # then stop the worker and flush/close the socket.
            await self.queue.join()
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass
            stats.active_connections -= 1
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self) -> None:
        stats = self.server.stats
        while not self.closing:
            try:
                data = await self.reader.read(_READ_SIZE)
            except (ConnectionError, OSError):
                break
            if not data:
                break
            stats.bytes_in += len(data)
            for command in self.decoder.feed(data):
                # Bounded inflight queue: block (and stop reading the
                # socket) when the shard is behind — queue-based load
                # leveling instead of unbounded buffering.
                await self.queue.put(command)
                if isinstance(command, QuitCommand) or (
                    isinstance(command, BadCommand) and command.fatal
                ):
                    self.closing = True
                    break

    async def _worker(self) -> None:
        stats = self.server.stats
        while True:
            command = await self.queue.get()
            batch = [command]
            # Coalesce everything already queued into one write+drain:
            # the server-side half of pipelining.
            while not self.queue.empty():
                batch.append(self.queue.get_nowait())
            out = bytearray()
            quit_after = False
            for cmd in batch:
                reply = self._execute(cmd)
                if reply is not None:
                    out += reply
                if isinstance(cmd, QuitCommand) or (
                    isinstance(cmd, BadCommand) and cmd.fatal
                ):
                    quit_after = True
            stats.requests += len(batch)
            stats.batches += 1
            depth = len(batch)
            stats.batch_depths[depth] = stats.batch_depths.get(depth, 0) + 1
            if out:
                stats.bytes_out += len(out)
                try:
                    self.writer.write(bytes(out))
                    await self.writer.drain()
                except (ConnectionError, OSError):
                    quit_after = True
            for _ in batch:
                self.queue.task_done()
            if quit_after:
                self.closing = True
                self.writer.close()
                return

    def _execute(self, cmd) -> bytes | None:
        backend = self.server.backend
        stats = self.server.stats
        try:
            if isinstance(cmd, GetCommand):
                if len(cmd.keys) == 1:
                    # Mirror the in-process plane exactly: a single-key
                    # get is `server.get`, a batch is `server.get_many`.
                    key = cmd.keys[0]
                    value = backend.get(key)
                    found = {} if value is _MISSING else {key: value}
                else:
                    found = backend.get_many(list(cmd.keys))
                values = []
                for key in cmd.keys:
                    if key in found:
                        flags, payload = proto.dump_value(found[key])
                        cas = 0 if cmd.cas else None
                        values.append(Value(key, flags, payload, cas))
                return Reply("END", values=tuple(values)).encode()
            if isinstance(cmd, SetCommand):
                backend.set(cmd.key, proto.load_value(cmd.flags, cmd.data))
                return None if cmd.noreply else Reply("STORED").encode()
            if isinstance(cmd, DeleteCommand):
                existed = backend.delete(cmd.key)
                if cmd.noreply:
                    return None
                return Reply("DELETED" if existed else "NOT_FOUND").encode()
            if isinstance(cmd, TouchCommand):
                # The backend has no per-entry TTL; touch degrades to a
                # counter-neutral membership probe so the verb exists on
                # the wire without perturbing decision equivalence.
                present = cmd.key in backend
                if cmd.noreply:
                    return None
                return Reply("TOUCHED" if present else "NOT_FOUND").encode()
            if isinstance(cmd, VersionCommand):
                return Reply("VERSION", SERVER_VERSION).encode()
            if isinstance(cmd, QuitCommand):
                return None
            if isinstance(cmd, BadCommand):
                stats.protocol_errors += 1
                return Reply(cmd.kind, cmd.message).encode()
        except ShardFailure as exc:
            stats.fault_errors += 1
            return proto.encode_failure(exc).encode()
        stats.protocol_errors += 1
        return Reply("ERROR").encode()


class ShardServer:
    """Serve one backend shard on a TCP port (ephemeral by default)."""

    def __init__(
        self,
        backend: BackendCacheServer,
        host: str = "127.0.0.1",
        port: int = 0,
        inflight_limit: int = 256,
        max_value_bytes: int = proto.MAX_VALUE_BYTES,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.inflight_limit = inflight_limit
        self.max_value_bytes = max_value_bytes
        self.stats = ShardServerStats()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def server_id(self) -> str:
        return self.backend.server_id

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> "ShardServer":
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _on_connect(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await conn.run()
        finally:
            self._connections.discard(conn)
            if task is not None:
                self._conn_tasks.discard(task)

    def abort_connections(self) -> None:
        """Hard-drop every live connection (simulates an instance crash).

        Clients observe a ``ConnectionError`` mid-flight — the network
        analogue of a killed shard — and reconnect lazily on next use.
        """
        for conn in list(self._connections):
            conn.closing = True
            transport = conn.writer.transport
            if transport is not None:
                transport.abort()

    async def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop serving; with ``drain`` (default) finish inflight work first."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            pending = [c.queue.join() for c in list(self._connections)]
            if pending:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*pending), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    pass
        self.abort_connections()
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
