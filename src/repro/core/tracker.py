"""CoT's two-set heavy-hitter tracker (paper Sections 4.2-4.3).

The paper describes one logical tracker of ``K`` keys whose minimum cached
hotness ``h_min`` splits it into the cached set ``S_c`` (size ``C``) and the
tracked-but-not-cached set ``S_{k-c}`` (size ``K - C``). We materialize the
two sets as two :class:`~repro.core.heap.IndexedMinHeap` instances:

* the **cache heap** holds ``S_c``; its root is ``h_min``;
* the **rest heap** holds ``S_{k-c}``; its root is the space-saving victim.

This layout realizes two paper invariants *by construction*:

* ``S_c ⊆ S_k`` — a cached key can never be evicted from the tracker,
  because space-saving replacement (Algorithm 1 lines 2-4) always evicts
  from the rest heap;
* the ``h_min`` split — membership in ``S_c`` vs ``S_{k-c}`` is explicit
  rather than recomputed from hotness comparisons.

The tracker stores only metadata (:class:`~repro.core.hotness.KeyStats`,
two counters per key — the paper's 8 bytes/node accounting); values cached
at the front end live in :class:`repro.core.cache.CoTCache`.
"""

from __future__ import annotations

import heapq
import math
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.core.heap import IndexedMinHeap
from repro.core.hotness import AccessType, HotnessModel, KeyStats
from repro.errors import ConfigurationError, KeyNotTrackedError

K = TypeVar("K", bound=Hashable)

__all__ = ["CoTTracker"]


class CoTTracker(Generic[K]):
    """Space-saving tracker with an embedded exact top-``C`` cached set.

    Parameters
    ----------
    tracker_capacity:
        ``K`` — total number of tracked keys (cached + not cached).
    cache_capacity:
        ``C`` — number of keys that may be marked cached. Must satisfy
        ``0 <= C < K`` (``C`` may be 0: tracking without caching, used by
        the resizing controller's ratio-discovery phase).
    model:
        the dual-cost :class:`~repro.core.hotness.HotnessModel` (Equation 1).
    inherit_hotness:
        Algorithm 1 line 4's "benefit of the doubt": newly tracked keys
        inherit the evicted key's hotness. ``False`` starts newcomers at
        zero instead — the ablation evaluated by
        ``benchmarks/bench_ablation_inheritance.py``.
    """

    def __init__(
        self,
        tracker_capacity: int,
        cache_capacity: int,
        model: HotnessModel | None = None,
        inherit_hotness: bool = True,
    ) -> None:
        if tracker_capacity < 1:
            raise ConfigurationError("tracker capacity must be >= 1")
        if cache_capacity < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        if cache_capacity >= tracker_capacity:
            raise ConfigurationError(
                f"cache capacity ({cache_capacity}) must be < tracker "
                f"capacity ({tracker_capacity}) so replacement victims exist"
            )
        self._tracker_capacity = tracker_capacity
        self._cache_capacity = cache_capacity
        self._model = model or HotnessModel()
        self._inherit_hotness = inherit_hotness
        # Per-access hotness deltas (Equation 1), bound once: the track
        # fast path applies these instead of re-evaluating the model.
        self._read_delta = self._model.read_weight
        self._update_delta = -self._model.update_weight
        self._cache_heap: IndexedMinHeap[K] = IndexedMinHeap()
        self._rest_heap: IndexedMinHeap[K] = IndexedMinHeap()
        self._stats: dict[K, KeyStats] = {}

    # ----------------------------------------------------------- properties

    @property
    def tracker_capacity(self) -> int:
        """``K`` — maximum number of tracked keys."""
        return self._tracker_capacity

    @property
    def cache_capacity(self) -> int:
        """``C`` — maximum number of cached keys."""
        return self._cache_capacity

    @property
    def model(self) -> HotnessModel:
        """The hotness model in effect."""
        return self._model

    def __len__(self) -> int:
        return len(self._cache_heap) + len(self._rest_heap)

    def __contains__(self, key: K) -> bool:
        return key in self._stats

    @property
    def cached_count(self) -> int:
        """Current ``|S_c|``."""
        return len(self._cache_heap)

    @property
    def tracked_only_count(self) -> int:
        """Current ``|S_{k-c}|``."""
        return len(self._rest_heap)

    def is_cached(self, key: K) -> bool:
        """True when ``key`` is in ``S_c``."""
        return key in self._cache_heap

    def h_min(self) -> float:
        """Minimum hotness among cached keys (paper's ``h_min``).

        Returns ``-inf`` while the cache has free capacity, so that any
        tracked key qualifies for insertion (Algorithm 2 line 6 always
        admits keys into a non-full cache).
        """
        if len(self._cache_heap) < self._cache_capacity:
            return -math.inf
        if not self._cache_heap:
            return math.inf  # cache capacity is 0: nothing ever qualifies
        return self._cache_heap.min_priority()

    def hotness_of(self, key: K) -> float:
        """Current hotness of a tracked key.

        Returns the incrementally-maintained value, which equals the
        key's heap priority exactly (same sequence of float operations),
        so admission comparisons against ``h_min`` are self-consistent.
        """
        stats = self._stats.get(key)
        if stats is None:
            raise KeyNotTrackedError(key)
        return stats.hot

    def stats_of(self, key: K) -> KeyStats:
        """Raw counters of a tracked key."""
        stats = self._stats.get(key)
        if stats is None:
            raise KeyNotTrackedError(key)
        return stats

    # ------------------------------------------------------------- tracking

    def track(self, key: K, access: AccessType = AccessType.READ) -> float:
        """Algorithm 1 (``track_key``): record one access, return hotness.

        If ``key`` is untracked and the tracker is full, the coldest
        *non-cached* key is evicted and ``key`` inherits its hotness (the
        "benefit of the doubt", line 4). The hotness then moves by the
        access's constant delta (``+r_w`` / ``-u_w``) — no Equation 1
        recompute — and the owning heap re-orders via its delta path.
        """
        stats = self._stats.get(key)
        if stats is None:
            stats = self._admit(key)
        if access is AccessType.READ:
            stats.read_count += 1.0
            delta = self._read_delta
        else:
            stats.update_count += 1.0
            delta = self._update_delta
        if stats.cached:
            hotness = self._cache_heap.update_delta(key, delta)
        else:
            hotness = self._rest_heap.update_delta(key, delta)
        stats.hot = hotness
        return hotness

    def track_many(self, keys: Iterable[K], access: AccessType = AccessType.READ) -> None:
        """Record one ``access`` for each key in ``keys`` (batch Algorithm 1).

        Equivalent to ``for k in keys: track(k, access)`` but with the
        per-call attribute lookups hoisted out of the loop.
        """
        stats_get = self._stats.get
        admit = self._admit
        cache_update = self._cache_heap.update_delta
        rest_update = self._rest_heap.update_delta
        is_read = access is AccessType.READ
        delta = self._read_delta if is_read else self._update_delta
        for key in keys:
            stats = stats_get(key)
            if stats is None:
                stats = admit(key)
            if is_read:
                stats.read_count += 1.0
            else:
                stats.update_count += 1.0
            if stats.cached:
                stats.hot = cache_update(key, delta)
            else:
                stats.hot = rest_update(key, delta)

    def _admit(self, key: K) -> KeyStats:
        """Insert an untracked key, evicting the space-saving victim."""
        stats = KeyStats()
        if len(self._stats) >= self._tracker_capacity:
            if self._rest_heap:
                # Fused evict+insert: the newcomer inherits the victim's
                # (near-minimal) hotness, so replacing the rest-heap root
                # in place almost never sinks — one shallow sift instead
                # of a full-depth pop plus a long sift-up push.
                if self._inherit_hotness:
                    stats.seed_from_hotness(
                        self._rest_heap.min_priority(), self._model
                    )
                victim, _ = self._rest_heap.replace(key, stats.hot)
                del self._stats[victim]
                self._stats[key] = stats
                return stats
            # Degenerate corner (all tracked keys are cached, possible
            # transiently while the resizing controller shrinks K before
            # C): sacrifice the coldest cached key.
            victim, victim_hotness = self._cache_heap.pop()
            del self._stats[victim]
            if self._inherit_hotness:
                stats.seed_from_hotness(victim_hotness, self._model)
        self._rest_heap.push(key, stats.hot)
        self._stats[key] = stats
        return stats

    # ----------------------------------------------------- cache membership

    def qualifies_for_cache(self, key: K) -> bool:
        """Algorithm 2 line 6: should this tracked key enter the cache?"""
        if self._cache_capacity == 0:
            return False
        stats = self._stats.get(key)
        if stats is None:
            raise KeyNotTrackedError(key)
        if stats.cached:
            return False
        return stats.hot > self.h_min()

    def promote(self, key: K) -> K | None:
        """Move ``key`` from ``S_{k-c}`` into ``S_c``.

        If the cache is full, the coldest cached key is demoted back into
        ``S_{k-c}`` and returned, so the caller can drop its cached value.
        Returns ``None`` when no demotion was necessary.
        """
        stats = self._stats.get(key)
        if stats is None:
            raise KeyNotTrackedError(key)
        if stats.cached:
            return None
        demoted: K | None = None
        if len(self._cache_heap) >= self._cache_capacity:
            if self._cache_capacity == 0:
                raise ConfigurationError("cannot promote with cache capacity 0")
            demoted, demoted_hotness = self._cache_heap.pop()
            self._rest_heap.push(demoted, demoted_hotness)
            self._stats[demoted].cached = False
        hotness = self._rest_heap.remove(key)
        self._cache_heap.push(key, hotness)
        stats.cached = True
        return demoted

    def demote(self, key: K) -> None:
        """Move ``key`` from ``S_c`` back into ``S_{k-c}``."""
        stats = self._stats.get(key)
        if stats is None or not stats.cached:
            raise KeyNotTrackedError(key)
        hotness = self._cache_heap.remove(key)
        self._rest_heap.push(key, hotness)
        stats.cached = False

    def evict(self, key: K) -> None:
        """Forget ``key`` entirely (used on delete/invalidation)."""
        stats = self._stats.get(key)
        if stats is None:
            raise KeyNotTrackedError(key)
        if stats.cached:
            self._cache_heap.remove(key)
        else:
            self._rest_heap.remove(key)
        del self._stats[key]

    # -------------------------------------------------------------- queries

    def cached_keys(self) -> Iterator[K]:
        """Iterate ``S_c`` in arbitrary order."""
        return iter(self._cache_heap)

    def tracked_only_keys(self) -> Iterator[K]:
        """Iterate ``S_{k-c}`` in arbitrary order."""
        return iter(self._rest_heap)

    def tracked_keys(self) -> Iterator[K]:
        """Iterate the whole tracked set ``S_k``."""
        yield from self._cache_heap
        yield from self._rest_heap

    def top(self, n: int) -> list[tuple[K, float]]:
        """The ``n`` hottest tracked keys, descending by hotness.

        ``heapq.nlargest`` keeps this O(n log k) rather than sorting the
        entire tracked set; ties preserve the stats-dict insertion order
        (matching the stable full sort this replaces).
        """
        pairs = heapq.nlargest(
            n,
            ((s.hot, -i, k) for i, (k, s) in enumerate(self._stats.items())),
        )
        return [(k, hot) for hot, _i, k in pairs]

    # ------------------------------------------------------------- resizing

    def resize(self, tracker_capacity: int, cache_capacity: int) -> list[K]:
        """Change ``K`` and ``C``; returns the cached keys that were dropped.

        Shrinking evicts coldest-first: first the rest heap is trimmed to
        the new ``K - |S_c|`` budget, then (if ``C`` shrank below ``|S_c|``)
        the coldest cached keys are evicted outright. Evicted *cached* keys
        are returned so the value store can release them.
        """
        if tracker_capacity < 1:
            raise ConfigurationError("tracker capacity must be >= 1")
        if cache_capacity < 0 or cache_capacity >= tracker_capacity:
            raise ConfigurationError(
                "cache capacity must satisfy 0 <= C < tracker capacity"
            )
        self._tracker_capacity = tracker_capacity
        self._cache_capacity = cache_capacity

        dropped_cached: list[K] = []
        while len(self._cache_heap) > cache_capacity:
            # Demote rather than delete: the key stays tracked (it may well
            # be hotter than rest-heap keys) but its cached value is dropped.
            key, hotness = self._cache_heap.pop()
            self._rest_heap.push(key, hotness)
            self._stats[key].cached = False
            dropped_cached.append(key)
        while len(self) > tracker_capacity:
            if self._rest_heap:
                key, _hotness = self._rest_heap.pop()
                del self._stats[key]
            else:  # pragma: no cover - unreachable: C < K is enforced
                break
        return dropped_cached

    def decay(self, factor: float = 0.5) -> None:
        """Scale every key's counters and hotness by ``factor``.

        Implements the half-life decay hook of Algorithm 3 line 11 (the
        paper triggers it but leaves the mechanism to cited work; see
        :mod:`repro.core.decay` for the policies built on this primitive).

        A uniform scale preserves heap order only when all hotness values
        share a sign; with the dual-cost model values may be negative, and
        scaling by ``0 < factor <= 1`` still preserves order because it is
        a monotonic map. Heaps are scaled in place.
        """
        if not 0 < factor <= 1:
            raise ConfigurationError("decay factor must be in (0, 1]")
        for stats in self._stats.values():
            stats.decay(factor)
        self._cache_heap.scale_priorities(factor)
        self._rest_heap.scale_priorities(factor)

    # ----------------------------------------------------------- validation

    def check_invariants(self) -> None:
        """Assert the structural invariants (test hook)."""
        self._cache_heap.check_invariants()
        self._rest_heap.check_invariants()
        assert len(self._cache_heap) <= self._cache_capacity
        assert len(self) <= self._tracker_capacity
        assert set(self._stats) == set(self._cache_heap) | set(self._rest_heap)
        for key, stats in self._stats.items():
            in_cache = key in self._cache_heap
            in_rest = key in self._rest_heap
            assert in_cache != in_rest, f"key {key!r} in both/neither heap"
            assert stats.cached == in_cache, f"stale cached flag for {key!r}"
        for heap in (self._cache_heap, self._rest_heap):
            for key, priority in heap.items():
                stats = self._stats[key]
                # Heap priority and the incremental hotness are maintained
                # by the same delta stream and must agree exactly ...
                assert priority == stats.hot, f"hot/priority drift for {key!r}"
                # ... and both must match an Equation 1 recompute up to
                # float associativity (delta accumulation vs. counter
                # products can differ by ulps under non-unit weights).
                expected = stats.hotness(self._model)
                assert math.isclose(priority, expected, rel_tol=1e-9, abs_tol=1e-9)
