"""An indexed binary min-heap with O(log n) arbitrary updates.

Both the space-saving tracker and CoT's cache (Section 4 of the paper) are
described as min-heaps ordered by key hotness, paired with a hashmap so any
key can be located in O(1) and re-prioritized in O(log n). This module
provides that structure once, so the tracker heap (``S_{k-c}``) and the cache
heap (``S_c``) share a single battle-tested implementation.

Ties in priority are broken by insertion sequence number, which makes heap
behaviour fully deterministic — important both for reproducible experiments
and for property-based tests.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap(Generic[K]):
    """Binary min-heap over ``(priority, seq)`` pairs with a key→slot index.

    Supports the operations CoT needs:

    * ``push(key, priority)`` — insert a new key.
    * ``peek()`` / ``pop()`` — inspect / remove the minimum-priority key.
    * ``update(key, priority)`` — change a key's priority in place.
    * ``remove(key)`` — delete an arbitrary key.
    * ``min_priority()`` — the paper's ``h_min`` when used as the cache heap.

    The heap intentionally has no built-in capacity: CoT's resizing algorithm
    (Algorithm 3) changes capacities dynamically, so capacity policy lives in
    the callers (:mod:`repro.core.tracker`, :mod:`repro.core.cache`).
    """

    __slots__ = ("_keys", "_priorities", "_seqs", "_pos", "_next_seq")

    def __init__(self) -> None:
        self._keys: list[K] = []
        self._priorities: list[float] = []
        self._seqs: list[int] = []
        self._pos: dict[K, int] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------ api

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._pos

    def __iter__(self) -> Iterator[K]:
        """Iterate keys in arbitrary (heap array) order.

        Iterates the live array without a snapshot copy — read-only
        consumers (invariant checks, metrics exports, top-k queries)
        dominate, and paying an O(n) copy per iteration showed up in
        profiles. Mutating the heap mid-iteration is undefined; callers
        that need that take an explicit ``list(...)`` themselves.
        """
        return iter(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def push(self, key: K, priority: float) -> None:
        """Insert ``key`` with ``priority``. Raises if already present."""
        if key in self._pos:
            raise ValueError(f"key already in heap: {key!r}")
        self._keys.append(key)
        self._priorities.append(priority)
        self._seqs.append(self._next_seq)
        self._next_seq += 1
        idx = len(self._keys) - 1
        self._pos[key] = idx
        self._sift_up(idx)

    def peek(self) -> tuple[K, float]:
        """Return ``(key, priority)`` of the minimum without removing it."""
        if not self._keys:
            raise IndexError("peek on empty heap")
        return self._keys[0], self._priorities[0]

    def pop(self) -> tuple[K, float]:
        """Remove and return ``(key, priority)`` of the minimum."""
        if not self._keys:
            raise IndexError("pop on empty heap")
        key, priority = self._keys[0], self._priorities[0]
        self._delete_at(0)
        return key, priority

    def replace(self, key: K, priority: float) -> tuple[K, float]:
        """Evict the minimum and insert ``key`` in one sift (heapreplace).

        Returns the evicted ``(key, priority)`` pair. This is the
        space-saving replacement step fused: a ``pop`` (full-depth sift of
        the displaced last element) plus a ``push`` (long sift-up, because
        the newcomer inherits the victim's near-minimal priority) collapse
        into a single root overwrite that rarely sinks more than a level.
        The resulting array layout differs from pop-then-push, but every
        ordering decision depends only on the (priority, seq) total order,
        which is layout-independent — so tracker behaviour is unchanged.
        """
        if not self._keys:
            raise IndexError("replace on empty heap")
        if key in self._pos:
            raise ValueError(f"key already in heap: {key!r}")
        old_key, old_priority = self._keys[0], self._priorities[0]
        del self._pos[old_key]
        self._keys[0] = key
        self._priorities[0] = priority
        self._seqs[0] = self._next_seq
        self._next_seq += 1
        self._pos[key] = 0
        self._sift_down(0)
        return old_key, old_priority

    def remove(self, key: K) -> float:
        """Remove an arbitrary ``key``; returns its priority."""
        idx = self._pos[key]
        priority = self._priorities[idx]
        self._delete_at(idx)
        return priority

    def update(self, key: K, priority: float) -> None:
        """Set ``key``'s priority and restore heap order."""
        idx = self._pos[key]
        old = self._priorities[idx]
        self._priorities[idx] = priority
        if priority < old:
            self._sift_up(idx)
        elif priority > old:
            self._sift_down(idx)

    def update_delta(self, key: K, delta: float) -> float:
        """Add ``delta`` to ``key``'s priority; returns the new priority.

        The data-plane fast path: CoT's Equation 1 moves a key's hotness
        by a constant ``+r_w`` (read) or ``-u_w`` (update) per access, so
        the common case is a single signed shift. The delta's sign alone
        decides the sift direction, saving the old-vs-new comparison and
        a redundant priority read on every tracked access.
        """
        idx = self._pos[key]
        priorities = self._priorities
        priority = priorities[idx] + delta
        priorities[idx] = priority
        if delta > 0:
            # Leaf fast-exit: a read makes a key hotter, and the hottest
            # keys live at the leaves of a min-heap — on skewed workloads
            # most tracked reads touch a leaf and need no sift at all.
            if 2 * idx + 1 < len(priorities):
                self._sift_down(idx)
        elif delta < 0:
            self._sift_up(idx)
        return priority

    def priority_of(self, key: K) -> float:
        """Return the current priority of ``key``."""
        return self._priorities[self._pos[key]]

    def min_priority(self) -> float:
        """Priority of the heap minimum (``h_min`` for a CoT cache heap)."""
        if not self._keys:
            raise IndexError("min_priority on empty heap")
        return self._priorities[0]

    def items(self) -> Iterator[tuple[K, float]]:
        """Iterate ``(key, priority)`` pairs in arbitrary order.

        Like :meth:`__iter__`, this reads the live arrays without a
        snapshot; mutation during iteration is undefined.
        """
        return zip(self._keys, self._priorities)

    def clear(self) -> None:
        """Remove every key."""
        self._keys.clear()
        self._priorities.clear()
        self._seqs.clear()
        self._pos.clear()

    def scale_priorities(self, factor: float) -> None:
        """Multiply every priority by ``factor`` (heap order is preserved).

        Used by the half-life decay algorithm, which halves all hotness
        values at once; a uniform positive scaling never reorders the heap.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        for i in range(len(self._priorities)):
            self._priorities[i] *= factor

    def nsmallest(self, n: int) -> list[tuple[K, float]]:
        """Return the ``n`` smallest ``(key, priority)`` pairs, ascending.

        ``heapq.nsmallest`` is O(n log k) versus the O(n log n) full sort
        it replaces — the difference matters for the resizing controller,
        which asks for small prefixes of large trackers every epoch.
        """
        pairs = heapq.nsmallest(
            n, zip(self._priorities, self._seqs, self._keys)
        )
        return [(key, priority) for priority, _seq, key in pairs]

    # ------------------------------------------------------------ internals

    def _less(self, i: int, j: int) -> bool:
        pi, pj = self._priorities[i], self._priorities[j]
        if pi != pj:
            return pi < pj
        return self._seqs[i] < self._seqs[j]

    def _swap(self, i: int, j: int) -> None:
        keys, prios, seqs = self._keys, self._priorities, self._seqs
        keys[i], keys[j] = keys[j], keys[i]
        prios[i], prios[j] = prios[j], prios[i]
        seqs[i], seqs[j] = seqs[j], seqs[i]
        self._pos[keys[i]] = i
        self._pos[keys[j]] = j

    # The sift loops are the innermost code of every tracked access, so
    # they bind the backing arrays to locals and inline the (priority,
    # seq) comparison instead of calling ``_less``/``_swap`` per level —
    # method dispatch dominated ``update()`` in profiles. Both use the
    # classic "hole" technique: the moving element is held aside and
    # written once at its final slot, halving list/dict writes.

    def _sift_up(self, idx: int) -> None:
        keys, prios, seqs = self._keys, self._priorities, self._seqs
        pos = self._pos
        key, prio, seq = keys[idx], prios[idx], seqs[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            pp = prios[parent]
            if prio < pp or (prio == pp and seq < seqs[parent]):
                pk = keys[parent]
                keys[idx] = pk
                prios[idx] = pp
                seqs[idx] = seqs[parent]
                pos[pk] = idx
                idx = parent
            else:
                break
        keys[idx] = key
        prios[idx] = prio
        seqs[idx] = seq
        pos[key] = idx

    def _sift_down(self, idx: int) -> None:
        keys, prios, seqs = self._keys, self._priorities, self._seqs
        pos = self._pos
        n = len(keys)
        key, prio, seq = keys[idx], prios[idx], seqs[idx]
        child = 2 * idx + 1
        while child < n:
            cp = prios[child]
            right = child + 1
            if right < n:
                rp = prios[right]
                if rp < cp or (rp == cp and seqs[right] < seqs[child]):
                    child = right
                    cp = rp
            if cp < prio or (cp == prio and seqs[child] < seq):
                ck = keys[child]
                keys[idx] = ck
                prios[idx] = cp
                seqs[idx] = seqs[child]
                pos[ck] = idx
                idx = child
                child = 2 * idx + 1
            else:
                break
        keys[idx] = key
        prios[idx] = prio
        seqs[idx] = seq
        pos[key] = idx

    def _delete_at(self, idx: int) -> None:
        last = len(self._keys) - 1
        key = self._keys[idx]
        if idx != last:
            self._swap(idx, last)
        self._keys.pop()
        self._priorities.pop()
        self._seqs.pop()
        del self._pos[key]
        if idx < len(self._keys):
            # The element swapped into ``idx`` may violate order either way.
            moved = self._keys[idx]
            self._sift_up(idx)
            self._sift_down(self._pos[moved])

    def check_invariants(self) -> None:
        """Assert structural invariants (used by tests, not hot paths)."""
        n = len(self._keys)
        assert len(self._priorities) == n and len(self._seqs) == n
        assert len(self._pos) == n
        for key, idx in self._pos.items():
            assert self._keys[idx] == key, "position map out of sync"
        for i in range(1, n):
            parent = (i - 1) >> 1
            assert not self._less(i, parent), f"heap order violated at {i}"
