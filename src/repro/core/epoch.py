"""Epoch observations and records for the elastic resizing algorithm.

Algorithm 3 runs once per *epoch* of ``E`` accesses. At each epoch end the
front end summarizes what it saw into an :class:`EpochSnapshot` — the
controller's entire input — and the controller's reply plus the snapshot
are archived as an :class:`EpochRecord`, the raw material of the paper's
Figures 7-8 (sizes, ``I_c`` and ``alpha_c`` per epoch).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EpochSnapshot", "EpochRecord"]


@dataclass(frozen=True)
class EpochSnapshot:
    """Everything Algorithm 3 reads at the end of one epoch.

    Attributes
    ----------
    index:
        0-based epoch number.
    cache_capacity / tracker_capacity:
        ``C`` and ``K`` in effect during the epoch.
    imbalance:
        ``I_c`` — max/min of per-back-end lookups *sent by this front end*
        during the epoch.
    alpha_c:
        average hits per cache-line over the epoch (hits on ``S_c`` / C).
    alpha_k_c:
        average hits per tracked-not-cached line (hits on ``S_{k-c}`` /
        (K - C)).
    accesses:
        number of accesses the epoch actually contained (== E except for
        a final partial epoch).
    imbalance_sample:
        total back-end lookups underlying the ``imbalance`` measurement
        (the windowed sum). The controller uses it to ignore statistically
        meaningless violations: a max/min ratio over a few hundred lookups
        is dominated by binomial noise.
    noise_allowance:
        multiplicative slack on the imbalance target reflecting the
        sampling noise of this measurement (``1.0`` = trust it exactly;
        a front end measuring over ``n`` lookups across ``k`` shards
        reports ``1 + 3.2*sqrt((k-1)/n)``). Lets the controller ignore
        violations a perfectly balanced system would also show.
    """

    index: int
    cache_capacity: int
    tracker_capacity: int
    imbalance: float
    alpha_c: float
    alpha_k_c: float
    accesses: int
    imbalance_sample: int = 0
    noise_allowance: float = 1.0


@dataclass(frozen=True)
class EpochRecord:
    """One archived epoch: the snapshot plus the controller's reaction."""

    snapshot: EpochSnapshot
    decision: str
    phase: str
    alpha_target: float
    new_cache_capacity: int
    new_tracker_capacity: int

    @property
    def index(self) -> int:
        """Epoch number (convenience passthrough)."""
        return self.snapshot.index

    def as_row(self) -> dict[str, float | int | str]:
        """Flatten for table/CSV output in the experiment harnesses."""
        return {
            "epoch": self.snapshot.index,
            "cache": self.snapshot.cache_capacity,
            "tracker": self.snapshot.tracker_capacity,
            "I_c": round(self.snapshot.imbalance, 4),
            "alpha_c": round(self.snapshot.alpha_c, 4),
            "alpha_k_c": round(self.snapshot.alpha_k_c, 4),
            "alpha_t": round(self.alpha_target, 4),
            "decision": self.decision,
            "phase": self.phase,
            "new_cache": self.new_cache_capacity,
            "new_tracker": self.new_tracker_capacity,
        }
