"""CoT's cache replacement policy (paper Algorithm 2).

:class:`CoTCache` combines the two-set tracker of
:mod:`repro.core.tracker` with a value store for the cached keys, behind
the same :class:`~repro.policies.base.CachePolicy` interface every baseline
implements. Per access:

1. ``track_key`` (Algorithm 1) updates the key's hotness in the tracker;
2. a cached key is served locally (its cache-heap position is adjusted
   implicitly, because both heaps are ordered by the same hotness);
3. a missed key fetched from the back end is *admitted only if its hotness
   exceeds* ``h_min``, the minimum hotness among cached keys — this is the
   filter that keeps cold and noisy long-tail keys out of the small cache.

The cache also exposes the per-epoch signals Algorithm 3 consumes:
``epoch_cache_hits`` (hits on ``S_c``) and ``epoch_tracker_hits`` (hits on
``S_{k-c}``), from which the controller derives ``alpha_c`` and
``alpha_{k-c}``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.core.hotness import AccessType, HotnessModel
from repro.core.tracker import CoTTracker
from repro.errors import ConfigurationError
from repro.policies.base import MISSING, CachePolicy

__all__ = ["CoTCache"]

#: Default tracker:cache ratio when none is given. The paper maintains
#: ``K >= 2C`` as the floor and discovers the workload's ideal ratio
#: (16:1 for Zipf 0.9, 8:1 for 0.99, 4:1 for 1.2) at run time.
DEFAULT_TRACKER_RATIO = 2


class CoTCache(CachePolicy):
    """Cache-on-Track replacement policy (Algorithms 1 + 2).

    Parameters
    ----------
    capacity:
        ``C`` — number of cache-lines.
    tracker_capacity:
        ``K`` — number of tracked keys. Defaults to
        ``max(2, DEFAULT_TRACKER_RATIO * capacity)``. Must exceed
        ``capacity`` so space-saving victims exist.
    model:
        dual-cost hotness model; defaults to ``r_w = u_w = 1``.
    """

    name = "cot"

    def __init__(
        self,
        capacity: int,
        tracker_capacity: int | None = None,
        model: HotnessModel | None = None,
        inherit_hotness: bool = True,
    ) -> None:
        super().__init__(capacity)
        if tracker_capacity is None:
            tracker_capacity = max(2, DEFAULT_TRACKER_RATIO * capacity)
        if tracker_capacity <= capacity:
            raise ConfigurationError(
                f"tracker capacity ({tracker_capacity}) must exceed cache "
                f"capacity ({capacity})"
            )
        self._tracker: CoTTracker[Hashable] = CoTTracker(
            tracker_capacity, capacity, model, inherit_hotness=inherit_hotness
        )
        self._values: dict[Hashable, Any] = {}
        self.epoch_tracker_hits = 0

    # ----------------------------------------------------------- inspection

    @property
    def tracker(self) -> CoTTracker[Hashable]:
        """The underlying two-set tracker (read-mostly; tests and tuning)."""
        return self._tracker

    @property
    def tracker_capacity(self) -> int:
        """``K`` — current tracker capacity."""
        return self._tracker.tracker_capacity

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def cached_keys(self) -> Iterator[Hashable]:
        # No snapshot copy: read-only consumers dominate and the value
        # dict raises on concurrent mutation anyway; callers that drop
        # keys mid-iteration take an explicit list(...) themselves.
        return iter(self._values)

    def cached_items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(list(self._values.items()))

    def warm_seed(self, items: Iterable[tuple[Hashable, Any]]) -> None:
        """Seed from a retiring policy's cached set (warm handoff).

        A plain ``_admit`` would reject every key: nothing is tracked yet,
        so no key qualifies. Track each key once (a read) first, then
        offer it — the seeded keys all carry hotness 1 and fill the cache
        in iteration order until capacity, after which ``h_min`` gating
        applies as usual.
        """
        if self._capacity == 0:
            return
        for key, value in items:
            self._tracker.track(key, AccessType.READ)
            self._admit(key, value)

    def h_min(self) -> float:
        """Minimum hotness among cached keys (admission threshold)."""
        return self._tracker.h_min()

    def hotness_of(self, key: Hashable) -> float:
        """Hotness of a tracked key (raises if untracked)."""
        return self._tracker.hotness_of(key)

    # ------------------------------------------------------------ policy ops

    def _lookup(self, key: Hashable) -> Any:
        if key in self._tracker and not self._tracker.is_cached(key):
            self.epoch_tracker_hits += 1
        self._tracker.track(key, AccessType.READ)
        if key in self._values:
            return self._values[key]
        return MISSING

    def _admit(self, key: Hashable, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            return
        # ``track`` ran during the lookup — but in batched paths
        # (get_many) later keys of the same batch may have evicted this
        # one from the tracker again; an untracked key is by definition
        # too cold to cache.
        if key not in self._tracker:
            return
        if not self._tracker.qualifies_for_cache(key):
            return
        demoted = self._tracker.promote(key)
        if demoted is not None:
            self._values.pop(demoted, None)
            self.stats.record_eviction()
            self._notify_evicted(demoted)
        self._values[key] = value
        self.stats.record_insertion()

    def get_or_admit(self, key: Hashable, loader: Callable[[Hashable], Any]) -> Any:
        """Fused Algorithm 1 + 2 access: track → hit-check → qualify → promote.

        Behaviourally identical to ``lookup`` followed by ``admit`` on a
        miss (same hit/miss/eviction/promotion decisions, same statistics),
        but the key is resolved exactly once against the tracker's stats
        dict and once against the owning heap's position map, instead of
        the 4-6 redundant probes the split path pays. ``loader`` runs only
        on a miss and must not re-enter this policy.
        """
        tracker = self._tracker
        stats = tracker._stats.get(key)
        cstat = self.stats
        if stats is not None:
            stats.read_count += 1.0
            if stats.cached:
                stats.hot = tracker._cache_heap.update_delta(
                    key, tracker._read_delta
                )
                cstat.hits += 1
                cstat.epoch_hits += 1
                return self._values[key]
            self.epoch_tracker_hits += 1
            stats.hot = hot = tracker._rest_heap.update_delta(
                key, tracker._read_delta
            )
        else:
            stats = tracker._admit(key)
            stats.read_count += 1.0
            stats.hot = hot = tracker._rest_heap.update_delta(
                key, tracker._read_delta
            )
        cstat.misses += 1
        cstat.epoch_misses += 1
        value = loader(key)
        # Admission filter (Algorithm 2 line 6): a non-full cache admits
        # anything tracked (h_min == -inf); a full one requires h > h_min.
        cache_heap = tracker._cache_heap
        capacity = tracker._cache_capacity
        if capacity == 0:
            return value
        if len(cache_heap) < capacity or hot > cache_heap.min_priority():
            demoted = tracker.promote(key)
            if demoted is not None:
                self._values.pop(demoted, None)
                cstat.evictions += 1
                self._notify_evicted(demoted)
            self._values[key] = value
            cstat.insertions += 1
        return value

    def run_stream(self, keys: Iterable[Hashable]) -> None:
        """Batched read-only stream: the fused access path, loop-inlined.

        Equivalent to ``get_or_admit(key, identity)`` per key (the key
        itself is the admitted value, as in the hit-rate harnesses), with
        all attribute resolution hoisted out of the loop.
        """
        tracker = self._tracker
        stats_get = tracker._stats.get
        admit = tracker._admit
        cache_heap = tracker._cache_heap
        rest_update = tracker._rest_heap.update_delta
        cache_update = cache_heap.update_delta
        read_delta = tracker._read_delta
        promote = tracker.promote
        values = self._values
        values_pop = values.pop
        cstat = self.stats
        for key in keys:
            stats = stats_get(key)
            if stats is not None:
                stats.read_count += 1.0
                if stats.cached:
                    stats.hot = cache_update(key, read_delta)
                    cstat.hits += 1
                    cstat.epoch_hits += 1
                    continue
                self.epoch_tracker_hits += 1
                stats.hot = hot = rest_update(key, read_delta)
            else:
                stats = admit(key)
                stats.read_count += 1.0
                stats.hot = hot = rest_update(key, read_delta)
            cstat.misses += 1
            cstat.epoch_misses += 1
            capacity = tracker._cache_capacity
            if capacity == 0:
                continue
            if len(cache_heap) < capacity or hot > cache_heap.min_priority():
                demoted = promote(key)
                if demoted is not None:
                    values_pop(demoted, None)
                    cstat.evictions += 1
                    self._notify_evicted(demoted)
                values[key] = key
                cstat.insertions += 1

    def record_update(self, key: Hashable) -> None:
        """Update access: penalize hotness (Equation 1) and invalidate."""
        self._tracker.track(key, AccessType.UPDATE)
        self.invalidate(key)

    def _invalidate(self, key: Hashable) -> bool:
        """Drop the cached value; the key stays tracked with its history."""
        if key not in self._values:
            return False
        del self._values[key]
        if self._tracker.is_cached(key):
            self._tracker.demote(key)
        return True

    def _resize(self, capacity: int) -> None:
        tracker_capacity = max(self._tracker.tracker_capacity, capacity + 1)
        self.set_sizes(capacity, tracker_capacity)

    # --------------------------------------------------------- CoT-specific

    def set_sizes(self, cache_capacity: int, tracker_capacity: int) -> None:
        """Resize cache and tracker together (the controller's primitive)."""
        if tracker_capacity <= cache_capacity:
            raise ConfigurationError("tracker capacity must exceed cache capacity")
        dropped = self._tracker.resize(tracker_capacity, cache_capacity)
        for key in dropped:
            if self._values.pop(key, MISSING) is not MISSING:
                self.stats.record_eviction()
                self._notify_evicted(key)
        self._capacity = cache_capacity

    def decay(self, factor: float = 0.5) -> None:
        """Half-life decay of all tracked hotness (Algorithm 3, Case 2)."""
        self._tracker.decay(factor)

    def reset_epoch(self) -> None:
        """Zero the per-epoch hit counters (cache + tracker)."""
        self.stats.reset_epoch()
        self.epoch_tracker_hits = 0

    def alpha_c(self) -> float:
        """Average hits per cache-line this epoch (``alpha_c``)."""
        if self._capacity == 0:
            return 0.0
        return self.stats.epoch_hits / self._capacity

    def alpha_k_c(self) -> float:
        """Average hits per tracked-not-cached line this epoch."""
        span = self._tracker.tracker_capacity - self._capacity
        if span <= 0:
            return 0.0
        return self.epoch_tracker_hits / span

    def check_invariants(self) -> None:
        """Assert cache/tracker consistency (test hook)."""
        self._tracker.check_invariants()
        assert set(self._values) == set(self._tracker.cached_keys())
        assert len(self._values) <= self._capacity
