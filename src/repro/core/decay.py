"""Hotness decay policies (the paper's Algorithm 3, Case 2 hook).

When cached keys stop earning their keep while *tracked-but-not-cached*
keys meet the quality target, the hot set is rotating (the paper's
"Gangnam style" example) and CoT triggers a *half-life time decay* that
halves the hotness of all cached and tracked keys. The paper cites decay
literature without committing to a mechanism; we implement the half-life
trigger it describes plus a continuous exponential variant as an
extension, behind one small strategy interface so experiments can ablate
them.
"""

from __future__ import annotations

import abc

from repro.core.cache import CoTCache
from repro.errors import ConfigurationError

__all__ = ["DecayPolicy", "NoDecay", "HalfLifeDecay", "ExponentialDecay"]


class DecayPolicy(abc.ABC):
    """Strategy invoked by the elastic front end around epoch boundaries."""

    #: short name for experiment tables
    name: str = "base"

    #: explicit Case-2 triggers applied (``decay.triggers`` on the bus)
    triggers: int = 0

    #: continuous per-epoch decays applied (``decay.epoch_decays``)
    epoch_decays: int = 0

    @abc.abstractmethod
    def on_trigger(self, cache: CoTCache) -> None:
        """Called when Algorithm 3 Case 2 fires (explicit decay request)."""

    def on_epoch(self, cache: CoTCache) -> None:
        """Called at every epoch end regardless of the controller."""
        return None


class NoDecay(DecayPolicy):
    """Ignore decay triggers (the paper's own evaluation configuration)."""

    name = "none"

    def on_trigger(self, cache: CoTCache) -> None:
        return None


class HalfLifeDecay(DecayPolicy):
    """Halve all tracked hotness when triggered (Algorithm 3 line 11)."""

    name = "half_life"

    def __init__(self, factor: float = 0.5) -> None:
        if not 0 < factor < 1:
            raise ConfigurationError("decay factor must be in (0, 1)")
        self.factor = factor
        self.triggers = 0

    def on_trigger(self, cache: CoTCache) -> None:
        cache.decay(self.factor)
        self.triggers += 1


class ExponentialDecay(DecayPolicy):
    """Continuously age hotness a little every epoch (extension).

    With per-epoch factor ``rate`` the hotness of an untouched key decays
    geometrically, which retires stale trends without waiting for the
    Case-2 signal; an explicit trigger additionally applies the half-life
    factor. ``rate = 1.0`` disables the continuous part.
    """

    name = "exponential"

    def __init__(self, rate: float = 0.98, trigger_factor: float = 0.5) -> None:
        if not 0 < rate <= 1:
            raise ConfigurationError("rate must be in (0, 1]")
        if not 0 < trigger_factor < 1:
            raise ConfigurationError("trigger_factor must be in (0, 1)")
        self.rate = rate
        self.trigger_factor = trigger_factor
        self.triggers = 0
        self.epoch_decays = 0

    def on_epoch(self, cache: CoTCache) -> None:
        if self.rate < 1.0:
            cache.decay(self.rate)
            self.epoch_decays += 1

    def on_trigger(self, cache: CoTCache) -> None:
        cache.decay(self.trigger_factor)
        self.triggers += 1
