"""The paper's primary contribution: Cache-on-Track.

* Algorithm 1 — space-saving hotness tracking:
  :mod:`repro.core.spacesaving` (classic sketch) and
  :mod:`repro.core.tracker` (CoT's two-set variant).
* Algorithm 2 — the replacement policy: :mod:`repro.core.cache`.
* Algorithm 3 — elastic resizing: :mod:`repro.core.epoch`,
  :mod:`repro.core.resizing`, applied by :mod:`repro.core.elastic`.
* Equation 1 — dual-cost hotness: :mod:`repro.core.hotness`.
* Decay extension: :mod:`repro.core.decay`.
"""

from repro.core.cache import CoTCache
from repro.core.countmin import CMSTopK, CountMinSketch
from repro.core.decay import (
    DecayPolicy,
    ExponentialDecay,
    HalfLifeDecay,
    NoDecay,
)
from repro.core.epoch import EpochRecord, EpochSnapshot
from repro.core.heap import IndexedMinHeap
from repro.core.hotness import AccessType, HotnessModel, KeyStats
from repro.core.resizing import (
    DecisionKind,
    Phase,
    ResizeDecision,
    ResizingController,
)
from repro.core.spacesaving import SpaceSaving, TrackedCount
from repro.core.tracker import CoTTracker


def __getattr__(name: str):
    """Lazily expose :class:`ElasticCoTClient`.

    The elastic front end glues the core onto the cluster substrate, and
    the cluster substrate itself builds on core primitives; importing it
    eagerly here would create an import cycle, so it resolves on first
    attribute access instead (PEP 562).
    """
    if name == "ElasticCoTClient":
        from repro.core.elastic import ElasticCoTClient

        return ElasticCoTClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CoTCache",
    "CountMinSketch",
    "CMSTopK",
    "CoTTracker",
    "ElasticCoTClient",
    "EpochRecord",
    "EpochSnapshot",
    "IndexedMinHeap",
    "AccessType",
    "HotnessModel",
    "KeyStats",
    "DecisionKind",
    "Phase",
    "ResizeDecision",
    "ResizingController",
    "SpaceSaving",
    "TrackedCount",
    "DecayPolicy",
    "NoDecay",
    "HalfLifeDecay",
    "ExponentialDecay",
]
