"""Count-Min Sketch heavy-hitter tracking — the space-saving alternative.

CoT adopts the space-saving algorithm for its tracker; the other
standard streaming heavy-hitter machinery is a Count-Min Sketch (Cormode
& Muthukrishnan 2005) paired with a top-k heap. This module implements
that alternative so the design choice can be evaluated rather than
asserted:

* :class:`CountMinSketch` — the ``d × w`` counter matrix with
  conservative-update support; estimates are overestimates with error
  ≤ ``e/w · N`` at probability ``1 - e^-d``.
* :class:`CMSTopK` — a CoT-shaped tracker facade: ``offer`` a key,
  keep the approximate top-``k`` in an indexed heap.

``benchmarks/bench_tracker_comparison.py`` and
``tests/test_countmin.py`` compare recall/precision and per-op cost
against :class:`~repro.core.spacesaving.SpaceSaving` at equal memory:
space-saving's per-key error bound and exact-decrement structure make it
the better fit for CoT's *small* trackers, which is the reproduction's
evidence for the paper's choice.
"""

from __future__ import annotations

import math
import random
from typing import Generic, Hashable, TypeVar

from repro.core.heap import IndexedMinHeap
from repro.errors import ConfigurationError

K = TypeVar("K", bound=Hashable)

__all__ = ["CountMinSketch", "CMSTopK"]

_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch(Generic[K]):
    """A ``depth × width`` Count-Min Sketch with conservative update.

    Parameters
    ----------
    width:
        counters per row (``w``); the overestimation bound is ``N·e/w``
        for the classic analysis.
    depth:
        number of hash rows (``d``); failure probability ``e^-d``.
    conservative:
        update only the minimal counters (tighter estimates at the same
        memory; the default, as used in networking practice).
    seed:
        seeds the pairwise-independent hash family.
    """

    def __init__(
        self,
        width: int,
        depth: int = 4,
        conservative: bool = True,
        seed: int | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("width and depth must be >= 1")
        self._width = width
        self._depth = depth
        self._conservative = conservative
        self._rows = [[0.0] * width for _ in range(depth)]
        rng = random.Random(seed)
        # (a, b) pairs for ax+b mod p mod w universal hashing.
        self._hashes = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(depth)
        ]
        self._stream_length = 0.0

    @classmethod
    def from_error(
        cls, epsilon: float, delta: float = 0.01, **kw
    ) -> "CountMinSketch[K]":
        """Size the sketch for error ``epsilon·N`` with prob. ``1-delta``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ConfigurationError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width, depth, **kw)

    # ----------------------------------------------------------- properties

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def stream_length(self) -> float:
        """Total weight offered so far."""
        return self._stream_length

    @property
    def counter_cells(self) -> int:
        """Total memory in counters (for equal-memory comparisons)."""
        return self._width * self._depth

    # ------------------------------------------------------------------ ops

    def _buckets(self, key: K) -> list[int]:
        h = hash(key) & ((1 << 61) - 1)
        return [
            ((a * h + b) % _MERSENNE_PRIME) % self._width
            for a, b in self._hashes
        ]

    def add(self, key: K, weight: float = 1.0) -> float:
        """Record one occurrence; returns the new estimate."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._stream_length += weight
        buckets = self._buckets(key)
        current = min(
            self._rows[row][bucket] for row, bucket in enumerate(buckets)
        )
        target = current + weight
        for row, bucket in enumerate(buckets):
            if self._conservative:
                if self._rows[row][bucket] < target:
                    self._rows[row][bucket] = target
            else:
                self._rows[row][bucket] += weight
        return target if self._conservative else current + weight

    def estimate(self, key: K) -> float:
        """Point query: an overestimate of the key's true count."""
        return min(
            self._rows[row][bucket]
            for row, bucket in enumerate(self._buckets(key))
        )

    def scale(self, factor: float) -> None:
        """Multiply every counter (decay support, mirroring the tracker)."""
        if not 0 < factor <= 1:
            raise ConfigurationError("factor must be in (0, 1]")
        for row in self._rows:
            for i in range(len(row)):
                row[i] *= factor
        self._stream_length *= factor


class CMSTopK(Generic[K]):
    """Approximate top-``k`` tracking over a Count-Min Sketch.

    The standard construction: every offered key is estimated via the
    sketch; a key enters the candidate heap when its estimate beats the
    heap minimum. Unlike space-saving there is **no subset guarantee** —
    hash collisions can both inflate cold keys into the heap and keep the
    heap's minimum too high for warm keys to enter.
    """

    def __init__(
        self,
        k: int,
        sketch: CountMinSketch[K] | None = None,
        width: int | None = None,
        depth: int = 4,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if sketch is None:
            sketch = CountMinSketch(width or max(8 * k, 64), depth, seed=seed)
        self._k = k
        self.sketch = sketch
        self._heap: IndexedMinHeap[K] = IndexedMinHeap()

    @property
    def k(self) -> int:
        """Tracked top-k size."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, key: K) -> bool:
        return key in self._heap

    def offer(self, key: K, weight: float = 1.0) -> float:
        """Record one occurrence; maintain the candidate heap."""
        estimate = self.sketch.add(key, weight)
        if key in self._heap:
            self._heap.update(key, estimate)
        elif len(self._heap) < self._k:
            self._heap.push(key, estimate)
        elif estimate > self._heap.min_priority():
            self._heap.pop()
            self._heap.push(key, estimate)
        return estimate

    def top(self, n: int | None = None) -> list[tuple[K, float]]:
        """The tracked keys with estimates, hottest first."""
        ordered = sorted(self._heap.items(), key=lambda kv: -kv[1])
        return ordered[: (n if n is not None else self._k)]

    def memory_cells(self) -> int:
        """Counters + heap entries (for equal-memory comparisons)."""
        return self.sketch.counter_cells + len(self._heap)
