"""Cost-aware elastic sizing: pay for a cache line only while it earns.

The paper's :class:`~repro.core.resizing.ResizingController` resizes to
hit a *load-imbalance* target — memory is a means to an end and the end
is balance. Carra et al.'s elastic provisioning work (arXiv:1802.04696)
optimizes the complementary objective: every cache line has a rental
price (memory cost per epoch) and every hit has a value, so the right
size is the one where the *marginal* line still pays its rent. Ditto
(arXiv:2309.10239) makes the same point from the eviction side — judge
caching decisions by observed hit value, not raw hit rate.

:class:`CostAwareController` drops into
:class:`~repro.core.elastic.ElasticCoTClient` as a controller
replacement (same ``observe``/``phase``/``alpha_target`` surface, same
:class:`~repro.core.resizing.ResizeDecision` output) and reads the same
:class:`~repro.core.epoch.EpochSnapshot` the imbalance controller does.
CoT's dual-history structure is what makes the marginal estimate free:

* ``alpha_c`` — hits per *cached* line per epoch — is the average rent
  performance of the lines currently paid for;
* ``alpha_k_c`` — hits per *tracked-but-not-cached* line — estimates
  what the next ``K - C`` candidate lines would earn if promoted, i.e.
  the marginal hit rate of growing the cache.

Against the break-even rate ``line_cost / hit_value`` (hits per line
per epoch where a line exactly pays for itself) the rules are:

* **expand** (double ``C``) while the marginal lines would earn more
  than break-even — growth buys hits worth more than the memory;
* **shrink** (halve ``C``) when even the *average* cached line earns
  less than break-even — the tail of the cache is dead weight;
* **decay** when tracked lines outscore cached ones (stale residents —
  same trigger as the paper's Case 2);
* observation-only warm-up epochs after every resize, so decisions are
  made on settled statistics.

``ext-write`` benchmarks this controller head-to-head against the
imbalance controller across YCSB A-F at every write mode.
"""

from __future__ import annotations

import enum

from repro.core.epoch import EpochSnapshot
from repro.core.resizing import DecisionKind, ResizeDecision
from repro.errors import ConfigurationError

__all__ = ["CostAwareController", "CostPhase"]


class CostPhase(enum.Enum):
    """Cost-aware controller phases (the epoch record's ``phase`` field)."""

    WARMUP = "cost_warmup"
    STEADY = "cost_steady"
    EXPANDING = "cost_expanding"
    SHRINKING = "cost_shrinking"


class CostAwareController:
    """Resize on estimated memory cost vs. observed hit value per epoch.

    Parameters
    ----------
    hit_value:
        value of one cache hit (arbitrary units; only the ratio to
        ``line_cost`` matters).
    line_cost:
        rent of one cache line for one epoch, in the same units. The
        break-even rate ``line_cost / hit_value`` is exposed as
        ``alpha_target`` — the quantity this controller drives the
        marginal hit rate toward, mirroring how the imbalance
        controller exposes its hit-rate target.
    tracker_ratio:
        ``K/C`` kept constant across resizes (CoT needs ``K > C`` for
        the marginal estimate to exist).
    warmup_epochs:
        observation-only epochs after every resize.
    hysteresis:
        multiplicative dead band around break-even: expand only above
        ``target * hysteresis``, shrink only below ``target /
        hysteresis`` — an expand can never immediately justify a shrink.
    decay_epsilon:
        relative dead band on the Case-2 decay trigger (mirroring the
        ``epsilon`` band in :class:`~repro.core.resizing.ResizingController`):
        decay only when ``alpha_k_c > alpha_c * (1 + decay_epsilon)``.
        Without it, measurement noise that leaves ``alpha_k_c`` a hair
        above ``alpha_c`` at steady state would halve all hotness every
        single epoch, erasing the frequency history the controller reads.
    min_cache / min_tracker / max_cache:
        safety rails, as in the imbalance controller.
    """

    def __init__(
        self,
        hit_value: float = 1.0,
        line_cost: float = 0.05,
        tracker_ratio: int = 4,
        warmup_epochs: int = 2,
        hysteresis: float = 1.25,
        decay_epsilon: float = 0.05,
        min_cache: int = 1,
        min_tracker: int = 2,
        max_cache: int = 1 << 20,
    ) -> None:
        if hit_value <= 0:
            raise ConfigurationError("hit_value must be > 0")
        if line_cost <= 0:
            raise ConfigurationError("line_cost must be > 0")
        if tracker_ratio < 2:
            raise ConfigurationError("tracker_ratio must be >= 2")
        if warmup_epochs < 0:
            raise ConfigurationError("warmup_epochs must be >= 0")
        if hysteresis < 1.0:
            raise ConfigurationError("hysteresis must be >= 1")
        if decay_epsilon < 0.0:
            raise ConfigurationError("decay_epsilon must be >= 0")
        self.hit_value = hit_value
        self.line_cost = line_cost
        self.tracker_ratio = tracker_ratio
        self.warmup_epochs = warmup_epochs
        self.hysteresis = hysteresis
        self.decay_epsilon = decay_epsilon
        self.min_cache = min_cache
        self.min_tracker = min_tracker
        self.max_cache = max_cache
        self.phase = CostPhase.WARMUP
        self._warmup_remaining = warmup_epochs

    @property
    def alpha_target(self) -> float:
        """Break-even hits per line per epoch (``line_cost / hit_value``)."""
        return self.line_cost / self.hit_value

    def _sizes(self, cache: int) -> tuple[int, int]:
        cache = max(self.min_cache, min(cache, self.max_cache))
        tracker = max(cache * self.tracker_ratio, self.min_tracker)
        return cache, tracker

    def observe(self, snapshot: EpochSnapshot) -> ResizeDecision:
        """One epoch's decision from the cost/value ledger."""
        cache = snapshot.cache_capacity
        tracker = snapshot.tracker_capacity
        if self._warmup_remaining > 0:
            self._warmup_remaining -= 1
            self.phase = CostPhase.WARMUP
            return ResizeDecision(
                DecisionKind.WARMUP, cache, tracker, note="cost warmup"
            )
        target = self.alpha_target
        if snapshot.alpha_k_c > target * self.hysteresis and cache < self.max_cache:
            new_cache, new_tracker = self._sizes(cache * 2)
            self.phase = CostPhase.EXPANDING
            self._warmup_remaining = self.warmup_epochs
            return ResizeDecision(
                DecisionKind.EXPAND,
                new_cache,
                new_tracker,
                note=(
                    f"marginal alpha_k_c={snapshot.alpha_k_c:.4f} "
                    f"> break-even {target:.4f}"
                ),
            )
        if snapshot.alpha_c < target / self.hysteresis and cache > self.min_cache:
            new_cache, new_tracker = self._sizes(cache // 2)
            self.phase = CostPhase.SHRINKING
            self._warmup_remaining = self.warmup_epochs
            return ResizeDecision(
                DecisionKind.SHRINK,
                new_cache,
                new_tracker,
                note=(
                    f"average alpha_c={snapshot.alpha_c:.4f} "
                    f"< break-even {target:.4f}"
                ),
            )
        self.phase = CostPhase.STEADY
        if snapshot.alpha_k_c > snapshot.alpha_c * (1.0 + self.decay_epsilon):
            return ResizeDecision(
                DecisionKind.DECAY,
                cache,
                tracker,
                decay=True,
                note="tracked lines outscore cached lines",
            )
        return ResizeDecision(DecisionKind.NONE, cache, tracker)

    def __repr__(self) -> str:
        return (
            f"CostAwareController(break_even={self.alpha_target:.4f}, "
            f"phase={self.phase.value})"
        )
