"""The elastic CoT front end: cache + controller + epoch loop, assembled.

:class:`ElasticCoTClient` extends the protocol-level
:class:`~repro.cluster.client.FrontEndClient` with everything Section 4.4
adds on top of the replacement policy:

* it counts accesses and closes an *epoch* every ``E`` accesses, where
  ``E = max(base_epoch, K)`` is re-derived after each resize (Algorithm 3
  line 4 requires ``E >= K`` so resizes never trigger before the tracker
  refills);
* at each epoch end it assembles the :class:`EpochSnapshot` (``I_c`` from
  its private load monitor, ``alpha_c``/``alpha_k_c`` from the CoT cache),
  asks the :class:`~repro.core.resizing.ResizingController` for a decision,
  and applies it (resize / decay / nothing);
* it archives an :class:`EpochRecord` per epoch — the exact series plotted
  in the paper's Figures 7 and 8.

Each front end is fully autonomous: no coordination, no shared state, no
central control plane — the paper's decentralization claim is literal in
this code.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Hashable

from repro.cluster.client import FrontEndClient
from repro.cluster.loadmonitor import load_imbalance
from repro.cluster.cluster import CacheCluster
from repro.cluster.retry import ClusterGuard
from repro.core.cache import CoTCache
from repro.core.decay import DecayPolicy, HalfLifeDecay
from repro.core.epoch import EpochRecord, EpochSnapshot
from repro.core.hotness import HotnessModel
from repro.core.resizing import ResizingController
from repro.errors import ConfigurationError
from repro.obs.trace import Tracer

__all__ = ["ElasticCoTClient"]


class ElasticCoTClient(FrontEndClient):
    """A front end that auto-configures its CoT cache to hit ``I_t``.

    Parameters
    ----------
    cluster:
        shared back-end cluster.
    target_imbalance:
        ``I_t`` — the one administrator-provided input.
    initial_cache / initial_tracker:
        starting sizes; the paper's Figure 7 starts from a deliberately
        tiny cache of 2 lines and tracker of 4 entries.
    base_epoch:
        the administrator's nominal epoch length ``E`` (paper: 5000);
        the effective epoch is ``max(base_epoch, K)``.
    controller:
        a pre-configured controller; one is built from
        ``target_imbalance`` when omitted. Any object with the
        :class:`ResizingController` surface works — ``observe(snapshot)
        -> ResizeDecision`` plus ``phase``/``alpha_target`` attributes —
        e.g. :class:`~repro.core.costaware.CostAwareController`, which
        resizes on memory cost vs. hit value instead of imbalance.
    decay:
        decay policy for Case-2 triggers (default half-life).
    model:
        hotness model for the CoT cache.
    guard:
        retry/breaker layer forwarded to
        :class:`~repro.cluster.client.FrontEndClient`; the chaos
        experiments pass one with tightened thresholds.
    tracer:
        optional sampling request tracer, forwarded to
        :class:`~repro.cluster.client.FrontEndClient` — elastic reads
        trace through the same span tree as plain front-end reads.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        target_imbalance: float = 1.1,
        initial_cache: int = 2,
        initial_tracker: int = 4,
        base_epoch: int = 5000,
        controller: "ResizingController | Any | None" = None,
        decay: DecayPolicy | None = None,
        model: HotnessModel | None = None,
        client_id: str = "elastic-0",
        imbalance_window: int = 32,
        guard: "ClusterGuard | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if base_epoch < 1:
            raise ConfigurationError("base_epoch must be >= 1")
        if imbalance_window < 1:
            raise ConfigurationError("imbalance_window must be >= 1")
        policy = CoTCache(initial_cache, initial_tracker, model=model)
        super().__init__(
            cluster, policy, client_id=client_id, guard=guard, tracer=tracer
        )
        self.cot: CoTCache = policy
        self.controller = controller or ResizingController(
            target_imbalance=target_imbalance
        )
        self.decay_policy = decay or HalfLifeDecay()
        self._base_epoch = base_epoch
        self._epoch_accesses = 0
        self._epoch_index = 0
        # Sliding window of recent per-epoch load snapshots. Summing loads
        # over a few epochs before taking max/min removes the binomial
        # sampling bias that otherwise inflates I_c at small epoch sizes
        # (window=1 reproduces the paper's single-epoch measurement).
        self._imbalance_window = imbalance_window
        self._recent_loads: deque[dict[str, int]] = deque(maxlen=imbalance_window)
        self.history: list[EpochRecord] = []

    # ----------------------------------------------------------- properties

    @property
    def epoch_length(self) -> int:
        """Effective ``E = max(base_epoch, K)``."""
        return max(self._base_epoch, self.cot.tracker_capacity)

    @property
    def epoch_index(self) -> int:
        """Number of completed epochs."""
        return self._epoch_index

    # -------------------------------------------------------------- protocol

    def get(self, key: Hashable) -> Any:
        value = super().get(key)
        self._bump()
        return value

    def set(self, key: Hashable, value: Any) -> None:
        super().set(key, value)
        self._bump()

    def delete(self, key: Hashable) -> None:
        super().delete(key)
        self._bump()

    def _bump(self) -> None:
        self._epoch_accesses += 1
        if self._epoch_accesses >= self.epoch_length:
            self.close_epoch()

    # ------------------------------------------------------------ epoch loop

    def _windowed_imbalance(self) -> tuple[float, int]:
        """``(I_c, sample)`` over loads summed across the recent window.

        Summing a few epochs before taking max/min shrinks the binomial
        sampling bias that inflates single-epoch ratios; the sample size
        lets the controller discount violations measured on too few
        lookups.
        """
        summed: dict[str, int] = {}
        for loads in self._recent_loads:
            for server, count in loads.items():
                summed[server] = summed.get(server, 0) + count
        return load_imbalance(summed), sum(summed.values())

    def _churn_safe_epoch_loads(self) -> dict[str, int]:
        """This epoch's per-shard loads, filtered for topology churn.

        Three classes of shard are excluded so that churn cannot
        fabricate an ``I_c`` spike (and with it a spurious ``EXPAND``):

        * shards no longer on the ring — belt-and-braces on top of the
          removal purge (``CacheCluster.removal_listeners`` →
          :meth:`LoadMonitor.forget_server`), which already drops a
          removed shard's entries so they can neither floor the
          imbalance denominator at 1 nor hand their counts to a later
          shard aliasing the id (a remove→add inside one epoch used to
          splice the fresh shard's partial window onto the dead
          incarnation's counts — a double-count, not workload skew);
        * shards whose circuit breaker is not closed — a shard that died
          mid-epoch contributes a partial count that reflects the
          failure, not workload skew;
        * shards first seen mid-epoch (scale-out joiners, including any
          id reincarnation after :meth:`~repro.cluster.loadmonitor.LoadMonitor.forget_server`)
          — their partial window under-counts until the first full epoch.
        """
        members = set(self.cluster.server_ids)
        unavailable = self.guard.unavailable_servers()
        fresh = self.monitor.epoch_new_servers()
        return {
            server: count
            for server, count in self.monitor.epoch_loads().items()
            if server in members
            and server not in unavailable
            and server not in fresh
        }

    def close_epoch(self) -> EpochRecord:
        """Finish the current epoch: snapshot, decide, apply, archive.

        Normally invoked automatically every ``epoch_length`` accesses;
        experiments may call it directly to flush a final partial epoch.
        """
        epoch_loads = self._churn_safe_epoch_loads()
        if self._recent_loads and set(epoch_loads) != set(self._recent_loads[-1]):
            # Topology changed under us: loads summed across different
            # shard sets are not comparable, so the window restarts.
            self._recent_loads.clear()
        self._recent_loads.append(epoch_loads)
        imbalance, sample = self._windowed_imbalance()
        num_servers = len(epoch_loads) or len(self.monitor.servers)
        if sample > 0 and num_servers > 1:
            # Max/min ratio a perfectly balanced system would show on this
            # finite sample (~3 sigma of the per-shard binomial spread).
            noise_allowance = 1.0 + 3.2 * math.sqrt((num_servers - 1) / sample)
        else:
            noise_allowance = 1.0
        snapshot = EpochSnapshot(
            index=self._epoch_index,
            cache_capacity=self.cot.capacity,
            tracker_capacity=self.cot.tracker_capacity,
            imbalance=imbalance,
            alpha_c=self.cot.alpha_c(),
            alpha_k_c=self.cot.alpha_k_c(),
            accesses=self._epoch_accesses,
            imbalance_sample=sample,
            noise_allowance=noise_allowance,
        )
        decision = self.controller.observe(snapshot)
        if decision.decay:
            self.decay_policy.on_trigger(self.cot)
        if (
            decision.cache_capacity != self.cot.capacity
            or decision.tracker_capacity != self.cot.tracker_capacity
        ):
            self.cot.set_sizes(decision.cache_capacity, decision.tracker_capacity)
            # Loads observed under the old sizes would contaminate the
            # windowed I_c of the new configuration.
            self._recent_loads.clear()
        self.decay_policy.on_epoch(self.cot)
        record = EpochRecord(
            snapshot=snapshot,
            decision=decision.kind.value,
            phase=self.controller.phase.value,
            alpha_target=self.controller.alpha_target,
            new_cache_capacity=self.cot.capacity,
            new_tracker_capacity=self.cot.tracker_capacity,
        )
        self.history.append(record)
        self._epoch_index += 1
        self._epoch_accesses = 0
        self.cot.reset_epoch()
        self.monitor.reset_epoch()
        return record

    # -------------------------------------------------------------- summary

    def converged_sizes(self) -> tuple[int, int]:
        """Current ``(C, K)`` — the auto-configured answer."""
        return self.cot.capacity, self.cot.tracker_capacity

    def recent_imbalance(self) -> float:
        """``I_c`` over the recent-epoch window (steady-state view).

        Unlike :meth:`~repro.cluster.client.FrontEndClient.local_imbalance`
        this excludes warm-up history, so it reflects the currently
        converged configuration.
        """
        imbalance, _sample = self._windowed_imbalance()
        return imbalance

    def __repr__(self) -> str:
        cache, tracker = self.converged_sizes()
        return (
            f"ElasticCoTClient(id={self.client_id!r}, C={cache}, K={tracker}, "
            f"epochs={self._epoch_index}, phase={self.controller.phase.value})"
        )
