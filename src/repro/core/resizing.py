"""CoT's elastic resizing controller (paper Algorithm 3 + Section 5.4).

The controller is **pure decision logic**: it consumes one
:class:`~repro.core.epoch.EpochSnapshot` per epoch and emits a
:class:`ResizeDecision`; applying decisions (actually resizing the cache,
running decay, resetting counters) is the front end's job
(:mod:`repro.core.elastic`). This separation makes the state machine
directly unit-testable with synthetic epoch streams.

The state machine reproduces the behaviour narrated in the paper's
adaptive-resizing evaluation (Figures 7-8):

``RATIO_SEARCH``
    Phase 1 of auto-configuration: the cache size is held fixed while the
    tracker doubles each (post-warm-up) epoch until the observed hit rate
    per cache-line stops improving significantly; the tracker then steps
    back to the last beneficial size (the paper's 16 → 8 dip at epoch 16).
``SIZE_SEARCH``
    Phase 2: cache and tracker double together (binary search, Algorithm 3
    lines 1-5) until ``I_c ≤ I_t``; on success ``alpha_t`` is captured as
    the quality of the cached keys at the moment the target was first met.
``STEADY``
    Algorithm 3's else-branch. Case 1 (both ``alpha_c`` and ``alpha_k_c``
    below ``(1-ε)·alpha_t``): the cached-key quality collapsed — reset the
    ratio to 2:1 and start shrinking. Case 2 (``alpha_c`` low but
    ``alpha_k_c`` healthy): the hot set is rotating — trigger half-life
    decay. Case 3: do nothing. A violated ``I_c > I_t`` re-enters
    ``SIZE_SEARCH`` (doubling), resetting ``alpha_t``.
``SHRINKING``
    Figure 8's path: halve cache and tracker each epoch while the quality
    stays below target and ``I_t`` holds, down to the configured minimum
    sizes; recovery of quality or an ``I_t`` violation exits to ``STEADY``
    / ``SIZE_SEARCH`` respectively.

Every resize is followed by ``warmup_epochs`` observation-only epochs (the
paper uses 5) so decisions are made on settled statistics, and no resize
triggers while ``I_c`` is within ``imbalance_tolerance`` of ``I_t`` (the
paper uses 2%).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.epoch import EpochSnapshot
from repro.errors import ConfigurationError

__all__ = ["Phase", "DecisionKind", "ResizeDecision", "ResizingController"]


class Phase(enum.Enum):
    """Controller state-machine phases."""

    RATIO_SEARCH = "ratio_search"
    SIZE_SEARCH = "size_search"
    STEADY = "steady"
    SHRINKING = "shrinking"


class DecisionKind(enum.Enum):
    """What the controller decided this epoch."""

    NONE = "none"
    WARMUP = "warmup"
    DOUBLE_TRACKER = "double_tracker"
    SETTLE_RATIO = "settle_ratio"
    EXPAND = "expand"
    TARGET_REACHED = "target_reached"
    SHRINK = "shrink"
    RESET_RATIO = "reset_ratio"
    DECAY = "decay"


@dataclass(frozen=True)
class ResizeDecision:
    """The controller's output for one epoch.

    ``cache_capacity``/``tracker_capacity`` are the sizes to use from the
    next epoch on (unchanged values mean "keep"); ``decay`` asks the front
    end to run half-life decay over the tracker.
    """

    kind: DecisionKind
    cache_capacity: int
    tracker_capacity: int
    decay: bool = False
    note: str = ""

    @property
    def resized(self) -> bool:
        """Whether this decision changes any capacity."""
        return self.kind in (
            DecisionKind.DOUBLE_TRACKER,
            DecisionKind.SETTLE_RATIO,
            DecisionKind.EXPAND,
            DecisionKind.SHRINK,
            DecisionKind.RESET_RATIO,
        )


class ResizingController:
    """Decision logic for CoT's elastic cache/tracker sizing.

    Parameters
    ----------
    target_imbalance:
        ``I_t`` — the administrator's only input (paper Section 4.1).
    epsilon:
        the hysteresis constant of Algorithm 3 (``ε <<< 1``): quality is
        "below target" only under ``(1 - epsilon) * alpha_t``.
    imbalance_tolerance:
        no resizing triggers while ``I_c <= I_t * (1 + tolerance)``
        (the paper's "within 2% of I_t").
    warmup_epochs:
        observation-only epochs after every resize (paper: 5).
    ratio_gain_threshold:
        phase-1 significance: doubling the tracker must improve
        ``alpha_c`` by this relative fraction to keep doubling.
    min_alpha_gain:
        absolute floor on "significant" improvement, so near-zero hit
        rates (uniform workloads) don't chase noise.
    min_cache / min_tracker:
        smallest sizes the shrink path may reach (a minimal cache is kept
        alive to detect future workload changes, per the paper).
    max_cache / max_ratio:
        safety rails for the doubling paths.
    """

    def __init__(
        self,
        target_imbalance: float = 1.1,
        epsilon: float = 0.05,
        imbalance_tolerance: float = 0.02,
        warmup_epochs: int = 5,
        ratio_gain_threshold: float = 0.10,
        min_alpha_gain: float = 0.05,
        min_cache: int = 1,
        min_tracker: int = 2,
        max_cache: int = 1 << 20,
        max_ratio: int = 32,
        futility_threshold: float = 0.02,
        futility_rounds: int = 2,
        min_imbalance_sample: int = 0,
    ) -> None:
        if target_imbalance < 1.0:
            raise ConfigurationError("target imbalance must be >= 1.0")
        if not 0 <= epsilon < 1:
            raise ConfigurationError("epsilon must be in [0, 1)")
        if warmup_epochs < 0:
            raise ConfigurationError("warmup_epochs must be >= 0")
        if min_cache < 1 or min_tracker <= min_cache:
            raise ConfigurationError("need min_tracker > min_cache >= 1")
        if max_ratio < 2:
            raise ConfigurationError("max_ratio must be >= 2")
        self.target_imbalance = target_imbalance
        self.epsilon = epsilon
        self.imbalance_tolerance = imbalance_tolerance
        self.warmup_epochs = warmup_epochs
        self.ratio_gain_threshold = ratio_gain_threshold
        self.min_alpha_gain = min_alpha_gain
        self.min_cache = min_cache
        self.min_tracker = min_tracker
        self.max_cache = max_cache
        self.max_ratio = max_ratio
        self.futility_threshold = futility_threshold
        self.futility_rounds = futility_rounds
        self.min_imbalance_sample = min_imbalance_sample

        self.phase = Phase.RATIO_SEARCH
        self.alpha_target = 0.0
        self._warmup_remaining = warmup_epochs
        self._ratio_baseline: float | None = None
        self._ratio_prev_tracker: int | None = None
        self._imbalance_before_expand: float | None = None
        self._futile_expands = 0

    # ----------------------------------------------------------- public api

    @property
    def effective_target(self) -> float:
        """``I_t`` with the no-churn tolerance applied."""
        return self.target_imbalance * (1.0 + self.imbalance_tolerance)

    def observe(self, snapshot: EpochSnapshot) -> ResizeDecision:
        """Consume one epoch summary and decide (the Algorithm 3 step)."""
        if self._warmup_remaining > 0:
            self._warmup_remaining -= 1
            return self._keep(snapshot, DecisionKind.WARMUP, "warming up")
        if self.phase is Phase.RATIO_SEARCH:
            return self._observe_ratio_search(snapshot)
        if self.phase is Phase.SIZE_SEARCH:
            return self._observe_size_search(snapshot)
        if self.phase is Phase.SHRINKING:
            return self._observe_shrinking(snapshot)
        return self._observe_steady(snapshot)

    # ------------------------------------------------------------ internals

    def _keep(
        self, snapshot: EpochSnapshot, kind: DecisionKind, note: str
    ) -> ResizeDecision:
        return ResizeDecision(
            kind, snapshot.cache_capacity, snapshot.tracker_capacity, note=note
        )

    def _resize(
        self,
        kind: DecisionKind,
        cache: int,
        tracker: int,
        note: str,
        decay: bool = False,
    ) -> ResizeDecision:
        cache = max(self.min_cache, min(cache, self.max_cache))
        tracker = max(self.min_tracker, max(tracker, cache * 2))
        self._warmup_remaining = self.warmup_epochs
        return ResizeDecision(kind, cache, tracker, decay=decay, note=note)

    def _quality_below_target(self, alpha: float) -> bool:
        return alpha < (1.0 - self.epsilon) * self.alpha_target

    def _violation(self, snapshot: EpochSnapshot) -> bool:
        """``I_c > I_t`` beyond what sampling noise alone would produce.

        Two guards (both default-off, both vanish at paper scale):

        * the snapshot's ``noise_allowance`` scales the target up by the
          max/min ratio a *perfectly balanced* system would show on the
          same finite lookup sample;
        * ``min_imbalance_sample`` (opt-in) hard-ignores violations
          measured over fewer lookups than that.
        """
        threshold = self.effective_target * max(snapshot.noise_allowance, 1.0)
        if snapshot.imbalance <= threshold:
            return False
        if self.min_imbalance_sample and 0 < snapshot.imbalance_sample < (
            self.min_imbalance_sample
        ):
            return False
        return True

    # Phase 1: discover the tracker:cache ratio for this workload.

    def _observe_ratio_search(self, snapshot: EpochSnapshot) -> ResizeDecision:
        cache, tracker = snapshot.cache_capacity, snapshot.tracker_capacity
        if self._ratio_baseline is None:
            # First settled epoch at the initial ratio: record and double.
            self._ratio_baseline = snapshot.alpha_c
            self._ratio_prev_tracker = tracker
            return self._resize(
                DecisionKind.DOUBLE_TRACKER,
                cache,
                tracker * 2,
                f"ratio probe: K {tracker} -> {tracker * 2}",
            )
        gain = snapshot.alpha_c - self._ratio_baseline
        significant = gain > max(
            self.ratio_gain_threshold * self._ratio_baseline, self.min_alpha_gain
        )
        at_cap = tracker * 2 > self.max_ratio * max(cache, 1)
        if significant and not at_cap:
            self._ratio_baseline = snapshot.alpha_c
            self._ratio_prev_tracker = tracker
            return self._resize(
                DecisionKind.DOUBLE_TRACKER,
                cache,
                tracker * 2,
                f"ratio probe: K {tracker} -> {tracker * 2}",
            )
        # No significant benefit from the last doubling: settle on the
        # previous tracker size (the paper's dip back from 16 to 8).
        settled = self._ratio_prev_tracker or tracker
        self.phase = Phase.SIZE_SEARCH
        self._ratio_baseline = None
        self._ratio_prev_tracker = None
        if settled != tracker:
            return self._resize(
                DecisionKind.SETTLE_RATIO,
                cache,
                settled,
                f"ratio settled at {settled // max(cache, 1)}:1",
            )
        return self._keep(
            snapshot, DecisionKind.SETTLE_RATIO, "ratio settled in place"
        )

    # Phase 2: binary-search the cache size that achieves I_t.

    def _observe_size_search(self, snapshot: EpochSnapshot) -> ResizeDecision:
        if not self._violation(snapshot):
            self.alpha_target = snapshot.alpha_c
            self.phase = Phase.STEADY
            self._imbalance_before_expand = None
            self._futile_expands = 0
            return self._keep(
                snapshot,
                DecisionKind.TARGET_REACHED,
                f"I_c={snapshot.imbalance:.3f} <= I_t; alpha_t={self.alpha_target:.3f}",
            )
        # Futility guard (deviation from the paper, documented in DESIGN.md):
        # with low-skew workloads the measured I_c is dominated by sampling
        # noise that no cache size can remove; if doubling stopped improving
        # I_c for ``futility_rounds`` consecutive expansions, settle instead
        # of doubling forever.
        if self._imbalance_before_expand is not None:
            improvement = self._imbalance_before_expand - snapshot.imbalance
            if improvement < self.futility_threshold * self._imbalance_before_expand:
                self._futile_expands += 1
            else:
                self._futile_expands = 0
        if (
            self._futile_expands >= self.futility_rounds
            or snapshot.cache_capacity >= self.max_cache
        ):
            self.phase = Phase.STEADY
            self.alpha_target = snapshot.alpha_c
            self._imbalance_before_expand = None
            self._futile_expands = 0
            return self._keep(
                snapshot,
                DecisionKind.NONE,
                "expansion no longer reduces I_c; settling at current size",
            )
        ratio = max(
            2, snapshot.tracker_capacity // max(snapshot.cache_capacity, 1)
        )
        new_cache = max(1, snapshot.cache_capacity * 2)
        self.alpha_target = snapshot.alpha_c
        self._imbalance_before_expand = snapshot.imbalance
        return self._resize(
            DecisionKind.EXPAND,
            new_cache,
            new_cache * ratio,
            f"I_c={snapshot.imbalance:.3f} > I_t: C -> {new_cache}",
        )

    # Steady state: Algorithm 3's else-branch.

    def _observe_steady(self, snapshot: EpochSnapshot) -> ResizeDecision:
        if self._violation(snapshot):
            self.phase = Phase.SIZE_SEARCH
            self._imbalance_before_expand = None
            self._futile_expands = 0
            return self._observe_size_search(snapshot)
        cache_low = self._quality_below_target(snapshot.alpha_c)
        tracker_low = self._quality_below_target(snapshot.alpha_k_c)
        if cache_low and tracker_low:
            if snapshot.cache_capacity <= self.min_cache:
                # Already at the negligible floor kept to detect future
                # workload changes; nothing left to shrink.
                return self._keep(
                    snapshot, DecisionKind.NONE, "quality low but at minimum sizes"
                )
            # Case 1: overall quality collapsed — begin the shrink path,
            # first resetting the tracker ratio to 2:1 (Figure 8).
            self.phase = Phase.SHRINKING
            cache = snapshot.cache_capacity
            return self._resize(
                DecisionKind.RESET_RATIO,
                cache,
                max(cache * 2, self.min_tracker),
                "quality collapsed; ratio reset to 2:1 before shrinking",
            )
        if cache_low and not tracker_low:
            # Case 2: the hot set is rotating — decay old hotness.
            return ResizeDecision(
                DecisionKind.DECAY,
                snapshot.cache_capacity,
                snapshot.tracker_capacity,
                decay=True,
                note="tracked keys outperform cached keys: half-life decay",
            )
        # Case 3: cached keys still meet alpha_t — nothing to do.
        return self._keep(snapshot, DecisionKind.NONE, "target met; quality ok")

    # Shrink path: Figure 8's narrative.

    def _observe_shrinking(self, snapshot: EpochSnapshot) -> ResizeDecision:
        if self._violation(snapshot):
            # Shrinking went too far: Algorithm 3 doubles back next epoch.
            self.phase = Phase.SIZE_SEARCH
            return self._observe_size_search(snapshot)
        if not self._quality_below_target(snapshot.alpha_c):
            # Quality recovered to alpha_t: the shrink is complete.
            self.phase = Phase.STEADY
            return self._keep(
                snapshot, DecisionKind.NONE, "alpha recovered; shrink complete"
            )
        if snapshot.cache_capacity <= self.min_cache:
            # Negligible cache retained to detect future workload changes.
            self.phase = Phase.STEADY
            return self._keep(
                snapshot, DecisionKind.NONE, "at minimum sizes; shrink complete"
            )
        new_cache = max(self.min_cache, snapshot.cache_capacity // 2)
        new_tracker = max(self.min_tracker, snapshot.tracker_capacity // 2)
        return self._resize(
            DecisionKind.SHRINK,
            new_cache,
            new_tracker,
            f"shrinking: C -> {new_cache}",
        )
