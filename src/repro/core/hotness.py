"""The dual-cost hotness model of Equation 1.

The paper (Section 4.1) scores each tracked key with

    h_k = k.r_c * r_w  -  k.u_c * u_w

where ``r_c``/``u_c`` count read and update accesses and ``r_w``/``u_w``
weight them. Updates *subtract* hotness because an update invalidates the
key in every front-end cache: a frequently-updated key is a poor caching
candidate no matter how often it is read.

:class:`HotnessModel` holds the weights; :class:`KeyStats` holds the per-key
counters that the tracker stores for each tracked key (8 bytes per node in
the paper's accounting — two counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AccessType", "HotnessModel", "KeyStats"]


class AccessType(enum.Enum):
    """The two access classes the hotness model distinguishes."""

    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class HotnessModel:
    """Weights for the dual-cost hotness formula (Equation 1).

    Parameters
    ----------
    read_weight:
        ``r_w`` — hotness gained per read access. Must be positive.
    update_weight:
        ``u_w`` — hotness lost per update access. Must be non-negative.
        ``0`` degenerates to a pure read-frequency model (the ablation
        baseline in ``benchmarks/bench_ablation_hotness.py``).
    """

    read_weight: float = 1.0
    update_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.read_weight <= 0:
            raise ConfigurationError("read_weight must be > 0")
        if self.update_weight < 0:
            raise ConfigurationError("update_weight must be >= 0")

    def hotness(self, read_count: float, update_count: float) -> float:
        """Evaluate Equation 1 for raw counters."""
        return read_count * self.read_weight - update_count * self.update_weight

    def delta(self, access: AccessType) -> float:
        """Hotness change contributed by one access of type ``access``."""
        if access is AccessType.READ:
            return self.read_weight
        return -self.update_weight


class KeyStats:
    """Per-key tracking metadata: counters plus the running hotness.

    Counters are floats so the half-life decay algorithm (which halves all
    counters) keeps hotness exactly halved as well.

    ``hot`` carries the key's hotness *incrementally*: every access moves
    it by the model's constant delta (``+r_w`` for a read, ``-u_w`` for an
    update), so the data-plane hot path never re-evaluates Equation 1 from
    the counters. The invariant ``hot == hotness(model)`` (up to float
    associativity) is asserted by ``CoTTracker.check_invariants``.

    ``cached`` mirrors membership in the tracker's cached set ``S_c``; the
    tracker maintains it on promote/demote/admit/evict so the fused access
    path can classify a key with the single ``_stats`` dict probe it
    already paid, instead of a second probe into a heap's position map.
    """

    __slots__ = ("read_count", "update_count", "hot", "cached")

    def __init__(
        self,
        read_count: float = 0.0,
        update_count: float = 0.0,
        hot: float | None = None,
    ) -> None:
        self.read_count = read_count
        self.update_count = update_count
        # Default to unit weights (HotnessModel()); a tracker with a
        # custom model re-seeds via ``sync``/``seed_from_hotness``.
        self.hot = read_count - update_count if hot is None else hot
        self.cached = False

    def record(self, access: AccessType) -> None:
        """Bump the counter matching ``access`` (leaves ``hot`` stale).

        Non-hot-path helper kept for direct/standalone use; the tracker
        applies the counter bump and the hotness delta inline instead.
        """
        if access is AccessType.READ:
            self.read_count += 1.0
        else:
            self.update_count += 1.0

    def sync(self, model: HotnessModel) -> float:
        """Recompute ``hot`` from the counters; returns the new value."""
        self.hot = model.hotness(self.read_count, self.update_count)
        return self.hot

    def hotness(self, model: HotnessModel) -> float:
        """Hotness of this key under ``model``, recomputed from counters."""
        return model.hotness(self.read_count, self.update_count)

    def decay(self, factor: float) -> None:
        """Scale both counters (and the running hotness) by ``factor``."""
        self.read_count *= factor
        self.update_count *= factor
        self.hot *= factor

    def seed_from_hotness(self, hotness: float, model: HotnessModel) -> None:
        """Initialize counters so the key's hotness equals ``hotness``.

        Implements the "benefit of the doubt" of Algorithm 1 line 4: a key
        newly admitted to the tracker inherits the evicted key's hotness.
        We express the inherited hotness purely as reads, which reproduces
        the same ``h_k`` under Equation 1.
        """
        self.read_count = max(hotness, 0.0) / model.read_weight
        self.update_count = 0.0
        self.hot = self.read_count * model.read_weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyStats(read_count={self.read_count}, "
            f"update_count={self.update_count}, hot={self.hot}, "
            f"cached={self.cached})"
        )
