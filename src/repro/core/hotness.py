"""The dual-cost hotness model of Equation 1.

The paper (Section 4.1) scores each tracked key with

    h_k = k.r_c * r_w  -  k.u_c * u_w

where ``r_c``/``u_c`` count read and update accesses and ``r_w``/``u_w``
weight them. Updates *subtract* hotness because an update invalidates the
key in every front-end cache: a frequently-updated key is a poor caching
candidate no matter how often it is read.

:class:`HotnessModel` holds the weights; :class:`KeyStats` holds the per-key
counters that the tracker stores for each tracked key (8 bytes per node in
the paper's accounting — two counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AccessType", "HotnessModel", "KeyStats"]


class AccessType(enum.Enum):
    """The two access classes the hotness model distinguishes."""

    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class HotnessModel:
    """Weights for the dual-cost hotness formula (Equation 1).

    Parameters
    ----------
    read_weight:
        ``r_w`` — hotness gained per read access. Must be positive.
    update_weight:
        ``u_w`` — hotness lost per update access. Must be non-negative.
        ``0`` degenerates to a pure read-frequency model (the ablation
        baseline in ``benchmarks/bench_ablation_hotness.py``).
    """

    read_weight: float = 1.0
    update_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.read_weight <= 0:
            raise ConfigurationError("read_weight must be > 0")
        if self.update_weight < 0:
            raise ConfigurationError("update_weight must be >= 0")

    def hotness(self, read_count: float, update_count: float) -> float:
        """Evaluate Equation 1 for raw counters."""
        return read_count * self.read_weight - update_count * self.update_weight

    def delta(self, access: AccessType) -> float:
        """Hotness change contributed by one access of type ``access``."""
        if access is AccessType.READ:
            return self.read_weight
        return -self.update_weight


class KeyStats:
    """Per-key tracking metadata: a read counter and an update counter.

    Counters are floats so the half-life decay algorithm (which halves all
    counters) keeps hotness exactly halved as well.
    """

    __slots__ = ("read_count", "update_count")

    def __init__(self, read_count: float = 0.0, update_count: float = 0.0) -> None:
        self.read_count = read_count
        self.update_count = update_count

    def record(self, access: AccessType) -> None:
        """Bump the counter matching ``access``."""
        if access is AccessType.READ:
            self.read_count += 1.0
        else:
            self.update_count += 1.0

    def hotness(self, model: HotnessModel) -> float:
        """Current hotness of this key under ``model``."""
        return model.hotness(self.read_count, self.update_count)

    def decay(self, factor: float) -> None:
        """Scale both counters by ``factor`` (0 < factor <= 1)."""
        self.read_count *= factor
        self.update_count *= factor

    def seed_from_hotness(self, hotness: float, model: HotnessModel) -> None:
        """Initialize counters so the key's hotness equals ``hotness``.

        Implements the "benefit of the doubt" of Algorithm 1 line 4: a key
        newly admitted to the tracker inherits the evicted key's hotness.
        We express the inherited hotness purely as reads, which reproduces
        the same ``h_k`` under Equation 1.
        """
        self.read_count = max(hotness, 0.0) / model.read_weight
        self.update_count = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyStats(read_count={self.read_count}, update_count={self.update_count})"
