"""The space-saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005).

CoT's tracker is built on space-saving (paper Section 4.2, Algorithm 1).
This module provides the *classic* counter-based sketch with its textbook
guarantees, used directly by the workload-analysis tooling and by tests that
validate the bounds; the CoT-specific two-set variant that additionally
supports the dual-cost hotness model and cache pinning lives in
:mod:`repro.core.tracker`.

Guarantees (for a sketch of ``m`` counters over a stream of length ``N``):

* every key with true frequency > ``N / m`` is in the sketch,
* for every monitored key, ``count - error <= true_count <= count``,
* the per-key overestimation ``error`` never exceeds ``N / m``.

These are exactly the properties the hypothesis suite in
``tests/test_spacesaving.py`` checks against brute-force counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.core.heap import IndexedMinHeap
from repro.errors import ConfigurationError

K = TypeVar("K", bound=Hashable)

__all__ = ["SpaceSaving", "TrackedCount"]


@dataclass(frozen=True)
class TrackedCount(Generic[K]):
    """A monitored key with its (over-)estimated count and error bound."""

    key: K
    count: float
    error: float

    @property
    def guaranteed_count(self) -> float:
        """A lower bound on the key's true frequency."""
        return self.count - self.error


class SpaceSaving(Generic[K]):
    """Classic space-saving sketch with ``capacity`` monitored counters.

    ``offer(key, weight)`` processes one stream item. When the sketch is
    full and an unmonitored key arrives, the minimum-count key is evicted
    and the newcomer inherits its count (recorded as the newcomer's
    ``error``) plus the offered weight.
    """

    __slots__ = ("_capacity", "_heap", "_errors", "_stream_length")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("space-saving capacity must be >= 1")
        self._capacity = capacity
        self._heap: IndexedMinHeap[K] = IndexedMinHeap()
        self._errors: dict[K, float] = {}
        self._stream_length = 0.0

    # ------------------------------------------------------------------ api

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously monitored keys."""
        return self._capacity

    @property
    def stream_length(self) -> float:
        """Total weight offered so far (``N``)."""
        return self._stream_length

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, key: K) -> bool:
        return key in self._heap

    def offer(self, key: K, weight: float = 1.0) -> float:
        """Process one occurrence of ``key``; returns its new count."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._stream_length += weight
        if key in self._heap:
            new_count = self._heap.priority_of(key) + weight
            self._heap.update(key, new_count)
            return new_count
        if len(self._heap) < self._capacity:
            self._heap.push(key, weight)
            self._errors[key] = 0.0
            return weight
        victim, victim_count = self._heap.pop()
        del self._errors[victim]
        new_count = victim_count + weight
        self._heap.push(key, new_count)
        self._errors[key] = victim_count
        return new_count

    def offer_all(self, keys: Iterable[K]) -> None:
        """Process a whole stream of unit-weight occurrences."""
        for key in keys:
            self.offer(key)

    def count_of(self, key: K) -> float:
        """Estimated (over-)count of a monitored key."""
        return self._heap.priority_of(key)

    def error_of(self, key: K) -> float:
        """Overestimation bound recorded when ``key`` entered the sketch."""
        return self._errors[key]

    def entries(self) -> Iterator[TrackedCount[K]]:
        """All monitored keys, in arbitrary order."""
        for key, count in self._heap.items():
            yield TrackedCount(key, count, self._errors[key])

    def top(self, k: int) -> list[TrackedCount[K]]:
        """The ``k`` highest-count monitored keys, descending by count."""
        ordered = sorted(self.entries(), key=lambda e: (-e.count, e.error))
        return ordered[:k]

    def frequent(self, phi: float) -> list[TrackedCount[K]]:
        """Keys whose estimated count exceeds ``phi * stream_length``.

        This is the epsilon-approximate frequent-elements query: the result
        contains every key with true frequency above the threshold (no false
        negatives) and may contain keys whose true frequency is above
        ``(phi - 1/capacity) * N``.
        """
        if not 0 < phi < 1:
            raise ValueError("phi must be in (0, 1)")
        threshold = phi * self._stream_length
        return [e for e in self.entries() if e.count > threshold]

    def min_count(self) -> float:
        """The smallest monitored count (0 when the sketch is not full)."""
        if len(self._heap) < self._capacity:
            return 0.0
        return self._heap.min_priority()

    def clear(self) -> None:
        """Forget everything, including the stream length."""
        self._heap.clear()
        self._errors.clear()
        self._stream_length = 0.0
