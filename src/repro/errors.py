"""Exception hierarchy for the CoT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Programming errors (bad arguments) raise standard
``ValueError``/``TypeError`` subclasses of these where that is more idiomatic.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed or reconfigured with invalid parameters."""


class CapacityError(ReproError):
    """An operation would violate a structure's capacity invariants."""


class KeyNotTrackedError(ReproError, KeyError):
    """A tracker operation referenced a key that is not currently tracked."""


class ClusterError(ReproError):
    """A back-end cluster operation failed (unknown server, empty ring...)."""


class ShardFailure(ClusterError):
    """Base class for *injected* shard failures (transient by contract).

    Raised by fault injection on the shard side of a request; the retry
    layer treats every subclass as retryable and feeds it to the owning
    circuit breaker.
    """


class ShardDownError(ShardFailure):
    """The shard is killed (instance failure / migration in progress)."""


class ShardTimeoutError(ShardFailure):
    """The shard is so slowed down that the client's request timer fired."""


class ShardFlakyError(ShardFailure):
    """A probabilistic (flaky-network / partial-failure) error."""


class ProtocolError(ClusterError):
    """A wire-protocol exchange was malformed (net plane, non-retryable).

    Raised client-side when a shard server answers ``ERROR`` /
    ``CLIENT_ERROR`` or the response stream cannot be parsed. Unlike
    :class:`ShardFailure` this is a programming/config error, not a
    transient fault — the retry layer must *not* retry it.
    """


class ShardUnavailableError(ClusterError):
    """The retry layer gave up on a shard for this operation.

    Raised client-side when the shard's circuit breaker is open or bounded
    retries were exhausted; callers degrade gracefully (storage fallback)
    instead of crashing.
    """


class WorkloadExhausted(ReproError):
    """A bounded workload was asked for more keys than it contains.

    Raised by generators with a finite total length (e.g. a
    :class:`~repro.workloads.shift.PhasedWorkload` whose final phase has a
    finite ``length``) when ``next_key``/``keys_array`` overrun the budget.
    Silent overrun would keep drawing from the final phase forever, quietly
    distorting phase accounting in elasticity experiments.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad scale."""
