"""FNV hash functions as implemented in YCSB's ``Utils`` class.

YCSB's ScrambledZipfianGenerator spreads the head of a Zipfian distribution
across the key space with ``FNVhash64``; reproducing the generator bug-for-
bug (the paper's fifth contribution reports the resulting skew loss)
requires the exact same hash, including YCSB's quirk of folding the
*signed* 64-bit value through ``Math.abs``.
"""

from __future__ import annotations

__all__ = ["fnv_hash64", "fnv_hash32", "FNV_OFFSET_BASIS_64", "FNV_PRIME_64"]

FNV_OFFSET_BASIS_32 = 0x811C9DC5
FNV_PRIME_32 = 16777619

FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 1099511628211

_MASK_64 = (1 << 64) - 1
_MASK_32 = (1 << 32) - 1


def _to_signed_64(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as Java's signed long."""
    value &= _MASK_64
    return value - (1 << 64) if value >= (1 << 63) else value


def fnv_hash64(value: int) -> int:
    """YCSB's ``FNVhash64``: byte-wise FNV-1a over the 8 little-end bytes.

    Mirrors the Java implementation exactly: the input long is consumed one
    low byte at a time (``val & 0xff`` then ``val >>= 8``), each round doing
    ``hash ^= octet; hash *= PRIME`` in wrapping 64-bit arithmetic, and the
    result is returned as ``Math.abs`` of the signed value.
    """
    val = value & _MASK_64
    hashval = FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = val & 0xFF
        val >>= 8
        hashval ^= octet
        hashval = (hashval * FNV_PRIME_64) & _MASK_64
    return abs(_to_signed_64(hashval))


def fnv_hash32(value: int) -> int:
    """YCSB's ``FNVhash32`` (same structure over 4 bytes)."""
    val = value & _MASK_32
    hashval = FNV_OFFSET_BASIS_32
    for _ in range(4):
        octet = val & 0xFF
        val >>= 8
        hashval ^= octet
        hashval = (hashval * FNV_PRIME_32) & _MASK_32
    signed = hashval - (1 << 32) if hashval >= (1 << 31) else hashval
    return abs(signed)
