"""Deterministic per-task seed derivation for parallel execution.

When the engine fans work across processes, every task's randomness must
be a pure function of *which task it is* — never of which worker happens
to execute it, or in what order tasks complete. :func:`spawn_seed`
implements a SplitMix64-style derivation: the root seed advances by the
64-bit golden-ratio increment once per task index and is passed through
SplitMix64's finalizer (Steele, Lea & Flood, "Fast splittable
pseudorandom number generators", OOPSLA 2014). The finalizer's avalanche
behavior means adjacent task indices (0, 1, 2, …) produce statistically
independent seeds, so sweeps can number their tasks naively.

The experiment specs themselves pin *explicit* seeds (``scale.seed`` plus
documented per-client offsets) because their outputs are golden-file
byte-pinned; :func:`spawn_seed` is the derivation primitive for work that
needs fresh independent streams per task — benchmarks, ad-hoc sweeps,
and any future experiment that fans unpinned tasks.
"""

from __future__ import annotations

__all__ = ["derive_seeds", "spawn_seed"]

_MASK64 = (1 << 64) - 1
#: 2^64 / golden ratio — SplitMix64's stream increment ("gamma").
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def spawn_seed(root: int, task_index: int) -> int:
    """Derive task ``task_index``'s 64-bit seed from ``root``.

    Pure function of ``(root, task_index)``: the same task always gets
    the same seed no matter which worker runs it, and distinct tasks get
    avalanche-independent seeds even for adjacent indices. ``task_index``
    must be >= 0; ``root`` may be any int (it is reduced mod 2^64).
    """
    if task_index < 0:
        raise ValueError("task_index must be >= 0")
    z = (root + (task_index + 1) * _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seeds(root: int, count: int) -> list[int]:
    """Seeds for tasks ``0 .. count-1`` (convenience over :func:`spawn_seed`)."""
    return [spawn_seed(root, index) for index in range(count)]
