"""Trace recording and replay.

Real deployments tune CoT against production traces; this module gives the
library a trace format so experiments can be frozen to disk and replayed
deterministically (e.g. to compare policies on the *identical* access
sequence rather than on re-sampled streams).

Format: one operation per line, ``<op> <key_id>``, where ``op`` is ``r``
(read) or ``u`` (update). Plain text keeps traces diffable and trivially
greppable; gzip-compress externally if needed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator
from repro.workloads.request import OpType, Request
from repro.workloads.base import format_key, parse_key

__all__ = ["record_trace", "replay_trace", "TraceGenerator"]

_OP_CODES = {OpType.GET: "r", OpType.SET: "u", OpType.DELETE: "d"}
_CODE_OPS = {"r": OpType.GET, "u": OpType.SET, "d": OpType.DELETE}


def record_trace(path: str | Path, requests: Iterable[Request]) -> int:
    """Write ``requests`` to ``path``; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for request in requests:
            code = _OP_CODES[request.op]
            fh.write(f"{code} {parse_key(request.key)}\n")
            count += 1
    return count


def replay_trace(path: str | Path) -> Iterator[Request]:
    """Stream :class:`Request` objects back from a trace file."""
    with open(path, "r", encoding="ascii") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                code, raw_id = line.split()
                op = _CODE_OPS[code]
                key_id = int(raw_id)
            except (ValueError, KeyError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_no}: malformed trace line {line!r}"
                ) from exc
            value = (key_id, line_no) if op is OpType.SET else None
            yield Request(op, format_key(key_id), value=value)


class TraceGenerator(KeyGenerator):
    """Adapt a recorded trace's key ids back into a :class:`KeyGenerator`.

    Reads (and updates) are flattened to a pure key stream; raises
    ``StopIteration`` past the end of the trace, so callers control length.
    """

    name = "trace"

    def __init__(self, path: str | Path, key_space: int) -> None:
        super().__init__(key_space)
        self._iterator = replay_trace(path)
        self._path = str(path)

    def next_key(self) -> int:
        request = next(self._iterator)
        return parse_key(request.key)

    def describe(self) -> str:
        return f"trace({self._path})"
