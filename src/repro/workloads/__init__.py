"""YCSB-style workload generation, re-implemented from the YCSB sources.

Includes the honest :class:`~repro.workloads.zipfian.ZipfianGenerator` the
paper switched to, the buggy
:class:`~repro.workloads.scrambled.ScrambledZipfianGenerator` it switched
*away from* (bug preserved for reproduction), uniform/hotspot/latest/
Gaussian generators, read-update mixing at Tao's 99.8/0.2 ratio, workload
phase schedules for the elasticity experiments, trace record/replay, and
analytical tooling (TPC hit rates, Zipf exponent estimation).
"""

from repro.workloads.analytical import (
    estimate_zipf_exponent,
    frequency_ranking,
    head_mass,
    tpc_hit_rate,
)
from repro.workloads.base import KEY_PREFIX, KeyGenerator, format_key, parse_key
from repro.workloads.fnv import fnv_hash32, fnv_hash64
from repro.workloads.gaussian import GaussianGenerator
from repro.workloads.hotspot import HotspotGenerator
from repro.workloads.latest import SkewedLatestGenerator
from repro.workloads.mixer import TAO_READ_FRACTION, OperationMixer
from repro.workloads.request import OpType, Request
from repro.workloads.scrambled import ScrambledZipfianGenerator
from repro.workloads.shift import Phase, PhasedWorkload, RotatingHotSetGenerator
from repro.workloads.trace import TraceGenerator, record_trace, replay_trace
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import (
    ZIPFIAN_CONSTANT,
    ZipfianGenerator,
    zeta,
    zipf_cdf,
    zipf_pmf,
)

__all__ = [
    "KEY_PREFIX",
    "KeyGenerator",
    "format_key",
    "parse_key",
    "fnv_hash32",
    "fnv_hash64",
    "ZipfianGenerator",
    "ZIPFIAN_CONSTANT",
    "zeta",
    "zipf_cdf",
    "zipf_pmf",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "HotspotGenerator",
    "SkewedLatestGenerator",
    "GaussianGenerator",
    "OpType",
    "Request",
    "OperationMixer",
    "TAO_READ_FRACTION",
    "Phase",
    "PhasedWorkload",
    "RotatingHotSetGenerator",
    "TraceGenerator",
    "record_trace",
    "replay_trace",
    "estimate_zipf_exponent",
    "frequency_ranking",
    "head_mass",
    "tpc_hit_rate",
]
