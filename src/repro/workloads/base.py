"""Base class and shared helpers for YCSB-style key generators.

The paper drives all experiments with YCSB (Cooper et al., SoCC 2010)
generators; this subpackage re-implements them from the YCSB sources so
that the distributions — including the ScrambledZipfian bug the paper
reports — are faithfully reproduced without a JVM.

Keys are integer ids in ``[0, key_space)``; the paper's string keys
(``"usertable:<id>"``) are produced by :func:`format_key` at the protocol
layer so the hash ring sees realistic byte strings.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = ["KeyGenerator", "format_key", "parse_key", "KEY_PREFIX"]

#: The key prefix used by YCSB's core workloads and quoted in the paper.
KEY_PREFIX = "usertable:"


def format_key(key_id: int) -> str:
    """Render an integer key id as the paper's wire-format key string."""
    return f"{KEY_PREFIX}{key_id}"


def parse_key(key: str) -> int:
    """Inverse of :func:`format_key`."""
    if not key.startswith(KEY_PREFIX):
        raise ValueError(f"not a workload key: {key!r}")
    return int(key[len(KEY_PREFIX):])


class KeyGenerator(abc.ABC):
    """A seeded stream of integer key ids over ``[0, key_space)``.

    Subclasses implement :meth:`next_key`; determinism comes from the
    per-instance ``random.Random`` seeded at construction, so experiments
    are exactly repeatable and two generators with the same seed produce
    identical streams.
    """

    #: short name used in experiment tables ("zipfian", "uniform", ...)
    name: str = "base"

    def __init__(self, key_space: int, seed: int | None = None) -> None:
        if key_space < 1:
            raise ConfigurationError("key_space must be >= 1")
        self._key_space = key_space
        self._rng = random.Random(seed)

    @property
    def key_space(self) -> int:
        """Number of distinct keys this generator can emit."""
        return self._key_space

    @abc.abstractmethod
    def next_key(self) -> int:
        """Draw the next key id."""

    def keys(self, n: int) -> Iterator[int]:
        """Yield ``n`` key ids."""
        for _ in range(n):
            yield self.next_key()

    def keys_array(self, n: int) -> list[int]:
        """Draw ``n`` key ids as a list (batch API).

        Produces exactly the stream ``n`` ``next_key`` calls would (same
        RNG consumption), materialized so hot loops can iterate a plain
        list. Subclasses with a closed-form draw override this with a
        loop-hoisted version; this default merely avoids generator
        resumption overhead.
        """
        next_key = self.next_key
        return [next_key() for _ in range(n)]

    def describe(self) -> str:
        """Human-readable parameterization for experiment logs."""
        return f"{self.name}(n={self._key_space})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
