"""Operation mixing: key streams → request streams.

The paper's experiments are "read intensive workloads that follow Tao's
read-to-write ratio of 99.8% reads and 0.2% updates" (Section 5.1).
:class:`OperationMixer` draws keys from any :class:`KeyGenerator` and
classifies each as a read or an update according to that ratio, producing
:class:`~repro.workloads.request.Request` objects with wire-format keys.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator, format_key
from repro.workloads.request import OpType, Request

__all__ = ["OperationMixer", "TAO_READ_FRACTION"]

#: Facebook Tao's measured read share, used throughout the paper.
TAO_READ_FRACTION = 0.998


class OperationMixer:
    """Mix reads and updates over a key generator's stream.

    Parameters
    ----------
    generator:
        source of key ids.
    read_fraction:
        probability that an operation is a ``GET`` (default: Tao's 0.998).
    value_size:
        nominal size in bytes of written values; the mixer synthesizes
        lightweight value descriptors (``(key_id, version)`` tuples tagged
        with a size) rather than real 750 KB payloads so paper-scale runs
        fit in memory, while byte accounting downstream stays faithful.
    seed:
        seed for the read/update coin, independent of the key stream.
    """

    __slots__ = ("_generator", "_read_fraction", "_value_size", "_rng", "_version")

    def __init__(
        self,
        generator: KeyGenerator,
        read_fraction: float = TAO_READ_FRACTION,
        value_size: int = 750 * 1024,
        seed: int | None = None,
    ) -> None:
        if not 0 <= read_fraction <= 1:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if value_size < 0:
            raise ConfigurationError("value_size must be >= 0")
        self._generator = generator
        self._read_fraction = read_fraction
        self._value_size = value_size
        self._rng = random.Random(seed)
        self._version = 0

    @property
    def generator(self) -> KeyGenerator:
        """The underlying key generator."""
        return self._generator

    @property
    def read_fraction(self) -> float:
        """Probability of a GET per operation."""
        return self._read_fraction

    @property
    def value_size(self) -> int:
        """Nominal written-value size in bytes."""
        return self._value_size

    def next_request(self) -> Request:
        """Draw one operation."""
        key_id = self._generator.next_key()
        key = format_key(key_id)
        if self._rng.random() < self._read_fraction:
            return Request(OpType.GET, key)
        self._version += 1
        return Request(OpType.SET, key, value=(key_id, self._version))

    def next_requests(self, n: int) -> list[Request]:
        """Draw ``n`` operations as a list (batch API).

        Produces exactly the stream ``n`` ``next_request`` calls would:
        the key stream and the read/update coin come from *independent*
        RNGs, so drawing ``n`` keys first (via the generator's batched
        ``keys_array``) and then classifying them consumes both streams
        in the same per-RNG order as the one-at-a-time path.
        """
        rnd = self._rng.random
        read_fraction = self._read_fraction
        get = OpType.GET
        requests: list[Request] = []
        append = requests.append
        for key_id in self._generator.keys_array(n):
            key = format_key(key_id)
            if rnd() < read_fraction:
                append(Request(get, key))
            else:
                self._version += 1
                append(Request(OpType.SET, key, value=(key_id, self._version)))
        return requests

    def requests(self, n: int) -> Iterator[Request]:
        """Yield ``n`` operations."""
        for _ in range(n):
            yield self.next_request()

    def describe(self) -> str:
        """Human-readable parameterization for experiment logs."""
        return (
            f"mix(reads={self._read_fraction:.3%}, "
            f"over={self._generator.describe()})"
        )
