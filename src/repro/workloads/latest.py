"""Skewed-latest generator (YCSB ``SkewedLatestGenerator``).

Recency-skewed access: the most recently *inserted* key is the hottest,
with Zipfian fall-off over insertion recency. This models feeds/timelines
and is the canonical "hot set drifts over time" workload — ideal for
exercising CoT's old-trend retirement (half-life decay, Algorithm 3
Case 2), since yesterday's hottest key keeps cooling as new keys arrive.
"""

from __future__ import annotations

from repro.workloads.base import KeyGenerator
from repro.workloads.zipfian import ZIPFIAN_CONSTANT, ZipfianGenerator

__all__ = ["SkewedLatestGenerator"]


class SkewedLatestGenerator(KeyGenerator):
    """Zipf over recency: key ``latest - rank`` for Zipf-drawn ``rank``.

    ``advance()`` simulates an insertion, shifting the hot spot to the new
    latest key. Without calls to ``advance`` the distribution is a static
    Zipfian anchored at ``key_space - 1``.
    """

    name = "latest"

    def __init__(
        self,
        key_space: int,
        theta: float = ZIPFIAN_CONSTANT,
        seed: int | None = None,
    ) -> None:
        super().__init__(key_space, seed)
        self._zipf = ZipfianGenerator(key_space, theta=theta, seed=seed)
        self._latest = key_space - 1

    @property
    def latest(self) -> int:
        """Id of the most recently inserted key (the current hottest)."""
        return self._latest

    def advance(self, count: int = 1) -> int:
        """Simulate ``count`` insertions; returns the new latest id.

        The key space wraps (ids are reused modulo ``key_space``) so long
        simulations keep a bounded universe, matching how the experiment
        harness replays trend drift.
        """
        self._latest = (self._latest + count) % self._key_space
        return self._latest

    def next_key(self) -> int:
        rank = self._zipf.next_key()
        return (self._latest - rank) % self._key_space

    def describe(self) -> str:
        return f"latest(n={self._key_space}, s={self._zipf.theta:g})"
