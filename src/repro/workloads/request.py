"""Request model: the operations front ends receive from end users.

The paper's API (Section 2) is ``get``/``set``/``delete``; workload mixers
emit streams of :class:`Request` objects with Tao's read-to-write ratio
(99.8% reads / 0.2% updates) by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OpType", "Request"]


class OpType(enum.Enum):
    """Operation classes of the key/value API."""

    GET = "get"
    SET = "set"
    DELETE = "delete"

    @property
    def is_read(self) -> bool:
        """True for operations served by the read path."""
        return self is OpType.GET


@dataclass(frozen=True, slots=True)
class Request:
    """One end-user-originated key/value operation.

    ``key`` is the wire-format string key; ``value`` carries the payload of
    ``SET`` operations (``None`` for reads/deletes). Slotted: mixers emit
    one instance per operation, so the per-object dict is the single
    largest allocation on the request-generation path.
    """

    op: OpType
    key: str
    value: object | None = None

    @property
    def is_read(self) -> bool:
        """True when the request is a ``GET``."""
        return self.op.is_read
