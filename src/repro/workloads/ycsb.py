"""YCSB core workloads (A-F), as the paper's experiments consume them.

Section 5.1: "Our experiments use different variations of YCSB core
workloads." This module reproduces the YCSB ``CoreWorkload`` operation
mixes over this package's generators so any experiment can swap in a
standard workload letter:

========  ====================================  =====================
workload  mix                                   example application
========  ====================================  =====================
A         50% read / 50% update                 session store
B         95% read / 5% update                  photo tagging
C         100% read                             user-profile cache
D         95% read / 5% insert, latest-skewed   status updates
E         95% scan / 5% insert                  threaded conversations
F         50% read / 50% read-modify-write      user database
========  ====================================  =====================

Deviations from the Java implementation, by necessity of the paper's
key/value API (get/set/delete only):

* workload E's scans are emitted as :class:`ScanRequest` — a multi-get
  over ``scan_length`` consecutive key ids — which the front-end client
  maps onto its ``get_many`` path;
* inserts extend the key space; the Zipfian generator grows
  incrementally (``ZipfianGenerator.grow``), exactly as YCSB does.

The paper's own experiments are read-intensive variants (Tao's 99.8/0.2
ratio over workload-B-like mixes); the full A-F set makes the harness
reusable beyond the paper's configurations.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator, format_key
from repro.workloads.latest import SkewedLatestGenerator
from repro.workloads.request import OpType, Request
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZIPFIAN_CONSTANT, ZipfianGenerator

__all__ = [
    "CoreWorkload",
    "ScanRequest",
    "WorkloadLetter",
    "YcsbOperationSource",
]


@dataclass(frozen=True)
class ScanRequest:
    """Workload E's scan: read ``count`` consecutive keys from ``start``.

    ``count`` is already clipped to the key space by the workload that
    emitted the scan, so consumers can expand it blindly.
    """

    start_key_id: int
    count: int

    def keys(self, key_space: int | None = None) -> list[str]:
        """The wire-format keys this scan touches."""
        end = self.start_key_id + self.count
        if key_space is not None:
            end = min(end, key_space)
        return [format_key(i) for i in range(self.start_key_id, end)]


class WorkloadLetter(enum.Enum):
    """The six YCSB core workloads."""

    A = "a"
    B = "b"
    C = "c"
    D = "d"
    E = "e"
    F = "f"


#: (read, update, insert, scan, read-modify-write) proportions per letter.
_MIXES: dict[WorkloadLetter, tuple[float, float, float, float, float]] = {
    WorkloadLetter.A: (0.50, 0.50, 0.00, 0.00, 0.00),
    WorkloadLetter.B: (0.95, 0.05, 0.00, 0.00, 0.00),
    WorkloadLetter.C: (1.00, 0.00, 0.00, 0.00, 0.00),
    WorkloadLetter.D: (0.95, 0.00, 0.05, 0.00, 0.00),
    WorkloadLetter.E: (0.00, 0.00, 0.05, 0.95, 0.00),
    WorkloadLetter.F: (0.50, 0.00, 0.00, 0.00, 0.50),
}


class CoreWorkload:
    """A YCSB core workload over this package's generators.

    Parameters
    ----------
    letter:
        which core workload (:class:`WorkloadLetter` or ``"a"``..``"f"``).
    record_count:
        initial key-space size.
    request_distribution:
        ``"zipfian"`` (default; workload D forces ``"latest"``),
        ``"uniform"``, or ``"latest"``.
    theta:
        skew for the zipfian/latest distributions.
    max_scan_length:
        workload E's scans draw uniformly from ``[1, max_scan_length]``.
    seed:
        master seed; all internal generators derive from it.
    """

    def __init__(
        self,
        letter: WorkloadLetter | str = WorkloadLetter.B,
        record_count: int = 100_000,
        request_distribution: str = "zipfian",
        theta: float = ZIPFIAN_CONSTANT,
        max_scan_length: int = 100,
        seed: int | None = None,
    ) -> None:
        if isinstance(letter, str):
            try:
                letter = WorkloadLetter(letter.lower())
            except ValueError:
                raise ConfigurationError(
                    f"unknown workload letter: {letter!r}"
                ) from None
        if record_count < 1:
            raise ConfigurationError("record_count must be >= 1")
        if max_scan_length < 1:
            raise ConfigurationError("max_scan_length must be >= 1")
        self.letter = letter
        self._record_count = record_count
        self._max_scan_length = max_scan_length
        self._rng = random.Random(seed)
        self._version = 0
        if letter is WorkloadLetter.D:
            request_distribution = "latest"
        self._distribution_name = request_distribution
        self._generator = self._build_generator(
            request_distribution, record_count, theta, seed
        )
        self.operations = dict(
            zip(("read", "update", "insert", "scan", "rmw"), _MIXES[letter])
        )

    @staticmethod
    def _build_generator(
        name: str, record_count: int, theta: float, seed: int | None
    ) -> KeyGenerator:
        derived = None if seed is None else seed + 1
        if name == "zipfian":
            return ZipfianGenerator(record_count, theta=theta, seed=derived)
        if name == "latest":
            return SkewedLatestGenerator(record_count, theta=theta, seed=derived)
        if name == "uniform":
            return UniformGenerator(record_count, seed=derived)
        raise ConfigurationError(f"unknown request distribution: {name!r}")

    # ----------------------------------------------------------- properties

    @property
    def record_count(self) -> int:
        """Current key-space size (grows with inserts)."""
        return self._record_count

    @property
    def distribution(self) -> str:
        """The request distribution in effect."""
        return self._distribution_name

    # ------------------------------------------------------------ operation

    def _next_value(self, key_id: int) -> tuple[int, int]:
        self._version += 1
        return (key_id, self._version)

    def _insert(self) -> Request:
        key_id = self._record_count
        self._record_count += 1
        if isinstance(self._generator, ZipfianGenerator):
            self._generator.grow(self._record_count)
        elif isinstance(self._generator, SkewedLatestGenerator):
            self._generator.advance()
        return Request(OpType.SET, format_key(key_id), self._next_value(key_id))

    def next_operation(self) -> Request | ScanRequest:
        """Draw one operation according to the workload's mix."""
        roll = self._rng.random()
        read, update, insert, scan, _rmw = _MIXES[self.letter]
        if roll < read:
            return Request(OpType.GET, format_key(self._draw_key()))
        roll -= read
        if roll < update:
            key_id = self._draw_key()
            return Request(OpType.SET, format_key(key_id), self._next_value(key_id))
        roll -= update
        if roll < insert:
            return self._insert()
        roll -= insert
        if roll < scan:
            start = self._draw_key()
            length = self._rng.randint(1, self._max_scan_length)
            length = min(length, self._record_count - start)
            return ScanRequest(start, max(length, 1))
        # Read-modify-write is emitted as the read half; callers follow up
        # with :meth:`modify` using the value they read (YCSB semantics).
        return Request(OpType.GET, format_key(self._draw_key()))

    def _draw_key(self) -> int:
        key_id = self._generator.next_key()
        # Inserts may outpace a uniform generator's fixed space; clip.
        return min(key_id, self._record_count - 1)

    def modify(self, key: str) -> Request:
        """The write half of a read-modify-write on ``key``."""
        return Request(OpType.SET, key, self._next_value(-1))

    def is_rmw_read(self, roll_check: Request | ScanRequest) -> bool:
        """Whether workload F semantics expect a follow-up modify.

        Workload F's reads are all RMW reads; other letters never are.
        """
        return self.letter is WorkloadLetter.F and isinstance(
            roll_check, Request
        ) and roll_check.op is OpType.GET

    def operations_stream(self, n: int) -> Iterator[Request | ScanRequest]:
        """Yield ``n`` operations (RMW follow-ups not included)."""
        for _ in range(n):
            yield self.next_operation()

    def describe(self) -> str:
        """Human-readable parameterization."""
        return (
            f"ycsb-{self.letter.value}({self._distribution_name}, "
            f"records={self._record_count:,})"
        )


class YcsbOperationSource:
    """Adapt :class:`CoreWorkload` to the engine's mixer drive contract.

    The runners drive any ``WorkloadSpec.mixer_factory`` product through
    ``next_requests(n)`` → ``FrontEndClient.execute`` — the same surface
    as :class:`~repro.workloads.mixer.OperationMixer`. This adapter
    fills that contract from a YCSB core workload, which
    :class:`OperationMixer` cannot express (inserts, scans,
    read-modify-write).

    Workload F's read-modify-write is the one impedance mismatch: the
    workload emits the read half and expects the caller to follow up
    with :meth:`CoreWorkload.modify`. The adapter queues that write half
    and emits it as the *next* operation in the stream, so a batch of
    ``n`` requests is exactly ``n`` operations with reads and their
    paired writes interleaved in YCSB order (the write half may roll
    into the following batch).
    """

    __slots__ = ("workload", "_pending")

    def __init__(self, workload: CoreWorkload) -> None:
        self.workload = workload
        self._pending: list[Request] = []

    def next_requests(self, n: int) -> list[Request | ScanRequest]:
        """Draw exactly ``n`` operations, RMW write halves included."""
        out: list[Request | ScanRequest] = []
        while len(out) < n:
            if self._pending:
                out.append(self._pending.pop(0))
                continue
            op = self.workload.next_operation()
            if self.workload.is_rmw_read(op):
                self._pending.append(self.workload.modify(op.key))
            out.append(op)
        return out

    def describe(self) -> str:
        """Human-readable parameterization for experiment logs."""
        return self.workload.describe()
