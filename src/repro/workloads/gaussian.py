"""Gaussian key generator.

Section 3 of the paper notes that "key hotness can follow different
distributions such as Gaussian or different variations of Zipfian"; this
generator provides the Gaussian case so the hit-rate harness can evaluate
policies beyond the Zipfian family. Hotness is concentrated around a
configurable center with standard deviation ``sigma``; draws outside the
key space are re-sampled (truncated Gaussian).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator

__all__ = ["GaussianGenerator"]


class GaussianGenerator(KeyGenerator):
    """Truncated-Gaussian key ids centered on ``center``.

    Parameters
    ----------
    key_space:
        number of keys.
    center:
        mean key id; defaults to the middle of the space.
    sigma:
        standard deviation in key ids; defaults to 1% of the space
        (a strongly concentrated hot region).
    """

    name = "gaussian"

    def __init__(
        self,
        key_space: int,
        center: int | None = None,
        sigma: float | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(key_space, seed)
        self._center = key_space // 2 if center is None else center
        self._sigma = max(key_space * 0.01, 1.0) if sigma is None else sigma
        if not 0 <= self._center < key_space:
            raise ConfigurationError("center must lie inside the key space")
        if self._sigma <= 0:
            raise ConfigurationError("sigma must be > 0")

    def next_key(self) -> int:
        while True:
            draw = int(round(self._rng.gauss(self._center, self._sigma)))
            if 0 <= draw < self._key_space:
                return draw

    def describe(self) -> str:
        return (
            f"gaussian(n={self._key_space}, center={self._center}, "
            f"sigma={self._sigma:g})"
        )
