"""YCSB's ``ZipfianGenerator`` (Gray et al.'s "Quickly generating
billion-record synthetic databases" rejection-free algorithm).

This is the generator the paper uses after discovering that YCSB's
ScrambledZipfian variant under-delivers skew: rank ``i`` (0-based) is drawn
with probability proportional to ``1 / (i + 1)^s``, so rank 0 is the
hottest key. The implementation is a faithful port of YCSB's Java class,
including the ``zeta`` bookkeeping that allows the item count to grow
incrementally.
"""

from __future__ import annotations

import math
import os

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator

__all__ = ["ZipfianGenerator", "zeta", "zipf_pmf", "zipf_cdf"]

#: YCSB's default skew ("the" Zipfian constant).
ZIPFIAN_CONSTANT = 0.99


#: Memo for full-series ``zeta(n, theta)`` sums. Every generator, pmf and
#: TPC-curve evaluation over the same ``(key_space, theta)`` pair used to
#: re-pay the O(n) summation; experiments construct dozens of generators
#: over a handful of such pairs, so a small module-level memo removes the
#: dominant setup cost. Bounded so pathological sweeps cannot grow it
#: without limit.
#:
#: The memo is strictly **per-process**: ``_ZETA_MEMO_OWNER`` records the
#: pid that owns the current contents and :func:`_zeta_memo` resets the
#: dict whenever it is consulted from a different pid — so a fork-started
#: worker never *shares mutation* with (or trusts stale state from) its
#: parent, and spawn-started workers lazily rebuild from empty. Entries
#: are pure functions of ``(n, theta)``, so every process converges to
#: identical values regardless of start method.
_ZETA_MEMO: dict[tuple[int, float], float] = {}
_ZETA_MEMO_MAX = 1024
_ZETA_MEMO_OWNER = os.getpid()


def _zeta_memo() -> dict[tuple[int, float], float]:
    """This process's zeta memo (lazily re-initialized after fork)."""
    global _ZETA_MEMO_OWNER
    pid = os.getpid()
    if pid != _ZETA_MEMO_OWNER:
        _ZETA_MEMO.clear()
        _ZETA_MEMO_OWNER = pid
    return _ZETA_MEMO


def zeta(n: int, theta: float, start: int = 0, initial: float = 0.0) -> float:
    """Generalized harmonic number ``sum_{i=start+1..n} 1/i^theta``.

    Matches YCSB's incremental ``zeta(st, n, theta, initialsum)`` helper:
    passing the previous count and sum extends the series without
    recomputation — the trick that makes growing key spaces cheap. The
    common full-series form (``start == 0``, ``initial == 0``) is memoized
    per ``(n, theta)``.
    """
    if start == 0 and initial == 0.0:
        memo = _zeta_memo()
        memo_key = (n, theta)
        total = memo.get(memo_key)
        if total is None:
            total = 0.0
            for i in range(n):
                total += 1.0 / (i + 1) ** theta
            if len(memo) >= _ZETA_MEMO_MAX:
                memo.clear()
            memo[memo_key] = total
        return total
    total = initial
    for i in range(start, n):
        total += 1.0 / (i + 1) ** theta
    return total


def zipf_pmf(rank: int, key_space: int, theta: float) -> float:
    """P(draw == rank) for 0-based ``rank`` under Zipf(``theta``)."""
    return (1.0 / (rank + 1) ** theta) / zeta(key_space, theta)


def zipf_cdf(rank_count: int, key_space: int, theta: float) -> float:
    """P(draw < rank_count): total probability mass of the hottest keys.

    This is the paper's "TPC" curve — the hit rate of a perfect cache with
    ``rank_count`` cache-lines (Figure 4's theoretical series).
    """
    if rank_count <= 0:
        return 0.0
    rank_count = min(rank_count, key_space)
    return zeta(rank_count, theta) / zeta(key_space, theta)


class ZipfianGenerator(KeyGenerator):
    """Draws 0-based ranks Zipf-distributed over ``[0, key_space)``.

    Parameters
    ----------
    key_space:
        number of items ``n``.
    theta:
        the skew parameter ``s`` (paper uses 0.90, 0.99, 1.2, 1.5).
    seed:
        RNG seed for reproducible streams.
    zetan:
        precomputed ``zeta(key_space, theta)``. YCSB ships this constant
        for its huge scrambled domain because computing zeta over 10^10
        items takes minutes; pass it to skip the O(n) summation.
    """

    name = "zipfian"

    def __init__(
        self,
        key_space: int,
        theta: float = ZIPFIAN_CONSTANT,
        seed: int | None = None,
        zetan: float | None = None,
    ) -> None:
        super().__init__(key_space, seed)
        if theta <= 0:
            raise ConfigurationError("zipfian theta must be > 0")
        if math.isclose(theta, 1.0):
            # The closed form below divides by (1 - theta).
            theta += 1e-9
        self._theta = theta
        self._alpha = 1.0 / (1.0 - theta)
        self._zeta2 = zeta(2, theta)
        self._count = key_space
        self._zetan = zeta(key_space, theta) if zetan is None else zetan
        self._eta = self._compute_eta()

    def _compute_eta(self) -> float:
        return (1.0 - (2.0 / self._count) ** (1.0 - self._theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @property
    def theta(self) -> float:
        """The configured skew parameter."""
        return self._theta

    def grow(self, new_key_space: int) -> None:
        """Extend the item count, updating zeta incrementally (YCSB-style)."""
        if new_key_space < self._count:
            raise ConfigurationError("key space can only grow")
        self._zetan = zeta(new_key_space, self._theta, start=self._count,
                           initial=self._zetan)
        self._count = new_key_space
        self._key_space = new_key_space
        self._eta = self._compute_eta()

    def next_key(self) -> int:
        """YCSB ``nextLong``: inverse-CDF approximation of Gray et al."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self._theta:
            return 1
        return int(self._count * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def keys_array(self, n: int) -> list[int]:
        """Draw ``n`` keys as a list — same stream as ``n`` ``next_key`` calls.

        The inverse-CDF constants are hoisted out of the loop and the RNG
        method bound once, which roughly halves per-key cost versus the
        generic one-at-a-time path. Consumes exactly ``n`` RNG draws, so
        batched and unbatched streams from equal seeds are identical.
        """
        rnd = self._rng.random
        zetan = self._zetan
        eta = self._eta
        alpha = self._alpha
        count = self._count
        two_thresh = 1.0 + 0.5**self._theta
        out = []
        append = out.append
        for _ in range(n):
            u = rnd()
            uz = u * zetan
            if uz < 1.0:
                append(0)
            elif uz < two_thresh:
                append(1)
            else:
                # Same expression (and float rounding) as next_key.
                append(int(count * (eta * u - eta + 1.0) ** alpha))
        return out

    def pmf(self, rank: int) -> float:
        """Exact probability of emitting ``rank``."""
        return (1.0 / (rank + 1) ** self._theta) / self._zetan

    def perfect_cache_hit_rate(self, cache_lines: int) -> float:
        """TPC hit rate for a ``cache_lines``-entry perfect cache."""
        return zipf_cdf(cache_lines, self._count, self._theta)

    def describe(self) -> str:
        return f"zipfian(n={self._key_space}, s={self._theta:g})"
