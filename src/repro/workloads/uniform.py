"""Uniform key generator (YCSB ``UniformIntegerGenerator``).

The paper uses uniform workloads twice: to measure the pure overhead of
front-end caches (Figures 5-6 — caching buys nothing when no key is hotter
than another) and to drive CoT's shrink path (Figure 8 — the front end
should retire its cache entirely when skew disappears).
"""

from __future__ import annotations

from repro.workloads.base import KeyGenerator

__all__ = ["UniformGenerator"]


class UniformGenerator(KeyGenerator):
    """Every key id in ``[0, key_space)`` equally likely."""

    name = "uniform"

    def next_key(self) -> int:
        return self._rng.randrange(self._key_space)
