"""Workload change schedules for the elasticity experiments.

The paper's Figures 7-8 run a Zipfian 1.2 phase until CoT converges, then
switch the *same* front end to a uniform workload and watch the cache
shrink. :class:`PhasedWorkload` generalizes this: a sequence of
``(generator, length)`` phases replayed back to back, plus a
:class:`RotatingHotSetGenerator` that keeps the distribution shape but
relabels which keys are hot (the "#miami vs #ny" local-trend change that
triggers Algorithm 3's half-life decay case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, WorkloadExhausted
from repro.workloads.base import KeyGenerator

__all__ = ["Phase", "PhasedWorkload", "RotatingHotSetGenerator"]


@dataclass(frozen=True)
class Phase:
    """One workload phase: a generator and how many accesses it serves.

    ``length`` may be ``None`` only for the final phase (run forever).
    """

    generator: KeyGenerator
    length: int | None

    def __post_init__(self) -> None:
        if self.length is not None and self.length < 1:
            raise ConfigurationError("phase length must be >= 1 or None")


class PhasedWorkload(KeyGenerator):
    """Concatenate workload phases into one key stream.

    The key space is the maximum across phases; ``phase_index`` reports
    which phase is active so experiment plots can mark the switch point.
    """

    name = "phased"

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ConfigurationError("at least one phase is required")
        for phase in phases[:-1]:
            if phase.length is None:
                raise ConfigurationError("only the final phase may be unbounded")
        super().__init__(max(p.generator.key_space for p in phases))
        self._phases = list(phases)
        self._phase_index = 0
        self._remaining = self._phases[0].length

    @property
    def phase_index(self) -> int:
        """Index of the currently active phase."""
        return self._phase_index

    @property
    def total_length(self) -> int | None:
        """Total accesses the schedule serves, or ``None`` if unbounded."""
        if self._phases[-1].length is None:
            return None
        return sum(p.length for p in self._phases)  # type: ignore[misc]

    def next_key(self) -> int:
        while self._remaining is not None and self._remaining <= 0:
            if self._phase_index + 1 >= len(self._phases):
                raise WorkloadExhausted(
                    f"{self.describe()} is exhausted after "
                    f"{self.total_length} accesses"
                )
            self._phase_index += 1
            self._remaining = self._phases[self._phase_index].length
        if self._remaining is not None:
            self._remaining -= 1
        return self._phases[self._phase_index].generator.next_key()

    def describe(self) -> str:
        parts = ", ".join(
            f"{p.generator.describe()}×{p.length if p.length is not None else '∞'}"
            for p in self._phases
        )
        return f"phased[{parts}]"


class RotatingHotSetGenerator(KeyGenerator):
    """Wrap a generator, relabelling keys by a shifting offset.

    ``rotate(delta)`` adds ``delta`` (mod key space) to every emitted id:
    the distribution's *shape* is untouched but the identity of the hot
    keys changes — the pure "set of hot keys changed" signal that drives
    Algorithm 3's Case 2 (hits leave ``S_c`` and appear in ``S_{k-c}``).
    """

    name = "rotating"

    def __init__(self, inner: KeyGenerator, offset: int = 0) -> None:
        super().__init__(inner.key_space)
        self._inner = inner
        self._offset = offset % inner.key_space

    @property
    def offset(self) -> int:
        """Current relabelling offset."""
        return self._offset

    def rotate(self, delta: int) -> int:
        """Shift the hot set by ``delta`` ids; returns the new offset."""
        self._offset = (self._offset + delta) % self._key_space
        return self._offset

    def next_key(self) -> int:
        return (self._inner.next_key() + self._offset) % self._key_space

    def describe(self) -> str:
        return f"rotating(offset={self._offset}, over={self._inner.describe()})"
