"""Hot-spot key generator (YCSB ``HotspotIntegerGenerator``).

A fraction of the key space (the *hot set*) receives a fixed fraction of
the operations, uniformly within each region. Unlike Zipfian skew, hot-spot
skew has a sharp hotness cliff, which exercises CoT's resizing stopping
condition (the cache should grow to exactly the hot-set size and no
further).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.base import KeyGenerator

__all__ = ["HotspotGenerator"]


class HotspotGenerator(KeyGenerator):
    """Two-region workload: ``hot_opn_fraction`` of ops hit the hot set.

    Parameters
    ----------
    key_space:
        total number of keys.
    hot_set_fraction:
        fraction of the key space that is hot (ids ``0..hot-1``).
    hot_opn_fraction:
        fraction of operations that target the hot set.
    """

    name = "hotspot"

    def __init__(
        self,
        key_space: int,
        hot_set_fraction: float = 0.002,
        hot_opn_fraction: float = 0.9,
        seed: int | None = None,
    ) -> None:
        super().__init__(key_space, seed)
        if not 0 < hot_set_fraction <= 1:
            raise ConfigurationError("hot_set_fraction must be in (0, 1]")
        if not 0 <= hot_opn_fraction <= 1:
            raise ConfigurationError("hot_opn_fraction must be in [0, 1]")
        self._hot_count = max(1, int(key_space * hot_set_fraction))
        self._hot_opn_fraction = hot_opn_fraction

    @property
    def hot_count(self) -> int:
        """Number of keys in the hot set (ids ``0..hot_count-1``)."""
        return self._hot_count

    def next_key(self) -> int:
        if self._rng.random() < self._hot_opn_fraction:
            return self._rng.randrange(self._hot_count)
        cold_span = self._key_space - self._hot_count
        if cold_span <= 0:
            return self._rng.randrange(self._hot_count)
        return self._hot_count + self._rng.randrange(cold_span)

    def describe(self) -> str:
        return (
            f"hotspot(n={self._key_space}, hot_keys={self._hot_count}, "
            f"hot_ops={self._hot_opn_fraction:g})"
        )
