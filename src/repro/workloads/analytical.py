"""Analytical tools over key-access distributions.

Three jobs:

* the theoretical perfect-cache ("TPC") hit-rate series of Figure 4,
  straight from the Zipfian CDF;
* empirical skew estimation — the measurement that exposes the
  ScrambledZipfian bug: fit ``log(freq) ~ -s * log(rank)`` over an observed
  stream and compare the fitted ``s`` with the requested one;
* head-mass summaries (what fraction of accesses the hottest ``k`` keys
  absorb), the quantity that links cache size to back-end load reduction
  in Figure 3.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.workloads.zipfian import zipf_cdf

__all__ = [
    "tpc_hit_rate",
    "head_mass",
    "estimate_zipf_exponent",
    "frequency_ranking",
]


def tpc_hit_rate(cache_lines: int, key_space: int, theta: float) -> float:
    """Theoretical perfect-cache hit rate (the paper's TPC series)."""
    return zipf_cdf(cache_lines, key_space, theta)


def frequency_ranking(keys: Iterable[int]) -> list[tuple[int, int]]:
    """Sorted ``(key, count)`` pairs, hottest first, ties by key id."""
    counts = Counter(keys)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def head_mass(keys: Sequence[int] | list[int], top: int) -> float:
    """Fraction of accesses hitting the ``top`` empirically hottest keys."""
    if top < 0:
        raise ConfigurationError("top must be >= 0")
    if not keys:
        return 0.0
    ranking = frequency_ranking(keys)
    head = sum(count for _key, count in ranking[:top])
    return head / len(keys)


def estimate_zipf_exponent(
    keys: Iterable[int],
    max_rank: int | None = None,
    min_count: int = 2,
) -> float:
    """Least-squares fit of the Zipf exponent from an observed stream.

    Fits ``log(count_r) = a - s * log(r)`` over ranks ``r = 1..max_rank``
    (hottest first), dropping ranks with fewer than ``min_count``
    observations (the tail is dominated by sampling noise). Returns the
    fitted ``s``.

    This is the measurement behind the paper's ScrambledZipfian finding:
    an honest Zipfian(0.99) stream fits ``s ≈ 0.99`` while the scrambled
    generator fits dramatically lower.
    """
    ranking = frequency_ranking(keys)
    if max_rank is not None:
        ranking = ranking[:max_rank]
    points = [
        (math.log(rank), math.log(count))
        for rank, (_key, count) in enumerate(ranking, start=1)
        if count >= min_count
    ]
    if len(points) < 2:
        raise ConfigurationError(
            "not enough distinct ranks to fit a Zipf exponent "
            f"(got {len(points)}; stream too short or too uniform)"
        )
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ConfigurationError("degenerate rank distribution (single rank)")
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return -slope
