"""YCSB's ``ScrambledZipfianGenerator`` — reproduced *with its bug*.

The paper's fifth contribution: "we found a bug in YCSB's ScrambledZipfian
workload generator. This generator generates workloads that are
significantly less-skewed than the promised Zipfian distribution."

How the bug arises (faithfully reproduced here):

1. The generator always draws from an inner ``ZipfianGenerator`` over a
   huge fixed domain (``ITEM_COUNT = 10_000_000_000`` items) with skew
   pinned to ``USED_ZIPFIAN_CONSTANT = 0.99`` and a precomputed
   ``ZETAN = 26.46902820178302`` — a *requested* skew parameter other than
   0.99 is accepted but silently ignored.
2. The drawn rank is scrambled into the caller's key space with
   ``fnv_hash64(rank) % key_space``. Because billions of inner ranks fold
   onto each key, the long tail's mass piles uniformly onto every key,
   diluting the head: the hottest key's probability drops from
   ``1/1^0.99 / zeta_n`` to roughly ``P(rank 0) + uniform_share``, and the
   effective measured skew lands far below 0.99.

``repro.experiments.ycsb_bug`` and ``examples/ycsb_scrambled_bug.py``
quantify the difference against the honest :class:`ZipfianGenerator`.
"""

from __future__ import annotations

from repro.workloads.base import KeyGenerator
from repro.workloads.fnv import fnv_hash64
from repro.workloads.zipfian import ZipfianGenerator

__all__ = ["ScrambledZipfianGenerator"]

#: YCSB constants, verbatim.
ITEM_COUNT = 10_000_000_000
USED_ZIPFIAN_CONSTANT = 0.99
ZETAN = 26.46902820178302


class ScrambledZipfianGenerator(KeyGenerator):
    """Hash-scrambled Zipfian over ``[0, key_space)``, YCSB-faithful.

    Parameters
    ----------
    key_space:
        the caller's key space (YCSB's ``max - min + 1``).
    requested_theta:
        the skew the *caller asked for*. Recorded for reporting, but —
        exactly as in YCSB — **not used**: the inner generator always runs
        at 0.99 over the fixed 10-billion-item domain. This parameter
        exists to make the bug visible in experiment output.
    seed:
        RNG seed.
    """

    name = "scrambled_zipfian"

    def __init__(
        self,
        key_space: int,
        requested_theta: float = USED_ZIPFIAN_CONSTANT,
        seed: int | None = None,
    ) -> None:
        super().__init__(key_space, seed)
        self.requested_theta = requested_theta
        # YCSB ships the precomputed ZETAN for the 10-billion-item domain
        # (summing zeta over 10^10 terms at construction would take
        # minutes); passing it reproduces the Java generator bit-for-bit.
        self._inner = ZipfianGenerator(
            ITEM_COUNT, theta=USED_ZIPFIAN_CONSTANT, seed=seed, zetan=ZETAN
        )

    def next_key(self) -> int:
        rank = self._inner.next_key()
        return fnv_hash64(rank) % self._key_space

    def describe(self) -> str:
        return (
            f"scrambled_zipfian(n={self._key_space}, "
            f"requested_s={self.requested_theta:g}, actual_s=0.99-over-10B)"
        )
