"""Prometheus text-format export of engine telemetry.

Renders :class:`~repro.engine.telemetry.TelemetrySnapshot`\\ s in the
Prometheus exposition format (text/plain version 0.0.4): counters as
``*_total`` counter families, gauges as gauges, per-shard load families
with a ``shard`` label, and every bus histogram as a full
``_bucket``/``_sum``/``_count`` histogram family. Multiple snapshots
(one per run of a sweep) export as one page with a ``run`` label.

Also here:

* :func:`parse_prometheus` — a strict parser for the subset this module
  emits, used by the round-trip conformance tests (and handy for
  post-processing metric dumps without a Prometheus server);
* :class:`SnapshotCollector` — subscribes to the engine's snapshot
  stream (:func:`repro.engine.telemetry.add_snapshot_listener`) so the
  experiment CLI's ``--metrics-out`` can capture every run's telemetry
  without touching a single experiment module. Collection is strictly
  read-only: attaching a collector never changes experiment output
  (pinned by the golden tests).
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine.telemetry import TelemetrySnapshot

__all__ = [
    "PrometheusExporter",
    "SnapshotCollector",
    "parse_prometheus",
    "render_prometheus",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_LABEL_BLOCK = re.compile(
    r'^(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?,?$'
)


def _metric_name(raw: str, namespace: str) -> str:
    """``policy.hits`` → ``cot_policy_hits`` (Prometheus-legal)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", raw)
    name = f"{namespace}_{cleaned}" if namespace else cleaned
    if not _NAME_OK.match(name):
        raise ExperimentError(f"cannot form a legal metric name from {raw!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Canonical sample formatting: integers bare, floats via repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class _Family:
    """One metric family: HELP/TYPE header plus its sample series."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[tuple[str, dict[str, str], float]] = []

    def add(self, suffix: str, labels: Mapping[str, str], value: float) -> None:
        self.samples.append((suffix, dict(labels), value))

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{_labels_text(labels)} "
                f"{_format_value(value)}"
            )
        return "\n".join(lines)


class PrometheusExporter:
    """Accumulates snapshots and renders one exposition-format page.

    ``add(snapshot)`` ingests one run's telemetry; when more than one
    snapshot is added, each carries a ``run`` label (plus any explicit
    labels passed to ``add``). ``render()`` emits families in first-seen
    order with HELP/TYPE declared exactly once per family.
    """

    def __init__(self, namespace: str = "cot") -> None:
        self.namespace = namespace
        self._families: dict[str, _Family] = {}
        self._runs = 0

    # ---------------------------------------------------------------- intake

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help_text)
        elif family.kind != kind:
            raise ExperimentError(
                f"metric {name} registered as {family.kind} and {kind}"
            )
        return family

    def add(self, snapshot: "TelemetrySnapshot", **labels: str) -> None:
        """Ingest one snapshot's counters/gauges/loads/histograms."""
        base = dict(labels)
        base.setdefault("run", str(self._runs))
        self._runs += 1
        namespace = self.namespace

        for raw, value in sorted(snapshot.counters.items()):
            name = _metric_name(raw, namespace) + "_total"
            self._family(name, "counter", f"counter {raw!r}").add("", base, value)

        for raw, value in sorted(snapshot.gauges.items()):
            name = _metric_name(raw, namespace)
            self._family(name, "gauge", f"gauge {raw!r}").add("", base, value)

        loads = self._family(
            _metric_name("shard.lookups", namespace) + "_total",
            "counter",
            "lifetime lookups routed to each back-end shard",
        )
        for shard, value in sorted(snapshot.shard_loads.items()):
            loads.add("", {**base, "shard": shard}, value)

        epoch_loads = self._family(
            _metric_name("shard.epoch_lookups", namespace),
            "gauge",
            "lookups per shard in the last epoch window",
        )
        for shard, value in sorted(snapshot.epoch_shard_loads.items()):
            epoch_loads.add("", {**base, "shard": shard}, value)

        scalars = [
            ("run.runtime_seconds", snapshot.runtime, "simulated run time"),
            ("latency.mean_seconds", snapshot.mean_latency, "mean request latency"),
            ("latency.p50_seconds", snapshot.p50_latency, "median request latency"),
            ("latency.p99_seconds", snapshot.p99_latency, "p99 request latency"),
            (
                "latency.fallback_seconds_total",
                snapshot.fallback_latency,
                "accounted extra latency of storage-fallback reads",
            ),
            (
                "run.epoch_events",
                float(len(snapshot.epoch_events)),
                "elastic epochs closed during the run",
            ),
            (
                "run.phases",
                float(len(snapshot.phases)),
                "fault-schedule phases completed",
            ),
        ]
        for raw, value, help_text in scalars:
            name = _metric_name(raw, namespace)
            self._family(name, "gauge", help_text).add("", base, value)

        for raw, histogram in sorted(snapshot.histograms.items()):
            name = _metric_name(raw, namespace) + "_seconds"
            family = self._family(name, "histogram", f"histogram {raw!r}")
            for bound, cumulative in histogram.cumulative_buckets():
                family.add(
                    "_bucket",
                    {**base, "le": _format_value(bound)},
                    cumulative,
                )
            family.add("_sum", base, histogram.total)
            family.add("_count", base, histogram.count)

    # ---------------------------------------------------------------- output

    def render(self) -> str:
        """The full exposition-format page (trailing newline included)."""
        if not self._families:
            return "# (no snapshots collected)\n"
        return "\n".join(
            family.render() for family in self._families.values()
        ) + "\n"


def render_prometheus(
    snapshot: "TelemetrySnapshot", namespace: str = "cot", **labels: str
) -> str:
    """One-shot export of a single snapshot."""
    exporter = PrometheusExporter(namespace=namespace)
    exporter.add(snapshot, **labels)
    return exporter.render()


# ---------------------------------------------------------------------------
# parsing (round-trip conformance)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition-format text into ``{series: [(labels, value)]}``.

    Strict about everything this package emits: TYPE must precede a
    family's samples, names must be legal, label syntax must parse, and
    values must be floats (``+Inf``/``-Inf``/``NaN`` allowed). Histogram
    sample names keep their ``_bucket``/``_sum``/``_count`` suffixes.
    Raises :class:`~repro.errors.ExperimentError` on any malformed line.
    """
    series: dict[str, list[tuple[dict[str, str], float]]] = {}
    typed: dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in {"HELP", "TYPE"}:
                if not _NAME_OK.match(parts[2]):
                    raise ExperimentError(
                        f"line {line_number}: bad metric name {parts[2]!r}"
                    )
                if parts[1] == "TYPE":
                    typed[parts[2]] = parts[3] if len(parts) > 3 else ""
                continue
            continue  # free-form comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExperimentError(f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and typed.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in typed:
            raise ExperimentError(
                f"line {line_number}: sample {name!r} has no TYPE declaration"
            )
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            if not _LABEL_BLOCK.match(raw_labels):
                raise ExperimentError(
                    f"line {line_number}: malformed labels {raw_labels!r}"
                )
            for pair in _LABEL_PAIR.finditer(raw_labels):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace(r"\"", '"')
                    .replace(r"\n", "\n")
                    .replace(r"\\", "\\")
                )
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ExperimentError(
                f"line {line_number}: bad value {match.group('value')!r}"
            ) from None
        series.setdefault(name, []).append((labels, value))
    return series


# ---------------------------------------------------------------------------
# engine hookup


class SnapshotCollector:
    """Collects every :class:`TelemetrySnapshot` the engine freezes.

    Use as a context manager around any number of experiment runs::

        with SnapshotCollector() as collector:
            run_experiment("fig4", scale=Scale.smoke())
        Path("metrics.prom").write_text(collector.render())

    The collector only *reads* frozen snapshots; attaching one cannot
    perturb a run (the golden tests pin this).
    """

    def __init__(self, namespace: str = "cot") -> None:
        self.namespace = namespace
        self.snapshots: list["TelemetrySnapshot"] = []
        self._installed = False

    def __call__(self, snapshot: "TelemetrySnapshot") -> None:
        self.snapshots.append(snapshot)

    def install(self) -> "SnapshotCollector":
        from repro.engine import telemetry as _telemetry

        if not self._installed:
            _telemetry.add_snapshot_listener(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        from repro.engine import telemetry as _telemetry

        if self._installed:
            _telemetry.remove_snapshot_listener(self)
            self._installed = False

    def __enter__(self) -> "SnapshotCollector":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    def render(self) -> str:
        """Exposition-format page covering every collected snapshot."""
        exporter = PrometheusExporter(namespace=self.namespace)
        for snapshot in self.snapshots:
            exporter.add(snapshot)
        return exporter.render()


def write_metrics(
    snapshots: Iterable["TelemetrySnapshot"], path: str, namespace: str = "cot"
) -> str:
    """Render ``snapshots`` and write them to ``path``; returns the text."""
    exporter = PrometheusExporter(namespace=namespace)
    for snapshot in snapshots:
        exporter.add(snapshot)
    text = exporter.render()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
