"""Profiling hooks: per-subsystem section timing and periodic snapshots.

Two lightweight tools for attributing *where a run's wall-clock went*
(the benches) and *how telemetry evolved over a run* (the chaos
experiment):

* :class:`SectionTimer` — a named-section accumulator built on
  ``perf_counter``: ``with timer.section("shard.lookup"): ...`` adds the
  elapsed time and one call to that section's totals. Overhead is two
  clock reads per enter/exit, cheap enough to leave in benchmark
  harnesses permanently.
* :class:`PeriodicSnapshotter` — epoch-aligned telemetry sampling:
  ``maybe_sample(i)`` freezes the bus every ``every`` ticks (accesses,
  epochs — whatever the caller counts), producing a time series of
  :class:`~repro.engine.telemetry.TelemetrySnapshot`\\ s that lets a
  report attribute counter growth to run segments after the fact.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.telemetry import TelemetryBus, TelemetrySnapshot

__all__ = ["PeriodicSnapshotter", "SectionTimer"]


class _SectionHandle:
    """Context manager accumulating one timed section entry."""

    __slots__ = ("_timer", "_name", "_started")

    def __init__(self, timer: "SectionTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_SectionHandle":
        self._started = self._timer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.add(self._name, self._timer._clock() - self._started)


class SectionTimer:
    """Accumulates wall-clock time per named section.

    The clock is injectable for deterministic tests; the default is
    ``time.perf_counter``.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._totals: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def section(self, name: str) -> _SectionHandle:
        """Time one ``with``-block under ``name``."""
        return _SectionHandle(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` (and ``calls``) to a section directly."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def total(self, name: str) -> float:
        """Accumulated seconds for one section (0 if never entered)."""
        return self._totals.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of entries into one section."""
        return self._calls.get(name, 0)

    def totals(self) -> dict[str, float]:
        """Accumulated seconds per section, largest first."""
        return dict(
            sorted(self._totals.items(), key=lambda item: -item[1])
        )

    def report(self) -> str:
        """Aligned text attribution: section, calls, total, share."""
        if not self._totals:
            return "(no sections timed)"
        grand_total = sum(self._totals.values())
        width = max(len(name) for name in self._totals)
        lines = [f"{'section':<{width}}  {'calls':>8}  {'total_s':>10}  share"]
        for name, total in self.totals().items():
            share = total / grand_total if grand_total else 0.0
            lines.append(
                f"{name:<{width}}  {self._calls[name]:>8}  "
                f"{total:>10.6f}  {share:>5.1%}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every section."""
        self._totals.clear()
        self._calls.clear()


class PeriodicSnapshotter:
    """Epoch-aligned telemetry sampling off a live :class:`TelemetryBus`.

    Callers tick :meth:`maybe_sample` with a monotone index (access
    count, epoch index); every ``every`` ticks the bus is frozen and the
    snapshot appended to :attr:`samples` as ``(index, snapshot)``.
    Snapshots are taken through the bus's normal freeze path, so sampling
    is strictly additive — it never mutates the run.
    """

    def __init__(self, bus: "TelemetryBus", every: int) -> None:
        if every < 1:
            raise ConfigurationError("snapshot period must be >= 1")
        self.bus = bus
        self.every = every
        self.samples: list[tuple[int, "TelemetrySnapshot"]] = []
        self._last_index: int | None = None

    def maybe_sample(self, index: int) -> bool:
        """Snapshot when ``index`` crosses the next period boundary."""
        if index % self.every != 0:
            return False
        if self._last_index == index:
            return False  # idempotent against repeated ticks at one index
        self._last_index = index
        self.samples.append((index, self.bus.snapshot()))
        return True

    def counter_deltas(self, name: str) -> list[tuple[int, int]]:
        """Per-interval growth of one counter across the samples."""
        out: list[tuple[int, int]] = []
        previous = 0
        for index, snapshot in self.samples:
            value = snapshot.counter(name)
            out.append((index, value - previous))
            previous = value
        return out
