"""Observability layer: tracing, histograms, export, profiling.

The production-shaped lens over the engine's telemetry (DESIGN.md §9)::

    Tracer ──▶ span trees ──▶ slow-request exemplars (render_trace)
    LatencyHistogram ──▶ exact cross-client merge ──▶ TelemetrySnapshot
    TelemetrySnapshot ──▶ PrometheusExporter ──▶ metrics page (--metrics-out)
    SectionTimer / PeriodicSnapshotter ──▶ per-subsystem attribution

Everything here is strictly additive: attaching a tracer at sample rate
0 or a :class:`SnapshotCollector` to a run leaves experiment output
byte-identical (``tests/test_golden_outputs.py`` +
``tests/test_obs.py`` pin this).
"""

from repro.obs.hist import LatencyHistogram
from repro.obs.trace import Span, Trace, Tracer, render_trace
from repro.obs.export import (
    PrometheusExporter,
    SnapshotCollector,
    parse_prometheus,
    render_prometheus,
    write_metrics,
)
from repro.obs.profile import PeriodicSnapshotter, SectionTimer

__all__ = [
    "LatencyHistogram",
    "PeriodicSnapshotter",
    "PrometheusExporter",
    "SectionTimer",
    "SnapshotCollector",
    "Span",
    "Trace",
    "Tracer",
    "parse_prometheus",
    "render_prometheus",
    "render_trace",
    "write_metrics",
]
