"""Fixed-bucket latency histograms (log-spaced, HDR-style).

Reservoir sampling answers "what was the p99" with a *random* subset of
the stream, which makes cross-client aggregation statistically delicate:
concatenating two saturated reservoirs weighs both clients equally no
matter how much traffic each saw. A fixed-bucket histogram trades a
bounded relative error (one bucket width) for *exact* mergeability —
adding two histograms with identical bounds loses nothing, which is why
every serious latency pipeline (HdrHistogram, Prometheus, Ditto's online
collectors) is bucket-based.

Buckets are log-spaced: ``bucket_bounds[i] = lowest * growth**i`` with a
fixed number of buckets per decade, so relative error is constant across
the whole dynamic range (microsecond front-end hits and second-scale
storage fallbacks share one histogram). Values below ``lowest`` land in
the first bucket; values at or above ``highest`` land in a final
overflow bucket whose percentile estimate is the observed maximum.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["LatencyHistogram"]

#: Default dynamic range: 1 µs .. 100 s covers everything from a local
#: cache hit to a pathological retry storm.
DEFAULT_LOWEST = 1e-6
DEFAULT_HIGHEST = 100.0
#: 10 buckets per decade → ~26% bucket growth → percentile estimates
#: within ~13% of the true value (half a bucket) anywhere in range.
DEFAULT_BUCKETS_PER_DECADE = 10


def _build_bounds(
    lowest: float, highest: float, buckets_per_decade: int
) -> tuple[float, ...]:
    """Upper bucket bounds from ``lowest`` up to and including ``highest``."""
    decades = math.log10(highest / lowest)
    count = int(math.ceil(decades * buckets_per_decade)) + 1
    growth = 10.0 ** (1.0 / buckets_per_decade)
    bounds = [lowest * growth**i for i in range(count)]
    # Pin the final bound exactly at ``highest`` so two histograms built
    # from the same parameters always compare equal bound-for-bound.
    bounds[-1] = highest
    return tuple(bounds)


class LatencyHistogram:
    """Log-spaced fixed-bucket histogram with exact merging.

    ``record`` is O(log buckets) (one bisect); ``merge`` is exact for
    histograms with identical bounds; ``percentile`` interpolates inside
    the containing bucket so the error is bounded by one bucket width.
    """

    __slots__ = ("_bounds", "_counts", "count", "total", "min_value", "max_value")

    def __init__(
        self,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if lowest <= 0 or highest <= lowest:
            raise ConfigurationError("need 0 < lowest < highest")
        if buckets_per_decade < 1:
            raise ConfigurationError("buckets_per_decade must be >= 1")
        self._bounds = _build_bounds(lowest, highest, buckets_per_decade)
        # One slot per bound plus an overflow slot for values >= highest.
        self._counts = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    # ---------------------------------------------------------------- record

    def record(self, value: float) -> None:
        """Add one observation (seconds)."""
        self._counts[bisect_right(self._bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[float]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    # ----------------------------------------------------------------- merge

    def compatible(self, other: "LatencyHistogram") -> bool:
        """Whether ``other`` shares this histogram's bucket bounds."""
        return self._bounds == other._bounds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram — exact, no sampling loss."""
        if not self.compatible(other):
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the exact sum of ``histograms``."""
        result: LatencyHistogram | None = None
        for histogram in histograms:
            if result is None:
                result = histogram.copy()
            else:
                result.merge(histogram)
        return result if result is not None else cls()

    def copy(self) -> "LatencyHistogram":
        """An independent deep copy (snapshot freezing)."""
        clone = object.__new__(LatencyHistogram)
        clone._bounds = self._bounds
        clone._counts = list(self._counts)
        clone.count = self.count
        clone.total = self.total
        clone.min_value = self.min_value
        clone.max_value = self.max_value
        return clone

    # ------------------------------------------------------------- summaries

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all observations."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (within one bucket width).

        Finds the bucket containing the target rank and interpolates
        linearly between its bounds; ranks in the overflow bucket return
        the observed maximum, ranks in the first bucket interpolate from
        the observed minimum.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.count:
            raise ValueError("percentile of empty histogram")
        target = (q / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if i >= len(self._bounds):  # overflow bucket
                    return self.max_value
                upper = self._bounds[i]
                lower = self._bounds[i - 1] if i else max(self.min_value, 0.0)
                lower = min(lower, upper)
                frac = 1.0 - (cumulative - target) / bucket_count
                estimate = lower + (upper - lower) * frac
                # Never report outside the observed range.
                return min(max(estimate, self.min_value), self.max_value)
        return self.max_value

    def bucket_bounds(self) -> tuple[float, ...]:
        """Upper bounds of the finite buckets (the Prometheus ``le`` set)."""
        return self._bounds

    def cumulative_buckets(self) -> Iterator[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        Yields one pair per finite bucket plus a final ``(inf, count)``
        pair — exactly the ``_bucket{le=...}`` series of the text format.
        """
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, self._counts):
            cumulative += bucket_count
            yield bound, cumulative
        yield math.inf, self.count

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` for buckets that saw traffic."""
        out: list[tuple[float, int]] = []
        for i, bucket_count in enumerate(self._counts):
            if bucket_count:
                bound = self._bounds[i] if i < len(self._bounds) else math.inf
                out.append((bound, bucket_count))
        return out

    def summary(self) -> dict[str, float]:
        """Mean/p50/p99/max bundle, same shape as ``LatencyRecorder``."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, "
            f"buckets={len(self._counts)}, mean={self.mean:.6g})"
        )
