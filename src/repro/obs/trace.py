"""Sampling request tracer: cheap structured spans for slow-request forensics.

The paper motivates CoT with tail latency, and a p99 scalar cannot tell
you *where* a slow request spent its time — front-end miss, ring route,
shard queueing, a retry burst, or the storage fallback. A
:class:`Tracer` samples a deterministic fraction of requests and records
a tree of :class:`Span`s per sampled request; the slowest completed
traces are retained as exemplars and render as an indented text tree
(:func:`render_trace`).

Design constraints, in order:

1. **zero cost when off** — at ``sample_rate`` 0 the hot path pays one
   attribute read and one comparison; experiment outputs are
   byte-identical with tracing attached (pinned by the golden tests);
2. **cheap when on** — spans are flat records in a list (parent links by
   index, no per-span objects beyond ``__slots__``), and only sampled
   requests allocate anything;
3. **clock-agnostic** — the live cluster path uses ``perf_counter``
   wall time, the discrete-event path passes explicit simulated
   timestamps; both produce the same span trees.

Sampling is deterministic (an error-diffusion accumulator, not an RNG):
rate 0.01 traces exactly every 100th request, which keeps traced runs
reproducible and the overhead gate stable.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError

__all__ = ["Span", "Trace", "Tracer", "render_trace"]


class Span:
    """One timed section of a traced request (flat record, tree by index)."""

    __slots__ = ("name", "start", "end", "parent", "meta")

    def __init__(
        self,
        name: str,
        start: float,
        end: float = math.nan,
        parent: int = -1,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.parent = parent
        self.meta = meta

    @property
    def duration(self) -> float:
        """Span length in seconds (NaN while still open)."""
        return self.end - self.start

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6g}s)"


class _SpanHandle:
    """Context manager closing one span on exit (sampled requests only)."""

    __slots__ = ("_trace", "_index")

    def __init__(self, trace: "Trace", index: int) -> None:
        self._trace = trace
        self._index = index

    def __enter__(self) -> Span:
        return self._trace.spans[self._index]

    def __exit__(self, *exc_info: object) -> None:
        self._trace.end_span(self._index)


class Trace:
    """The span tree of one sampled request.

    ``span(name)`` opens a child of the innermost open span as a context
    manager (live path); ``add_span(name, start, end)`` records a closed
    span with explicit timestamps (simulation path).
    """

    __slots__ = ("name", "spans", "_stack", "_clock", "meta")

    def __init__(
        self, name: str, clock: Callable[[], float], at: float | None = None
    ) -> None:
        self.name = name
        self._clock = clock
        start = clock() if at is None else at
        self.spans: list[Span] = [Span(name, start)]
        self._stack: list[int] = [0]
        self.meta: dict[str, Any] = {}

    # ------------------------------------------------------------- recording

    def span(self, name: str, **meta: Any) -> _SpanHandle:
        """Open a child span of the innermost open span (context manager)."""
        index = len(self.spans)
        self.spans.append(
            Span(name, self._clock(), parent=self._stack[-1], meta=meta or None)
        )
        self._stack.append(index)
        return _SpanHandle(self, index)

    def end_span(self, index: int) -> None:
        """Close the span at ``index`` (and pop it off the open stack)."""
        self.spans[index].end = self._clock()
        if len(self._stack) > 1 and self._stack[-1] == index:
            self._stack.pop()

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: int = 0,
        **meta: Any,
    ) -> int:
        """Record one already-closed span with explicit timestamps."""
        index = len(self.spans)
        self.spans.append(Span(name, start, end, parent=parent, meta=meta or None))
        return index

    def note(self, key: str, value: Any) -> None:
        """Attach request-level metadata (outcome, key, retry count …)."""
        self.meta[key] = value

    def finish(self, at: float | None = None) -> None:
        """Close the root span (and any spans left open by an exception)."""
        end = self._clock() if at is None else at
        for index in reversed(self._stack):
            if math.isnan(self.spans[index].end):
                self.spans[index].end = end
        del self._stack[1:]

    # ------------------------------------------------------------ inspection

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def duration(self) -> float:
        """Total request time (root span length)."""
        return self.spans[0].duration

    def children(self, index: int) -> Iterator[int]:
        """Indices of the direct children of span ``index``, in order."""
        for i, span in enumerate(self.spans):
            if span.parent == index and i != index:
                yield i

    def find(self, name: str) -> list[Span]:
        """Every span with the given name (test/assertion helper)."""
        return [span for span in self.spans if span.name == name]


class Tracer:
    """Deterministic sampling tracer with a slowest-trace exemplar store.

    Parameters
    ----------
    sample_rate:
        fraction of requests to trace, in [0, 1]. 0 disables tracing
        entirely (``start`` returns ``None`` after one comparison); the
        ``credit`` accumulator makes sampling deterministic: rate ``1/n``
        traces exactly every ``n``-th request.
    clock:
        timestamp source for live spans; simulation callers pass explicit
        ``at=``/``finish(at=)`` timestamps instead.
    max_exemplars:
        how many of the slowest completed traces to retain.
    """

    __slots__ = (
        "sample_rate",
        "_clock",
        "credit",
        "_max_exemplars",
        "_exemplars",
        "requests_seen",
        "traces_started",
        "traces_finished",
    )

    def __init__(
        self,
        sample_rate: float = 0.0,
        clock: Callable[[], float] = time.perf_counter,
        max_exemplars: int = 8,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError("sample_rate must be in [0, 1]")
        if max_exemplars < 1:
            raise ConfigurationError("max_exemplars must be >= 1")
        self.sample_rate = sample_rate
        self._clock = clock
        #: sampling credit: each request adds ``sample_rate``; crossing 1.0
        #: samples that request. Public so hot paths can inline the gate
        #: (``credit += rate; if credit >= 1.0: start_sampled(...)``) and
        #: pay zero method calls on unsampled requests.
        self.credit = 0.0
        self._max_exemplars = max_exemplars
        #: (duration, insertion-order, trace) kept sorted slowest-first
        self._exemplars: list[tuple[float, int, Trace]] = []
        #: sampling decisions made through :meth:`start` (callers that
        #: inline the gate bypass this counter for unsampled requests)
        self.requests_seen = 0
        #: requests actually traced
        self.traces_started = 0
        self.traces_finished = 0

    # -------------------------------------------------------------- sampling

    def start(self, name: str, at: float | None = None) -> Trace | None:
        """Begin a trace for this request, or ``None`` when not sampled."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        self.requests_seen += 1
        self.credit += rate
        if self.credit < 1.0:
            return None
        return self.start_sampled(name, at=at)

    def start_sampled(self, name: str, at: float | None = None) -> Trace:
        """Begin a trace after an externally-inlined gate.

        The caller has already added ``sample_rate`` to :attr:`credit` and
        observed it cross 1.0 — this consumes the credit and always
        returns a live :class:`Trace`.
        """
        self.credit -= 1.0
        self.traces_started += 1
        return Trace(name, self._clock, at=at)

    def finish(self, trace: Trace, at: float | None = None) -> None:
        """Complete a trace and fold it into the exemplar store."""
        trace.finish(at=at)
        self.traces_finished += 1
        exemplars = self._exemplars
        exemplars.append((trace.duration, self.traces_finished, trace))
        exemplars.sort(key=lambda item: (-item[0], item[1]))
        del exemplars[self._max_exemplars:]

    # ------------------------------------------------------------ inspection

    def exemplars(self) -> list[Trace]:
        """The slowest completed traces, slowest first."""
        return [trace for _duration, _order, trace in self._exemplars]

    def render_slowest(self, limit: int | None = None) -> str:
        """Text rendering of the slowest-trace exemplars."""
        traces = self.exemplars()
        if limit is not None:
            traces = traces[:limit]
        if not traces:
            return "(no traces recorded)"
        return "\n\n".join(render_trace(trace) for trace in traces)


def _format_seconds(seconds: float) -> str:
    """Human latency formatting: µs below 1 ms, ms below 1 s."""
    if math.isnan(seconds):
        return "?"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def render_trace(trace: Trace) -> str:
    """Render one trace as an indented span tree with durations.

    Example shape::

        request.get 1.204ms  outcome=miss key=usertable:77
        ├─ ring.route 2.1µs
        ├─ shard.lookup 1.050ms  shard=cache-3 retries=2
        └─ storage.fallback 120.0µs
    """
    lines: list[str] = []
    root = trace.root
    meta = "".join(f"  {k}={v}" for k, v in trace.meta.items())
    lines.append(f"{root.name} {_format_seconds(root.duration)}{meta}")

    def walk(index: int, prefix: str) -> None:
        children = list(trace.children(index))
        for position, child_index in enumerate(children):
            span = trace.spans[child_index]
            last = position == len(children) - 1
            connector = "└─ " if last else "├─ "
            span_meta = ""
            if span.meta:
                span_meta = "".join(f"  {k}={v}" for k, v in span.meta.items())
            lines.append(
                f"{prefix}{connector}{span.name} "
                f"{_format_seconds(span.duration)}{span_meta}"
            )
            walk(child_index, prefix + ("   " if last else "│  "))

    walk(0, "")
    return "\n".join(lines)
