"""Extension experiment: does the half-life decay actually help?

Algorithm 3's Case 2 *triggers* a decay when tracked-but-not-cached keys
outperform cached keys (a rotating hot set), but the paper explicitly
defers the decay mechanism to cited work and does not evaluate it. This
extension closes that gap: a Zipfian hot set is rotated every ``period``
accesses (the "#miami → #ny" trend change), and CoT is run with decay
disabled, half-life decay, and continuous exponential decay.

The rotation/decay/trigger schedule rides the engine's per-access
:class:`~repro.engine.spec.StreamHooks` (the instrumented policy-stream
mode). Metric: lifetime hit rate. Without decay, stale hotness
accumulated by old trends keeps dead keys in the cache long after
rotation; decay forgets them and re-converges faster.
"""

from __future__ import annotations

from repro.core.cache import CoTCache
from repro.core.decay import DecayPolicy, ExponentialDecay, HalfLifeDecay, NoDecay
from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    ScenarioSpec,
    StreamHooks,
    WorkloadSpec,
)
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale
from repro.workloads.shift import RotatingHotSetGenerator
from repro.workloads.zipfian import ZipfianGenerator

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "ext-decay"
THETA = 1.2
CACHE_LINES = 64
TRACKER_LINES = 256


def _run_variant(
    decay: DecayPolicy,
    scale: Scale,
    rotations: int,
    decay_every: int,
) -> tuple[float, float]:
    """Run one decay variant; returns (hit_rate, post-rotation hit_rate)."""
    cache = CoTCache(CACHE_LINES, tracker_capacity=TRACKER_LINES)
    generator = RotatingHotSetGenerator(
        ZipfianGenerator(scale.key_space, theta=THETA, seed=scale.seed)
    )
    period = scale.accesses // (rotations + 1)
    window = {"hits": 0, "accesses": 0}

    def before(i: int) -> None:
        if i > 0 and i % period == 0:
            generator.rotate(scale.key_space // 3)

    def after(i: int, _key, hit: bool) -> None:
        # The interesting window: right after each rotation, how quickly
        # does the cache recover?
        phase_position = i % period
        if i >= period and phase_position < period // 4:
            window["accesses"] += 1
            window["hits"] += int(hit)
        if decay_every and i % decay_every == 0 and i > 0:
            decay.on_epoch(cache)
        # Emulate the controller's Case-2 trigger: tracked keys hotter
        # than cached ones right after rotation.
        if i > 0 and i % period == period // 20:
            decay.on_trigger(cache)

    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(generator_factory=lambda _i: generator),
        policy=PolicySpec(factory=lambda _i: cache),
        hooks=StreamHooks(before=before, after=after),
    )
    PolicyStreamRunner().run(spec)
    post = window["hits"] / window["accesses"] if window["accesses"] else 0.0
    return cache.stats.hit_rate, post


def run(scale: Scale | None = None, rotations: int = 4) -> ExperimentResult:
    """Compare decay policies under a rotating hot set."""
    scale = scale or Scale.default()
    epoch = max(1000, scale.accesses // 200)
    variants: list[tuple[str, DecayPolicy, int]] = [
        ("none", NoDecay(), 0),
        ("half_life", HalfLifeDecay(), 0),
        ("exponential", ExponentialDecay(rate=0.95), epoch),
    ]
    rows: list[list[object]] = []
    for name, policy, decay_every in variants:
        overall, post = _run_variant(policy, scale, rotations, decay_every)
        rows.append(
            [name, round(overall * 100, 2), round(post * 100, 2)]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Extension — decay policies under hot-set rotation",
        headers=["decay", "hit_rate_%", "post_rotation_hit_rate_%"],
        rows=rows,
        notes=[
            f"Zipf {THETA} hot set rotated {rotations}× over "
            f"{scale.accesses:,} accesses; C={CACHE_LINES}, K={TRACKER_LINES}",
            "the paper triggers decay (Algorithm 3 Case 2) but defers the "
            "mechanism; this extension quantifies it",
        ],
        extras={"scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "decay policies (none/half-life/exponential) under hot-set rotation",
    run,
    order=110,
)
