"""Shared infrastructure for the experiment harnesses.

Every table and figure in the paper's evaluation has a module in this
package that regenerates it. All of them:

* accept a :class:`Scale` (``smoke`` for CI/benchmarks, ``default`` for
  minutes-scale runs, ``paper`` for the full 1M-key / 10M-access setup);
* build :class:`~repro.engine.spec.ScenarioSpec`s and execute them
  through the engine's runners (:mod:`repro.engine.runners`);
* return an :class:`ExperimentResult` carrying the same rows/series the
  paper reports, renderable as an aligned text table;
* register themselves in the spec registry (:mod:`repro.engine.registry`),
  which is how the CLI (``python -m repro.experiments``) and
  ``benchmarks/`` resolve them.

``Scale``/``make_generator``/``STREAM_CHUNK`` live in :mod:`repro.engine`
now (the engine owns sizing and drive mechanics); they are re-exported
here because experiment modules are their heaviest consumers.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.runners import STREAM_CHUNK
from repro.engine.spec import Scale, make_generator
from repro.errors import ExperimentError
from repro.metrics.table import render_table

__all__ = [
    "Scale",
    "ExperimentResult",
    "make_generator",
    "STREAM_CHUNK",
    "mean_confidence",
    "TRACKER_RATIOS",
]

#: The paper's per-workload tracker:cache ratios (Section 5.2): high skew
#: needs less history to separate hot from cold.
TRACKER_RATIOS: dict[str, int] = {
    "zipf-0.9": 16,
    "zipf-0.99": 8,
    "zipf-1.2": 4,
    "zipf-1.5": 4,
    "uniform": 4,
}


@dataclass
class ExperimentResult:
    """Rows + metadata for one regenerated table/figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned text table plus notes, ready to print."""
        parts = [render_table(self.headers, self.rows, title=self.title)]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def mean_confidence(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% confidence half-width (normal approximation).

    Matches the paper's "average overall running time with 95% confidence
    intervals" reporting for Figures 5-6.
    """
    if not values:
        raise ExperimentError("no values to summarize")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return mean, 0.0
    half_width = 1.96 * statistics.stdev(values) / math.sqrt(len(values))
    return mean, half_width
