"""Shared infrastructure for the experiment harnesses.

Every table and figure in the paper's evaluation has a module in this
package that regenerates it. All of them:

* accept a :class:`Scale` (``smoke`` for CI/benchmarks, ``default`` for
  minutes-scale runs, ``paper`` for the full 1M-key / 10M-access setup);
* return an :class:`ExperimentResult` carrying the same rows/series the
  paper reports, renderable as an aligned text table;
* are reachable from the CLI (``python -m repro.experiments <id>``) and
  from ``benchmarks/``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cluster.cluster import CacheCluster
from repro.cluster.client import FrontEndClient
from repro.errors import ExperimentError
from repro.metrics.table import render_table
from repro.policies.base import CachePolicy
from repro.workloads.base import KeyGenerator, format_key
from repro.workloads.mixer import OperationMixer
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "Scale",
    "ExperimentResult",
    "make_generator",
    "run_policy_stream",
    "run_cluster_workload",
    "STREAM_CHUNK",
    "mean_confidence",
    "TRACKER_RATIOS",
]

#: The paper's per-workload tracker:cache ratios (Section 5.2): high skew
#: needs less history to separate hot from cold.
TRACKER_RATIOS: dict[str, int] = {
    "zipf-0.9": 16,
    "zipf-0.99": 8,
    "zipf-1.2": 4,
    "zipf-1.5": 4,
    "uniform": 4,
}


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs.

    ``paper`` replicates the paper's workload sizes (slow in pure Python);
    ``default`` shrinks the key space and access count ~10-20× while
    preserving every qualitative shape; ``smoke`` is for tests/benchmarks.
    """

    name: str
    key_space: int
    accesses: int
    num_clients: int = 20
    num_servers: int = 8
    seed: int = 42

    @classmethod
    def smoke(cls) -> "Scale":
        """Seconds-scale: CI and pytest-benchmark runs."""
        return cls("smoke", key_space=20_000, accesses=60_000, num_clients=4)

    @classmethod
    def default(cls) -> "Scale":
        """Minutes-scale: the EXPERIMENTS.md numbers."""
        return cls("default", key_space=100_000, accesses=1_000_000)

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's full size (1M keys, 10M accesses)."""
        return cls("paper", key_space=1_000_000, accesses=10_000_000)

    @classmethod
    def named(cls, name: str) -> "Scale":
        """Resolve a preset by name."""
        presets = {"smoke": cls.smoke, "default": cls.default, "paper": cls.paper}
        if name not in presets:
            raise ExperimentError(
                f"unknown scale {name!r}; choose from {sorted(presets)}"
            )
        return presets[name]()


@dataclass
class ExperimentResult:
    """Rows + metadata for one regenerated table/figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned text table plus notes, ready to print."""
        parts = [render_table(self.headers, self.rows, title=self.title)]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def make_generator(dist: str, key_space: int, seed: int) -> KeyGenerator:
    """Build a generator from a distribution id (``uniform``/``zipf-<s>``)."""
    if dist == "uniform":
        return UniformGenerator(key_space, seed=seed)
    if dist.startswith("zipf-"):
        theta = float(dist.split("-", 1)[1])
        return ZipfianGenerator(key_space, theta=theta, seed=seed)
    raise ExperimentError(f"unknown distribution id: {dist!r}")


#: Keys drawn/driven per batch by the streaming harnesses: large enough to
#: amortize per-chunk overhead, small enough to keep the materialized key
#: lists cache- and memory-friendly at paper scale.
STREAM_CHUNK = 16_384


def run_policy_stream(
    policy: CachePolicy,
    generator: KeyGenerator,
    accesses: int,
) -> float:
    """Drive a bare policy with a read-only key stream; returns hit rate.

    The fast path used by the hit-rate experiments (Figure 4 and the
    appendix): no cluster plumbing, every miss is admitted, exactly the
    setting of the paper's hit-rate comparison. Keys are generated and
    consumed in chunks through the batch APIs (``keys_array`` →
    ``run_stream``), which fuse per-access work into single-probe loops.
    """
    keys_array = generator.keys_array
    run_stream = policy.run_stream
    remaining = accesses
    while remaining > 0:
        n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
        run_stream(keys_array(n))
        remaining -= n
    return policy.stats.hit_rate


def run_cluster_workload(
    dist: str,
    scale: Scale,
    policy_factory: Callable[[int], CachePolicy],
    read_fraction: float = 1.0,
    cluster: CacheCluster | None = None,
) -> tuple[CacheCluster, list[FrontEndClient]]:
    """Run ``scale.accesses`` operations through a full cluster.

    Each of ``scale.num_clients`` front ends gets an independently seeded
    stream of the same distribution and its own policy instance; reads
    and writes follow ``read_fraction``. Returns the cluster (per-shard
    loads = the experiment's measurements) and the clients.
    """
    cluster = cluster or CacheCluster(
        num_servers=scale.num_servers, capacity_bytes=1 << 40, value_size=1
    )
    clients = [
        FrontEndClient(cluster, policy_factory(i), client_id=f"front-{i}")
        for i in range(scale.num_clients)
    ]
    per_client = scale.accesses // scale.num_clients
    for i, client in enumerate(clients):
        generator = make_generator(dist, scale.key_space, scale.seed + i)
        if read_fraction >= 1.0:
            get = client.get
            remaining = per_client
            while remaining > 0:
                n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
                for key in generator.keys_array(n):
                    get(format_key(key))
                remaining -= n
        else:
            mixer = OperationMixer(
                generator, read_fraction=read_fraction, seed=scale.seed + 1000 + i
            )
            execute = client.execute
            remaining = per_client
            while remaining > 0:
                n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
                for request in mixer.next_requests(n):
                    execute(request)
                remaining -= n
    return cluster, clients


def mean_confidence(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% confidence half-width (normal approximation).

    Matches the paper's "average overall running time with 95% confidence
    intervals" reporting for Figures 5-6.
    """
    if not values:
        raise ExperimentError("no values to summarize")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return mean, 0.0
    half_width = 1.96 * statistics.stdev(values) / math.sqrt(len(values))
    return mean, half_width
