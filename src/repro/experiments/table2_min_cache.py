"""Table 2: minimum cache-lines per policy to reach back-end balance.

Paper setup: for Zipfian s ∈ {0.9, 0.99, 1.2}, first measure the
load-imbalance with no front-end cache, then for each policy (LRU, LFU,
ARC, LRU-2, CoT) find the minimum number of cache-lines for which the
back-end load-imbalance drops to the target I_t = 1.1.

Paper's numbers (1M keys, I_t=1.1):

    dist       no-cache   LRU   LFU   ARC   LRU-2   CoT
    zipf 0.90      1.35    64    16    16       8     8
    zipf 0.99      1.73   128    16    16      16     8
    zipf 1.20      4.18  2048  2048  1024    1024   512

Headline: CoT needs **50-93.75% fewer lines** than the others, and LRU-2
(whose history equals CoT's tracker) is the runner-up — tracking beyond
the cache is what buys balance per line.

The candidate sizes are powers of two, as in the paper; imbalance is
measured over the whole run's per-shard lookups.
"""

from __future__ import annotations

import math

from repro.cluster.cluster import CacheCluster
from repro.engine import ClusterRunner, PolicySpec, ScenarioSpec, WorkloadSpec
from repro.engine.parallel import map_calls
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale, TRACKER_RATIOS
from repro.metrics.imbalance import load_imbalance
from repro.policies.registry import POLICY_NAMES
from repro.workloads.base import format_key

__all__ = ["run", "EXPERIMENT_ID", "TARGET_IMBALANCE"]

EXPERIMENT_ID = "table2"
TARGET_IMBALANCE = 1.1
DISTS = ("zipf-0.9", "zipf-0.99", "zipf-1.2")
#: Fraction of accesses used to warm the caches before measurement starts.
#: The paper's 10M-access runs amortize cold-start misses away; at reduced
#: scale the warm-up phase must be excluded explicitly or its (cache-less)
#: skew dominates the measured imbalance.
WARMUP_FRACTION = 0.25


def _measure(
    dist: str,
    scale: Scale,
    policy_name: str | None,
    cache_size: int,
    shares: dict[str, float] | None = None,
) -> tuple[float, int]:
    """Measure steady-state back-end imbalance for one configuration.

    Clients are interleaved round-robin over independently seeded streams
    (the engine's interleaved mode); per-shard lookups are counted only
    after the warm-up fraction. When ``shares`` (the ring's key-count
    share per shard) is given, loads are normalized by them before taking
    max/min, removing the hashing layer's systematic spread from the
    measurement. Returns ``(imbalance, measured_lookups)``.
    """
    ratio = TRACKER_RATIOS.get(dist, 4)
    if policy_name is None or cache_size == 0:
        policy = PolicySpec()
    else:
        policy = PolicySpec(
            name=policy_name,
            cache_lines=cache_size,
            tracker_lines=ratio * cache_size,
        )
    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(dist=dist),
        policy=policy,
        interleave=True,
        warmup_fraction=WARMUP_FRACTION,
    )
    loads = dict(ClusterRunner().run(spec).telemetry.epoch_shard_loads)
    sample = sum(loads.values())
    if shares is None:
        return load_imbalance(loads), sample
    normalized = {
        sid: count / max(shares.get(sid, 0.0), 1e-12)
        for sid, count in loads.items()
    }
    return load_imbalance({s: int(round(v)) for s, v in normalized.items()}), sample


def _ring_shares(scale: Scale) -> dict[str, float]:
    """Expected per-shard key-count shares of the deterministic ring."""
    cluster = CacheCluster(
        num_servers=scale.num_servers, capacity_bytes=1 << 40, value_size=1
    )
    counts = {sid: 0 for sid in cluster.server_ids}
    for key_id in range(scale.key_space):
        counts[cluster.ring.server_for(format_key(key_id))] += 1
    return {sid: count / scale.key_space for sid, count in counts.items()}


def _noise_allowance(sample: int, num_servers: int) -> float:
    """Multiplicative slack on the target for a finite lookup sample.

    For ``n`` balanced lookups over ``k`` shards the per-shard relative
    standard deviation is ``sqrt((k-1)/n)``; the expected max-min spread
    across k≈8 shards is ≈2.9 of those, so the measured max/min ratio of
    a *perfectly balanced* system concentrates near ``1 + 3σ``. At paper
    scale the allowance vanishes (<1% at 1M lookups).
    """
    if sample <= 0:
        return 1.0
    sigma = math.sqrt((num_servers - 1) / sample)
    return 1.0 + 3.2 * sigma


def _candidate_sizes(key_space: int) -> list[int]:
    """Powers of two up to ~2% of the key space."""
    sizes = []
    size = 2
    while size <= max(512, key_space // 40):
        sizes.append(size)
        size *= 2
    return sizes


def _table2_task(
    dist: str,
    scale: Scale,
    policy_name: str | None,
    target: float,
    shares: dict[str, float] | None,
) -> object:
    """One fabric task of the Table 2 search (module-level: spawn-safe).

    ``policy_name`` of ``None`` is the distribution's no-cache baseline
    (returns the rounded imbalance); otherwise runs the full early-exit
    min-cache search for that policy (returns the found size or ``"-"``).
    Each task runs its interleaved measurements in the exact sequential
    order, so captured telemetry snapshots replay identically.
    """
    if policy_name is None:
        no_cache, _ = _measure(dist, scale, None, 0)
        return round(no_cache, 2)
    for size in _candidate_sizes(scale.key_space):
        imbalance, sample = _measure(dist, scale, policy_name, size, shares)
        if imbalance <= target * _noise_allowance(sample, scale.num_servers):
            return size
    return "-"


def run(scale: Scale | None = None, target: float = TARGET_IMBALANCE) -> ExperimentResult:
    """Regenerate Table 2 at the given scale.

    At reduced scales the measured max/min ratio of even a perfectly
    balanced back end sits above 1.0: finite lookup samples have binomial
    spread, and small key spaces give the ring uneven key shares. Two
    corrections make the paper's acceptance test scale-invariant (both
    vanish at paper scale): per-shard loads are normalized by the ring's
    deterministic key shares, and the target gets a noise allowance
    derived from each trial's measured sample size (see
    :func:`_noise_allowance`).
    """
    scale = scale or Scale.default()
    shares = _ring_shares(scale)
    # One task per (dist × policy) search plus one no-cache baseline per
    # dist — each search keeps its early-exit loop intact inside its
    # worker; results come back in the sequential emission order.
    tasks = [
        (dist, scale, name, target, shares)
        for dist in DISTS
        for name in (None, *POLICY_NAMES)
    ]
    values = iter(map_calls(_table2_task, tasks))
    rows: list[list[object]] = []
    for dist in DISTS:
        row: list[object] = [dist, next(values)]
        for _name in POLICY_NAMES:
            row.append(next(values))
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Table 2 — min cache-lines to reach I_t = {target}",
        headers=["dist", "no_cache_imbalance", *POLICY_NAMES],
        rows=rows,
        notes=[
            f"{scale.accesses:,} lookups over {scale.key_space:,} keys, "
            f"{scale.num_clients} clients, {scale.num_servers} shards; "
            "candidate sizes are powers of two ('-' = never reached)",
            "loads normalized by ring key shares; target gets a per-trial "
            "finite-sample noise allowance (vanishes at paper scale)",
            "paper (1M keys): no-cache 1.35/1.73/4.18; CoT needs 8/8/512 "
            "lines vs 64/128/2048 for LRU — 50% to 93.75% less cache",
        ],
        extras={"target": target, "scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "minimum cache-lines per policy to reach back-end balance",
    run,
    order=30,
)
