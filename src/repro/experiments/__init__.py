"""Harnesses that regenerate every table and figure of the paper's
evaluation (Section 5 + appendix), one module per artifact. Importing
this package imports every experiment module, which registers each one
in the engine's spec registry (:mod:`repro.engine.registry`) — the CLI
(``python -m repro.experiments``) and the benches enumerate that registry
rather than a hand-maintained list. See DESIGN.md's per-experiment
index."""

from repro.experiments import (  # noqa: F401  (imported to register specs)
    appendix_tracker_size,
    export,
    extension_adaptive,
    extension_chaos,
    extension_decay,
    extension_distributions,
    extension_edge_rtt,
    extension_hotkey,
    extension_write,
    fig3_cache_size_sweep,
    fig4_hit_rates,
    fig5_end_to_end,
    fig6_single_client,
    fig78_adaptive_resizing,
    table2_min_cache,
    ycsb_bug,
)
from repro.experiments.common import ExperimentResult, Scale

__all__ = [
    "ExperimentResult",
    "Scale",
    "appendix_tracker_size",
    "export",
    "extension_adaptive",
    "extension_chaos",
    "extension_decay",
    "extension_distributions",
    "extension_edge_rtt",
    "extension_hotkey",
    "extension_write",
    "fig3_cache_size_sweep",
    "fig4_hit_rates",
    "fig5_end_to_end",
    "fig6_single_client",
    "fig78_adaptive_resizing",
    "table2_min_cache",
    "ycsb_bug",
]
