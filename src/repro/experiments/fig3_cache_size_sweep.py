"""Figure 3: the need for cache resizing.

Paper setup: 8 memcached shards, 20 clients, Zipfian s=1.5 over 1M keys,
10M lookups, CoT caches with a 4:1 tracker:cache ratio, front-end cache
size swept from 0 to 2048 lines. Reported series:

* back-end **load-imbalance** (max/min shard lookups) per cache size —
  drops from 16.26 (no cache) to below the 1.5 target by 64 lines;
* **relative server load** (back-end lookups vs the no-cache run) —
  the first 64 lines absorb ~91% of back-end load, the next 64 only ~2%
  more: the diminishing-returns argument for minimizing cache size.

The sweep's maximum cache size scales with the key space (the paper's
2048 lines ≈ 0.2% of its 1M keys).
"""

from __future__ import annotations

from repro.core.cache import CoTCache
from repro.engine import PolicySpec, ScenarioSpec, WorkloadSpec
from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "fig3"

#: The paper's Figure 3 parameters.
THETA = 1.5
TRACKER_RATIO = 4
TARGET_IMBALANCE = 1.5


def sweep_sizes(key_space: int) -> list[int]:
    """0 plus powers of two up to ~0.2% of the key space (min 64)."""
    max_size = max(64, key_space // 500)
    sizes = [0]
    size = 2
    while size <= max_size:
        sizes.append(size)
        size *= 2
    return sizes


class _Fig3PolicyFactory:
    """Per-client CoT factory for one sweep point.

    A picklable callable class (not a closure) so the spec stays
    spawn-safe for the parallel fabric.
    """

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, _i: int) -> CoTCache:
        # Size 0 is represented by a capacity-0 CoT that never admits.
        if self.size == 0:
            return CoTCache(0, tracker_capacity=2)
        return CoTCache(self.size, tracker_capacity=TRACKER_RATIO * self.size)


def run(scale: Scale | None = None, sizes: list[int] | None = None) -> ExperimentResult:
    """Regenerate Figure 3 at the given scale."""
    scale = scale or Scale.default()
    sizes = sizes if sizes is not None else sweep_sizes(scale.key_space)
    dist = f"zipf-{THETA}"

    # One independent cluster run per sweep point, fanned across the
    # fabric; the baseline (no-cache) total comes from the first point.
    specs = [
        ScenarioSpec(
            scale=scale,
            workload=WorkloadSpec(dist=dist),
            policy=PolicySpec(factory=_Fig3PolicyFactory(cache_size)),
        )
        for cache_size in sizes
    ]
    snapshots = map_specs("cluster", specs)
    rows: list[list[object]] = []
    baseline_lookups: int | None = None
    reached_at: int | None = None
    for cache_size, telemetry in zip(sizes, snapshots):
        total = sum(telemetry.shard_loads.values())
        if baseline_lookups is None:
            baseline_lookups = total
        imbalance = telemetry.backend_imbalance
        relative = total / baseline_lookups if baseline_lookups else 1.0
        if reached_at is None and imbalance <= TARGET_IMBALANCE:
            reached_at = cache_size
        rows.append(
            [
                cache_size,
                round(imbalance, 2),
                round(relative, 4),
                round(telemetry.hit_rate, 4),
            ]
        )

    notes = [
        f"workload: Zipfian s={THETA}, {scale.key_space:,} keys, "
        f"{scale.accesses:,} lookups, {scale.num_clients} clients, "
        f"{scale.num_servers} shards, CoT tracker:cache = {TRACKER_RATIO}:1",
        "paper: no-cache imbalance 16.26; 64 lines reach I_t=1.5 and cut "
        "relative load by 91%; the second 64 lines add only ~2% more",
    ]
    if reached_at is not None:
        notes.append(
            f"measured: target I_t={TARGET_IMBALANCE} first reached at "
            f"{reached_at} cache-lines"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Figure 3 — load-imbalance & relative load vs front-end cache size",
        headers=["cache_lines", "load_imbalance", "relative_server_load", "hit_rate"],
        rows=rows,
        notes=notes,
        extras={"target_reached_at": reached_at, "scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "load-imbalance & relative back-end load vs front-end cache size",
    run,
    order=10,
)
