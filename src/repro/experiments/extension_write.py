"""Extension: the write-path coherence axis under elastic control.

The paper's evaluation is read-dominated: writes invalidate the
front-end copy (cache-aside) and everything else follows from read
traffic. Real deployments pick a *write policy* too — and the choice
changes both the coherence guarantee and what an elastic controller
should optimize for. This experiment drives the full YCSB core suite
(A-F, :mod:`repro.workloads.ycsb`) across every mode of
:mod:`repro.cluster.writepolicy`:

* **cache-aside** — the paper's inline protocol (invalidate on write);
* **write-through** — the shard is updated synchronously, so an
  acknowledged write is never served stale from the caching layer;
* **write-behind** — acknowledged writes queue in bounded per-shard
  dirty buffers and flush on the runner's cadence; a shard crash can
  lose at most ``dirty_limit`` acknowledged writes;
* **ttl** — writes go to storage only and cached copies expire on a
  logical clock (bounded staleness instead of invalidation traffic).

Each (letter, mode) cell runs twice on identical seeds with elastic
front ends (:class:`~repro.core.elastic.ElasticCoTClient`): once under
the paper's imbalance controller
(:class:`~repro.core.resizing.ResizingController`) and once under the
cost-aware controller (:class:`~repro.core.costaware.CostAwareController`,
after Carra et al. arXiv:1802.04696). The comparison column is the
*net value* ledger both controllers are implicitly optimizing:
``hit_value x hits - line_cost x sum(cache lines rented per epoch)`` —
the imbalance controller buys hits with memory until balance is reached;
the cost controller stops when the marginal line no longer pays rent.

The run closes with a write-behind chaos check: kill the shard holding
the deepest dirty buffer mid-stream, revive it cold, and assert the
acknowledged-write loss is bounded by ``dirty_limit`` — the loss budget
the mode advertises (also pinned, step for step, by the model-based
fuzzer in ``tests/test_cluster_stateful.py``).
"""

from __future__ import annotations

import random
from typing import Any

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.writepolicy import WRITE_MODES, WriteBehindPolicy
from repro.core.costaware import CostAwareController
from repro.core.elastic import ElasticCoTClient
from repro.engine import (
    ClusterRunner,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    WriteSpec,
)
from repro.engine import telemetry as T
from repro.engine.registry import register_experiment
from repro.engine.runners import ScenarioResult
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, Scale
from repro.policies.registry import make_policy
from repro.workloads.ycsb import CoreWorkload, YcsbOperationSource

__all__ = [
    "EXPERIMENT_ID",
    "run",
    "run_cell",
    "write_behind_chaos_check",
]

EXPERIMENT_ID = "ext-write"

LETTERS = ("a", "b", "c", "d", "e", "f")
CONTROLLERS = ("imbalance", "cost")

#: the net-value ledger (units arbitrary; only the ratio matters) —
#: shared with CostAwareController's defaults so its break-even rate
#: is exactly the ledger it is scored on
HIT_VALUE = 1.0
LINE_COST = 0.05

TARGET_IMBALANCE = 1.5
INITIAL_CACHE = 4
INITIAL_TRACKER = 8
BASE_EPOCH = 512

#: write-behind loss budget (per shard) for the grid and the chaos check
DIRTY_LIMIT = 32
FLUSH_EVERY = 1_024
#: ttl mode: logical-clock ticks a cached copy lives
TTL_TICKS = 2_048


class _YcsbMixerFactory:
    """Picklable per-client YCSB stream factory (module-level class)."""

    def __init__(self, letter: str, record_count: int, seed: int) -> None:
        self.letter = letter
        self.record_count = record_count
        self.seed = seed

    def __call__(self, client_index: int) -> YcsbOperationSource:
        return YcsbOperationSource(
            CoreWorkload(
                self.letter,
                record_count=self.record_count,
                seed=self.seed + 1_000 * client_index,
            )
        )


class _ElasticFactory:
    """Picklable elastic-front-end factory, one controller kind per run."""

    def __init__(self, kind: str, base_epoch: int = BASE_EPOCH) -> None:
        if kind not in CONTROLLERS:
            raise ExperimentError(f"unknown controller kind: {kind!r}")
        self.kind = kind
        self.base_epoch = base_epoch

    def __call__(self, cluster: CacheCluster, index: int) -> ElasticCoTClient:
        controller = None
        if self.kind == "cost":
            controller = CostAwareController(
                hit_value=HIT_VALUE, line_cost=LINE_COST
            )
        return ElasticCoTClient(
            cluster,
            target_imbalance=TARGET_IMBALANCE,
            initial_cache=INITIAL_CACHE,
            initial_tracker=INITIAL_TRACKER,
            base_epoch=self.base_epoch,
            controller=controller,
            client_id=f"elastic-{index}",
        )


def _cell_spec(
    scale: Scale, letter: str, mode: str, controller: str
) -> ScenarioSpec:
    return ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(
            mixer_factory=_YcsbMixerFactory(letter, scale.key_space, scale.seed)
        ),
        policy=PolicySpec(),  # unused: the factory builds CoT caches
        topology=TopologySpec(
            num_servers=scale.num_servers,
            num_clients=scale.num_clients,
            write=WriteSpec(
                mode=mode,
                dirty_limit=DIRTY_LIMIT,
                flush_every=FLUSH_EVERY,
                ttl=TTL_TICKS,
            ),
        ),
        client_factory=_ElasticFactory(controller),
    )


class CellMetrics:
    """What one (letter, mode, controller) run contributes."""

    def __init__(self, result: ScenarioResult) -> None:
        counters = result.telemetry.counters
        self.hits = counters.get(T.HITS, 0)
        self.misses = counters.get(T.MISSES, 0)
        accesses = self.hits + self.misses
        self.hit_rate = self.hits / accesses if accesses else 0.0
        clients = [
            c for c in result.front_ends if isinstance(c, ElasticCoTClient)
        ]
        #: cache lines rented, summed over every client's every epoch —
        #: the memory-cost integral of the run
        self.lines_rented = sum(
            record.snapshot.cache_capacity
            for client in clients
            for record in client.history
        )
        self.epochs = sum(len(client.history) for client in clients)
        self.final_cache = max(
            (client.cot.capacity for client in clients), default=0
        )
        self.net_value = HIT_VALUE * self.hits - LINE_COST * self.lines_rented
        self.lost_writes = counters.get(T.WRITE_LOST, 0)

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "lines_rented": self.lines_rented,
            "epochs": self.epochs,
            "final_cache": self.final_cache,
            "net_value": self.net_value,
            "lost_writes": self.lost_writes,
        }


def run_cell(
    scale: Scale, letter: str, mode: str, controller: str
) -> CellMetrics:
    """One grid cell: a YCSB letter at a write mode under one controller."""
    if mode not in WRITE_MODES:
        raise ExperimentError(f"unknown write mode: {mode!r}")
    result = ClusterRunner().run(_cell_spec(scale, letter, mode, controller))
    return CellMetrics(result)


def write_behind_chaos_check(
    dirty_limit: int = 8, accesses: int = 6_000, seed: int = 7
) -> dict[str, Any]:
    """Kill the dirtiest shard mid-run; the loss must stay <= dirty_limit.

    Drives a front end by hand (no runner) so the kill lands while the
    victim's dirty buffer is at a known depth: writes queue, the shard
    crashes, a cold revival drops the dead incarnation's queue — and the
    acknowledged-write loss is exactly that frozen queue, never more
    than the advertised bound.
    """
    faults = FaultInjector()
    cluster = CacheCluster(num_servers=4, faults=faults)
    wb = WriteBehindPolicy(dirty_limit=dirty_limit)
    wb.bind_cluster(cluster)
    client = FrontEndClient(
        cluster,
        make_policy("cot", 64, tracker_capacity=128),
        client_id="chaos-fe",
    )
    client.attach_write_policy(wb)
    rng = random.Random(seed)

    def drive(n: int) -> None:
        for _ in range(n):
            key = f"key-{rng.randrange(4096)}"
            if rng.random() < 0.5:
                client.set(key, (key, rng.random()))
            else:
                client.get(key)

    drive(accesses // 2)
    snapshot = wb.dirty_snapshot()
    victim = max(
        cluster.server_ids, key=lambda sid: len(snapshot.get(sid, {}))
    )
    frozen = len(snapshot.get(victim, {}))
    cluster.kill_server(victim)
    drive(accesses // 4)  # victim-bound writes sync-fall-back to storage
    # A re-write of a queued key while the shard is down supersedes the
    # queue entry durably (sync fallback + discard), so the loss at
    # revival is the *remaining* depth — still bounded by dirty_limit.
    at_revival = len(wb.dirty_snapshot().get(victim, {}))
    cluster.revive_server(victim, cold=True)  # drops the frozen queue
    drive(accesses // 4)
    wb.flush()
    lost = wb.stats.lost_writes
    return {
        "dirty_limit": dirty_limit,
        "frozen_depth": frozen,
        "depth_at_revival": at_revival,
        "write_behind_lost": lost,
        "peak_dirty": wb.stats.peak_dirty,
        "bound_ok": (
            lost == at_revival
            and lost <= dirty_limit
            and wb.stats.peak_dirty <= dirty_limit
        ),
    }


def _cell_scale(scale: Scale) -> Scale:
    """Per-cell sizing: the 48-cell grid shares the scale's op budget."""
    return scale.scaled(
        accesses=max(24_000, scale.accesses // 16),
        num_clients=2,
        key_space=min(scale.key_space, 20_000),
    )


def run(scale: Scale | None = None) -> ExperimentResult:
    """The full grid + the write-behind chaos check; returns the table."""
    scale = scale or Scale.default()
    cell = _cell_scale(scale)
    rows: list[list[object]] = []
    extras: dict[str, Any] = {"cells": {}}
    cost_wins = 0
    for letter in LETTERS:
        for mode in WRITE_MODES:
            metrics = {
                kind: run_cell(cell, letter, mode, kind)
                for kind in CONTROLLERS
            }
            if metrics["cost"].net_value >= metrics["imbalance"].net_value:
                cost_wins += 1
            for kind in CONTROLLERS:
                m = metrics[kind]
                rows.append(
                    [
                        letter.upper(),
                        mode,
                        kind,
                        f"{m.hit_rate:.1%}",
                        m.final_cache,
                        m.epochs,
                        round(m.net_value, 1),
                    ]
                )
            extras["cells"][f"{letter}/{mode}"] = {
                kind: metrics[kind].as_dict() for kind in CONTROLLERS
            }
    chaos = write_behind_chaos_check()
    if not chaos["bound_ok"]:
        raise ExperimentError(
            f"write-behind chaos lost {chaos['write_behind_lost']} acknowledged "
            f"writes against a dirty_limit of {chaos['dirty_limit']}"
        )
    extras.update(chaos)
    extras["cost_wins"] = cost_wins
    total_cells = len(LETTERS) * len(WRITE_MODES)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            "Extension — write-path coherence x elastic control "
            f"(YCSB A-F, {len(WRITE_MODES)} write modes, 2 controllers)"
        ),
        headers=[
            "workload", "write_mode", "controller", "hit_rate",
            "final_C", "epochs", "net_value",
        ],
        rows=rows,
        notes=[
            f"net_value = {HIT_VALUE:g} x hits - {LINE_COST:g} x cache lines "
            "rented per epoch (summed over clients) — the ledger the "
            "cost-aware controller drives to break-even",
            f"cost-aware controller matches or beats the imbalance "
            f"controller's net value in {cost_wins}/{total_cells} cells",
            f"write-behind chaos: killed the dirtiest shard cold with "
            f"{chaos['frozen_depth']} queued writes; lost "
            f"{chaos['write_behind_lost']} acknowledged writes "
            f"(bound: dirty_limit={chaos['dirty_limit']}) — bound held",
            "workload E is scan-heavy: scans route through get_many and do "
            "not tick the elastic epoch counter, so E closes fewer epochs "
            "than the point-read letters at the same op count",
        ],
        extras=extras,
    )


register_experiment(
    EXPERIMENT_ID,
    "write-path modes x YCSB A-F under imbalance vs cost-aware control",
    run,
    order=120,
)
