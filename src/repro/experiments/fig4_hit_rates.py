"""Figure 4 (a, b, c): hit rate vs cache size for every policy.

Paper setup: Zipfian workloads with s ∈ {0.90, 0.99, 1.2} over 1M keys,
10M accesses, cache sizes 2 → 1024 lines, comparing LRU, LFU, ARC, LRU-2,
CoT, and the theoretical perfect cache (TPC) computed from the Zipfian
CDF. CoT's tracker:cache ratio is per-skew (16:1 / 8:1 / 4:1) and LRU-2's
history is configured equal to CoT's tracker.

Headline results to reproduce: CoT tracks TPC closely and beats every
policy at every size; CoT reaches LRU/LFU's hit rate with ~75% fewer
lines and ARC's with ~50% fewer; the CoT advantage narrows as skew grows.
"""

from __future__ import annotations

from repro.engine import PolicySpec, ScenarioSpec, WorkloadSpec
from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale, TRACKER_RATIOS
from repro.policies.registry import POLICY_NAMES
from repro.workloads.zipfian import zipf_cdf

__all__ = ["run", "run_all", "EXPERIMENT_ID", "SKEWS"]

EXPERIMENT_ID = "fig4"
SKEWS = (0.90, 0.99, 1.2)


def sweep_sizes(key_space: int) -> list[int]:
    """Powers of two from 2 up to ~1% of the key space (paper: 2→1024)."""
    max_size = max(64, key_space // 100)
    sizes = []
    size = 2
    while size <= max_size:
        sizes.append(size)
        size *= 2
    return sizes


def run(
    theta: float = 0.99,
    scale: Scale | None = None,
    sizes: list[int] | None = None,
) -> ExperimentResult:
    """Regenerate one Figure 4 panel (one skew value)."""
    scale = scale or Scale.default()
    sizes = sizes if sizes is not None else sweep_sizes(scale.key_space)
    ratio = TRACKER_RATIOS.get(f"zipf-{theta:g}", 4)
    dist = f"zipf-{theta:g}"

    # The size×policy grid is embarrassingly parallel: every cell is an
    # independent spec with its own pinned seed, fanned across the
    # fabric and merged back in grid order.
    specs = [
        ScenarioSpec(
            scale=scale,
            workload=WorkloadSpec(dist=dist),
            policy=PolicySpec(
                name=name,
                cache_lines=cache_size,
                tracker_lines=ratio * cache_size,
            ),
        )
        for cache_size in sizes
        for name in POLICY_NAMES
    ]
    snapshots = iter(map_specs("policy", specs))
    rows: list[list[object]] = []
    for cache_size in sizes:
        row: list[object] = [cache_size]
        for _name in POLICY_NAMES:
            row.append(round(next(snapshots).hit_rate * 100, 2))
        row.append(round(zipf_cdf(cache_size, scale.key_space, theta) * 100, 2))
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Figure 4 — hit rate (%) vs cache size, Zipfian s={theta:g}",
        headers=["cache_lines", *POLICY_NAMES, "tpc"],
        rows=rows,
        notes=[
            f"{scale.accesses:,} accesses over {scale.key_space:,} keys; "
            f"CoT tracker (and LRU-2 history) = {ratio}:1 of cache size",
            "paper: CoT ≈ TPC and above all policies at every size; the "
            "advantage narrows as skew grows",
        ],
        extras={"theta": theta, "ratio": ratio, "scale": scale.name},
    )


def run_all(scale: Scale | None = None) -> list[ExperimentResult]:
    """All three panels (s = 0.90, 0.99, 1.2)."""
    return [run(theta, scale=scale) for theta in SKEWS]


register_experiment(
    EXPERIMENT_ID,
    "hit rate vs cache size for every policy (three Zipfian skews)",
    run_all,
    order=20,
)
