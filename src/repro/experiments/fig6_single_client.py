"""Figure 6: end-to-end running time with a single client thread.

Paper setup: one client thread issuing 50K lookups (1M/20) — isolating
the effect of back-end queueing/thrashing from the raw cost of skew. The
paper's observations:

1. no-cache runtimes for Zipf 0.99 / 1.2 are 3.2× / 4.5× the uniform
   runtime — "proportional to the load-imbalance factors" (1.73 / 4.18)
   rather than to the thrashing-amplified ratios of Figure 5;
2. with a small front-end cache, the *skewed* workloads become **faster
   than uniform**: the cache both removes the hot-shard slowdown and
   serves most lookups locally.

Our simulation reproduces observation 2 exactly and observation 1
qualitatively (ordering preserved; factors smaller — the per-request
hot-shard slowdown the paper measured on real hardware is modeled by the
``load_penalty`` term and documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale, mean_confidence
from repro.experiments.fig5_end_to_end import (
    ALL_CONFIGS,
    CACHE_LINES,
    DISTS,
    build_spec,
)

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "fig6"


def run(scale: Scale | None = None, repetitions: int = 3) -> ExperimentResult:
    """Regenerate Figure 6: one client, scale.accesses/20 lookups."""
    scale = scale or Scale.default()
    lookups = max(1000, scale.accesses // 20)
    specs = [
        build_spec(
            dist,
            policy_name,
            scale,
            rep,
            num_clients=1,
            requests_per_client=lookups,
        )
        for policy_name in ALL_CONFIGS
        for dist in DISTS
        for rep in range(repetitions)
    ]
    snapshots = iter(map_specs("sim", specs))
    rows: list[list[object]] = []
    for policy_name in ALL_CONFIGS:
        row: list[object] = [policy_name]
        for dist in DISTS:
            runtimes = [next(snapshots).runtime for _ in range(repetitions)]
            mean, ci = mean_confidence(runtimes)
            row.append(f"{mean:.3f}±{ci:.3f}")
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Figure 6 — end-to-end running time (single client thread)",
        headers=["policy", *DISTS],
        rows=rows,
        notes=[
            f"{lookups:,} lookups by 1 closed-loop client; {CACHE_LINES} "
            "cache-lines; simulated seconds, mean ± 95% CI",
            "paper shapes: no-cache skewed ≈ 3.2×/4.5× uniform; with a "
            "front-end cache skewed runs *faster* than uniform",
        ],
        extras={"scale": scale.name, "repetitions": repetitions},
    )


register_experiment(
    EXPERIMENT_ID,
    "end-to-end running time with a single client thread",
    run,
    order=50,
)
