"""Extension experiment: front-end cache gains vs network distance.

The paper measures its end-to-end numbers at a same-cluster RTT of
244 µs and argues: "In real-world deployments where front-end servers
are deployed in edge-datacenters and the RTT ... is in order of 10s of
ms, front-end caches achieve more significant performance gains."

This extension tests that claim: the Figure 5 configuration is re-run at
RTTs from the paper's 244 µs up to 40 ms, reporting the runtime
reduction a 512-line CoT cache buys at each distance. The *absolute*
gain must grow monotonically with RTT (every local hit saves one round
trip, and round trips get dearer), converging to the hit rate as the
relative reduction ceiling.
"""

from __future__ import annotations

from repro.engine import (
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale
from repro.sim.network import FixedLatency

__all__ = ["run", "EXPERIMENT_ID", "RTTS"]

EXPERIMENT_ID = "ext-edge-rtt"
#: Paper's same-cluster RTT up to edge-datacenter distances.
RTTS = (244e-6, 1e-3, 5e-3, 20e-3, 40e-3)
DIST = "zipf-0.99"
CACHE_LINES = 512
RATIO = 8


def _build_spec(scale: Scale, rtt: float, cached: bool) -> ScenarioSpec:
    clients = min(scale.num_clients, 8)
    per_client = max(200, scale.accesses // (clients * 20))
    if cached:
        policy = PolicySpec(
            name="cot",
            cache_lines=CACHE_LINES,
            tracker_lines=RATIO * CACHE_LINES,
        )
    else:
        policy = PolicySpec()
    return ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(dist=DIST),
        policy=policy,
        topology=TopologySpec(num_clients=clients),
        requests_per_client=per_client,
        latency=FixedLatency(rtt),
    )


def run(scale: Scale | None = None) -> ExperimentResult:
    """Sweep the RTT and report CoT's runtime reduction at each point."""
    scale = scale or Scale.default()
    specs = [
        _build_spec(scale, rtt, cached)
        for rtt in RTTS
        for cached in (False, True)
    ]
    snapshots = iter(map_specs("sim", specs))
    rows: list[list[object]] = []
    for rtt in RTTS:
        bare = next(snapshots).runtime
        cached = next(snapshots).runtime
        reduction = 1.0 - cached / bare if bare else 0.0
        rows.append(
            [
                f"{rtt * 1e3:g} ms",
                round(bare, 3),
                round(cached, 3),
                round(reduction * 100, 1),
                round(bare - cached, 3),
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Extension — CoT's end-to-end gain vs front-end↔back-end RTT",
        headers=[
            "rtt",
            "runtime_no_cache_s",
            "runtime_cot_s",
            "reduction_%",
            "absolute_saving_s",
        ],
        rows=rows,
        notes=[
            f"{DIST}, {CACHE_LINES}-line CoT caches, "
            f"{min(scale.num_clients, 8)} closed-loop clients",
            "paper claim under test: gains grow as front ends move to "
            "edge datacenters (10s of ms RTT)",
            "finding: the *absolute* saving grows linearly with RTT (every "
            "local hit saves a round trip); the *relative* reduction "
            "converges to the hit rate once the network dominates — and "
            "exceeds it at small RTTs where removing back-end thrashing "
            "adds extra gains",
        ],
        extras={"scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "CoT's end-to-end gain vs front-end/back-end RTT (edge claim)",
    run,
    order=130,
)
