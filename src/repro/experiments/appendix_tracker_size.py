"""Appendix figure: effect of tracker size on CoT's hit rate.

Paper setup: Zipfian s=0.99, 10M accesses; for each fixed cache size
C ∈ {1, 3, 7, ..., 511} the tracker is swept from 2C upward, and the hit
rate is recorded. The finding: hit rate climbs steeply with the first few
tracker doublings (up to 2.88× for small caches), then saturates around
K = 16·C — which is why CoT's phase-1 ratio discovery doubles the tracker
until the gain disappears.
"""

from __future__ import annotations

from repro.core.cache import CoTCache
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    make_generator,
    run_policy_stream,
)

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "figA"
THETA = 0.99
RATIOS = (2, 4, 8, 16, 32)


def cache_sizes(key_space: int) -> list[int]:
    """The paper's 2^k - 1 ladder, capped at ~0.5% of the key space."""
    sizes = []
    size = 1
    while size <= max(31, key_space // 200):
        sizes.append(size)
        size = size * 2 + 1
    return sizes


def run(scale: Scale | None = None, sizes: list[int] | None = None) -> ExperimentResult:
    """Regenerate the appendix tracker-size sweep."""
    scale = scale or Scale.default()
    sizes = sizes if sizes is not None else cache_sizes(scale.key_space)
    rows: list[list[object]] = []
    saturation_ratio: dict[int, int] = {}
    for cache_size in sizes:
        row: list[object] = [cache_size]
        previous = None
        for ratio in RATIOS:
            policy = CoTCache(cache_size, tracker_capacity=ratio * cache_size)
            generator = make_generator(
                f"zipf-{THETA:g}", scale.key_space, scale.seed
            )
            hit_rate = run_policy_stream(policy, generator, scale.accesses)
            row.append(round(hit_rate * 100, 2))
            if previous is not None and hit_rate - previous < 0.002:
                saturation_ratio.setdefault(cache_size, ratio)
            previous = hit_rate
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Appendix — CoT hit rate (%) vs tracker:cache ratio (Zipf {THETA})",
        headers=["cache_lines", *[f"K={r}C" for r in RATIOS]],
        rows=rows,
        notes=[
            f"{scale.accesses:,} accesses over {scale.key_space:,} keys",
            "paper: gains saturate around K = 16C; early doublings matter "
            "most for small caches",
        ],
        extras={"saturation_ratio": saturation_ratio, "scale": scale.name},
    )
