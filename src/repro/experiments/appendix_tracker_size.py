"""Appendix figure: effect of tracker size on CoT's hit rate.

Paper setup: Zipfian s=0.99, 10M accesses; for each fixed cache size
C ∈ {1, 3, 7, ..., 511} the tracker is swept from 2C upward, and the hit
rate is recorded. The finding: hit rate climbs steeply with the first few
tracker doublings (up to 2.88× for small caches), then saturates around
K = 16·C — which is why CoT's phase-1 ratio discovery doubles the tracker
until the gain disappears.
"""

from __future__ import annotations

from repro.engine import PolicySpec, ScenarioSpec, WorkloadSpec
from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "figA"
THETA = 0.99
RATIOS = (2, 4, 8, 16, 32)


def cache_sizes(key_space: int) -> list[int]:
    """The paper's 2^k - 1 ladder, capped at ~0.5% of the key space."""
    sizes = []
    size = 1
    while size <= max(31, key_space // 200):
        sizes.append(size)
        size = size * 2 + 1
    return sizes


def run(scale: Scale | None = None, sizes: list[int] | None = None) -> ExperimentResult:
    """Regenerate the appendix tracker-size sweep."""
    scale = scale or Scale.default()
    sizes = sizes if sizes is not None else cache_sizes(scale.key_space)
    # Every (cache size, ratio) cell is an independent stream run; fan
    # the grid across the fabric and scan results back in grid order.
    specs = [
        ScenarioSpec(
            scale=scale,
            workload=WorkloadSpec(dist=f"zipf-{THETA:g}"),
            policy=PolicySpec(
                name="cot",
                cache_lines=cache_size,
                tracker_lines=ratio * cache_size,
            ),
        )
        for cache_size in sizes
        for ratio in RATIOS
    ]
    snapshots = iter(map_specs("policy", specs))
    rows: list[list[object]] = []
    saturation_ratio: dict[int, int] = {}
    for cache_size in sizes:
        row: list[object] = [cache_size]
        previous = None
        for ratio in RATIOS:
            hit_rate = next(snapshots).hit_rate
            row.append(round(hit_rate * 100, 2))
            if previous is not None and hit_rate - previous < 0.002:
                saturation_ratio.setdefault(cache_size, ratio)
            previous = hit_rate
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Appendix — CoT hit rate (%) vs tracker:cache ratio (Zipf {THETA})",
        headers=["cache_lines", *[f"K={r}C" for r in RATIOS]],
        rows=rows,
        notes=[
            f"{scale.accesses:,} accesses over {scale.key_space:,} keys",
            "paper: gains saturate around K = 16C; early doublings matter "
            "most for small caches",
        ],
        extras={"saturation_ratio": saturation_ratio, "scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "CoT hit rate vs tracker:cache ratio (tracker-size saturation)",
    run,
    order=80,
)
