"""Extension: chaos run — shard failures under an elastic front end.

The paper's evaluation assumes a healthy caching layer; clouds do not.
This harness drives the usual Zipfian read stream through an
:class:`~repro.core.elastic.ElasticCoTClient` while a chaos schedule
kills, revives, replaces and degrades back-end shards, and checks three
things the fault-tolerant data plane promises:

* **correctness** — every read returns the authoritative storage value
  even while its owning shard is dead (degraded reads fall back to the
  persistent layer);
* **graceful degradation** — outages show up as counted degraded reads,
  retries and breaker transitions, not as exceptions;
* **churn-safe elasticity** — the controller issues no spurious
  ``EXPAND`` during the outage: a dead (or replaced) shard's zero-load
  entry must not fabricate an ``I_c`` spike.

The run is phased: a healthy warm-up long enough for the Figure-7 style
expansion to converge, then six chaos phases (kill → sustained outage →
cold revival → shard replacement → flaky shard → all clear). Each phase
reports hit rate, degraded reads, retry/breaker activity, resize
decisions and the worst per-epoch ``I_c`` observed.
"""

from __future__ import annotations

from typing import Hashable

from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.retry import BreakerConfig, ClusterGuard, RetryPolicy
from repro.cluster.storage import PersistentStore
from repro.core.elastic import ElasticCoTClient
from repro.experiments.common import (
    STREAM_CHUNK,
    ExperimentResult,
    Scale,
    make_generator,
)
from repro.metrics.resilience import summarize_resilience
from repro.workloads.base import format_key

__all__ = ["run", "EXPERIMENT_ID", "expected_value"]

EXPERIMENT_ID = "ext-chaos"

THETA = 1.2
TARGET_IMBALANCE = 1.1
#: flaky-phase injected error rate (retries should absorb nearly all of it)
FLAKY_RATE = 0.10
#: breaker trips after this many consecutive failures to one shard
FAILURE_THRESHOLD = 4
#: logical operations before an open breaker half-opens to probe
BREAKER_COOLDOWN = 512.0
#: an epoch I_c at or above this is a phantom reading — the zero-load
#: accounting bug produced ratios of ~epoch_length/1 (hundreds), while a
#: genuine skew reading at these scales stays in low single digits
PHANTOM_IMBALANCE = 10.0


def expected_value(key: Hashable) -> object:
    """Authoritative value of ``key`` — what every read must return."""
    return ("chaos-value", key)


def _snap(client: ElasticCoTClient) -> dict[str, int]:
    """Monotone counters, captured at phase boundaries for deltas."""
    stats = client.policy.stats
    guard = client.guard.stats
    transitions = client.guard.breaker_transitions()
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "degraded": client.monitor.degraded_reads(),
        "retries": guard.retries,
        "rejections": guard.open_rejections,
        "opens": transitions["opens"],
        "closes": transitions["closes"],
        "epochs": len(client.history),
    }


def _drive(client, generator, accesses: int) -> int:
    """Run ``accesses`` verified reads; returns how many came back wrong."""
    incorrect = 0
    get = client.get
    keys_array = generator.keys_array
    remaining = accesses
    while remaining > 0:
        n = STREAM_CHUNK if remaining > STREAM_CHUNK else remaining
        for raw in keys_array(n):
            key = format_key(raw)
            if get(key) != ("chaos-value", key):
                incorrect += 1
        remaining -= n
    return incorrect


def run(scale: Scale | None = None, num_servers: int = 4) -> ExperimentResult:
    """Chaos schedule against an elastic front end; returns per-phase rows."""
    scale = scale or Scale.default()
    faults = FaultInjector(seed=scale.seed)
    storage = PersistentStore(value_factory=expected_value)
    cluster = CacheCluster(
        num_servers=num_servers,
        capacity_bytes=1 << 40,
        value_size=1,
        storage=storage,
        faults=faults,
    )
    guard = ClusterGuard(
        cluster.server_ids,
        retry=RetryPolicy(max_attempts=2, base_backoff=1e-4),
        breaker=BreakerConfig(
            failure_threshold=FAILURE_THRESHOLD, cooldown=BREAKER_COOLDOWN
        ),
        seed=scale.seed,
    )
    base_epoch = max(500, scale.accesses // 100)
    client = ElasticCoTClient(
        cluster,
        target_imbalance=TARGET_IMBALANCE,
        initial_cache=2,
        initial_tracker=4,
        base_epoch=base_epoch,
        client_id="chaos-0",
        guard=guard,
    )
    generator = make_generator(f"zipf-{THETA:g}", scale.key_space, scale.seed)

    victim = "cache-1"
    replaced = "cache-2"
    flaky = "cache-0"
    replacement: list[str] = []

    def _replace_shard() -> None:
        cluster.remove_server(replaced)
        replacement.append(cluster.add_server().server_id)

    # (label, action run at phase start, counts-as-churn-for-elasticity)
    schedule = [
        ("healthy warm-up", None, False),
        (f"kill {victim}", lambda: cluster.kill_server(victim), True),
        ("outage continues", None, True),
        (f"revive {victim} (cold)", lambda: cluster.revive_server(victim), True),
        (f"replace {replaced}", _replace_shard, True),
        (f"flaky {flaky} @{FLAKY_RATE:.0%}", lambda: faults.set_flaky(flaky, FLAKY_RATE), False),
        ("all faults cleared", lambda: faults.clear(flaky), False),
    ]
    warmup = scale.accesses // 2
    chaos_each = (scale.accesses - warmup) // (len(schedule) - 1)
    phase_accesses = [warmup] + [chaos_each] * (len(schedule) - 1)

    rows: list[list[object]] = []
    incorrect_total = 0
    spurious_expands = 0
    phantom_epochs = 0
    churn_max_imbalance = 0.0
    post_warmup_expands = 0
    for index, (label, action, churn) in enumerate(schedule):
        if action is not None:
            action()
        outage = bool(faults.down_servers())
        before = _snap(client)
        incorrect_total += _drive(client, generator, phase_accesses[index])
        after = _snap(client)
        reads = phase_accesses[index]
        hits = after["hits"] - before["hits"]
        records = client.history[before["epochs"] :]
        expands = sum(1 for r in records if r.decision == "expand")
        max_imbalance = max(
            (r.snapshot.imbalance for r in records), default=0.0
        )
        if index > 0:
            post_warmup_expands += expands
        phantom_epochs += sum(
            1 for r in records if r.snapshot.imbalance >= PHANTOM_IMBALANCE
        )
        if outage:
            # An EXPAND riding a phantom I_c would mean the dead shard's
            # zero-load entry leaked into the controller's reading.
            spurious_expands += sum(
                1
                for r in records
                if r.decision == "expand"
                and r.snapshot.imbalance >= PHANTOM_IMBALANCE
            )
        if churn:
            churn_max_imbalance = max(churn_max_imbalance, max_imbalance)
        rows.append(
            [
                index,
                label,
                ",".join(sorted(faults.down_servers())) or "-",
                reads,
                round(100.0 * hits / reads, 2),
                after["degraded"] - before["degraded"],
                after["retries"] - before["retries"],
                after["rejections"] - before["rejections"],
                after["opens"] - before["opens"],
                after["closes"] - before["closes"],
                expands,
                round(max_imbalance, 3) if records else "-",
            ]
        )

    resilience = summarize_resilience(guard, client.monitor)
    cache, tracker = client.converged_sizes()
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Extension — chaos run (Zipf {THETA}, {num_servers} shards, "
            f"I_t={TARGET_IMBALANCE})"
        ),
        headers=[
            "phase", "event", "down", "reads", "hit_%", "degraded",
            "retries", "rejected", "opens", "closes", "expands", "max_I_c",
        ],
        rows=rows,
        notes=[
            f"{scale.accesses:,} verified reads over {scale.key_space:,} keys; "
            f"base epoch {base_epoch}; warm-up {warmup:,} then "
            f"{chaos_each:,} per chaos phase",
            f"retry: 2 attempts; breaker: opens after {FAILURE_THRESHOLD} "
            f"consecutive failures, cooldown {BREAKER_COOLDOWN:g} ops",
            "every read is checked against the storage value — "
            f"{incorrect_total} incorrect",
            "an EXPAND on a phantom I_c (>= "
            f"{PHANTOM_IMBALANCE:g}) while a shard is dead would indicate "
            "its zero-load entry polluting the controller (observed: "
            f"{spurious_expands}; worst churn-phase I_c "
            f"{churn_max_imbalance:.3f})",
        ],
        extras={
            "incorrect_reads": incorrect_total,
            "degraded_reads": resilience.degraded_reads,
            "spurious_expands": spurious_expands,
            "phantom_epochs": phantom_epochs,
            "churn_max_imbalance": churn_max_imbalance,
            "post_warmup_expands": post_warmup_expands,
            "replacement_shard": replacement[0] if replacement else None,
            "final_cache": cache,
            "final_tracker": tracker,
            "resilience": resilience.as_row(),
        },
    )
