"""Extension: chaos run — shard failures under an elastic front end.

The paper's evaluation assumes a healthy caching layer; clouds do not.
This harness drives the usual Zipfian read stream through an
:class:`~repro.core.elastic.ElasticCoTClient` while a chaos schedule
kills, revives, replaces and degrades back-end shards, and checks three
things the fault-tolerant data plane promises:

* **correctness** — every read returns the authoritative storage value
  even while its owning shard is dead (degraded reads fall back to the
  persistent layer);
* **graceful degradation** — outages show up as counted degraded reads,
  retries and breaker transitions, not as exceptions;
* **churn-safe elasticity** — the controller issues no spurious
  ``EXPAND`` during the outage: a dead (or replaced) shard's zero-load
  entry must not fabricate an ``I_c`` spike.

The run is the engine's phased cluster mode: a healthy warm-up phase
long enough for the Figure-7 style expansion to converge, then six chaos
phases (kill → sustained outage → cold revival → shard replacement →
flaky shard → all clear), each a :class:`~repro.engine.spec.Phase` whose
action fires against the live cluster. Each phase's
:class:`~repro.engine.telemetry.PhaseTelemetry` reports hit rate,
degraded reads, retry/breaker activity, resize decisions and the worst
per-epoch ``I_c`` observed.
"""

from __future__ import annotations

from typing import Hashable

from repro.cluster.faults import FaultInjector
from repro.cluster.retry import BreakerConfig, ClusterGuard, RetryPolicy
from repro.cluster.storage import PersistentStore
from repro.core.elastic import ElasticCoTClient
from repro.engine import (
    ClusterRunner,
    Phase,
    RunContext,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale
from repro.metrics.resilience import summarize_resilience

__all__ = ["run", "EXPERIMENT_ID", "expected_value"]

EXPERIMENT_ID = "ext-chaos"

THETA = 1.2
TARGET_IMBALANCE = 1.1
#: flaky-phase injected error rate (retries should absorb nearly all of it)
FLAKY_RATE = 0.10
#: breaker trips after this many consecutive failures to one shard
FAILURE_THRESHOLD = 4
#: logical operations before an open breaker half-opens to probe
BREAKER_COOLDOWN = 512.0
#: an epoch I_c at or above this is a phantom reading — the zero-load
#: accounting bug produced ratios of ~epoch_length/1 (hundreds), while a
#: genuine skew reading at these scales stays in low single digits
PHANTOM_IMBALANCE = 10.0


def expected_value(key: Hashable) -> object:
    """Authoritative value of ``key`` — what every read must return."""
    return ("chaos-value", key)


def run(scale: Scale | None = None, num_servers: int = 4) -> ExperimentResult:
    """Chaos schedule against an elastic front end; returns per-phase rows."""
    scale = scale or Scale.default()
    faults = FaultInjector(seed=scale.seed)
    storage = PersistentStore(value_factory=expected_value)
    base_epoch = max(500, scale.accesses // 100)

    def client_factory(cluster, _i: int) -> ElasticCoTClient:
        guard = ClusterGuard(
            cluster.server_ids,
            retry=RetryPolicy(max_attempts=2, base_backoff=1e-4),
            breaker=BreakerConfig(
                failure_threshold=FAILURE_THRESHOLD, cooldown=BREAKER_COOLDOWN
            ),
            seed=scale.seed,
        )
        return ElasticCoTClient(
            cluster,
            target_imbalance=TARGET_IMBALANCE,
            initial_cache=2,
            initial_tracker=4,
            base_epoch=base_epoch,
            client_id="chaos-0",
            guard=guard,
        )

    victim = "cache-1"
    replaced = "cache-2"
    flaky = "cache-0"
    replacement: list[str] = []

    def _replace_shard(ctx: RunContext) -> None:
        ctx.cluster.remove_server(replaced)
        replacement.append(ctx.cluster.add_server().server_id)

    warmup = scale.accesses // 2
    chaos_each = (scale.accesses - warmup) // 6
    # (phase, counts-as-churn-for-elasticity)
    schedule: list[tuple[Phase, bool]] = [
        (Phase("healthy warm-up", accesses=warmup), False),
        (
            Phase(
                f"kill {victim}",
                accesses=chaos_each,
                action=lambda ctx: ctx.cluster.kill_server(victim),
            ),
            True,
        ),
        (Phase("outage continues", accesses=chaos_each), True),
        (
            Phase(
                f"revive {victim} (cold)",
                accesses=chaos_each,
                action=lambda ctx: ctx.cluster.revive_server(victim),
            ),
            True,
        ),
        (Phase(f"replace {replaced}", accesses=chaos_each, action=_replace_shard), True),
        (
            Phase(
                f"flaky {flaky} @{FLAKY_RATE:.0%}",
                accesses=chaos_each,
                action=lambda ctx: ctx.faults.set_flaky(flaky, FLAKY_RATE),
            ),
            False,
        ),
        (
            Phase(
                "all faults cleared",
                accesses=chaos_each,
                action=lambda ctx: ctx.faults.clear(flaky),
            ),
            False,
        ),
    ]

    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(dist=f"zipf-{THETA:g}"),
        topology=TopologySpec(
            num_servers=num_servers,
            num_clients=1,
            storage=storage,
            faults=faults,
        ),
        client_factory=client_factory,
        phases=tuple(phase for phase, _churn in schedule),
        verify_value=expected_value,
    )
    result = ClusterRunner().run(spec)
    client = result.front_end
    guard = client.guard

    rows: list[list[object]] = []
    incorrect_total = 0
    spurious_expands = 0
    phantom_epochs = 0
    churn_max_imbalance = 0.0
    post_warmup_expands = 0
    for phase, (_spec_phase, churn) in zip(result.telemetry.phases, schedule):
        outage = bool(phase.down)
        incorrect_total += phase.incorrect_reads
        records = phase.epoch_events
        expands = sum(1 for r in records if r.decision == "expand")
        max_imbalance = phase.max_imbalance
        if phase.index > 0:
            post_warmup_expands += expands
        phantom_epochs += sum(
            1 for r in records if r.snapshot.imbalance >= PHANTOM_IMBALANCE
        )
        if outage:
            # An EXPAND riding a phantom I_c would mean the dead shard's
            # zero-load entry leaked into the controller's reading.
            spurious_expands += sum(
                1
                for r in records
                if r.decision == "expand"
                and r.snapshot.imbalance >= PHANTOM_IMBALANCE
            )
        if churn:
            churn_max_imbalance = max(churn_max_imbalance, max_imbalance)
        rows.append(
            [
                phase.index,
                phase.label,
                ",".join(phase.down) or "-",
                phase.reads,
                round(100.0 * phase.hit_rate, 2),
                phase.degraded_reads,
                phase.retries,
                phase.open_rejections,
                phase.breaker_opens,
                phase.breaker_closes,
                expands,
                round(max_imbalance, 3) if records else "-",
            ]
        )

    resilience = summarize_resilience(guard, client.monitor)
    cache, tracker = client.converged_sizes()
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Extension — chaos run (Zipf {THETA}, {num_servers} shards, "
            f"I_t={TARGET_IMBALANCE})"
        ),
        headers=[
            "phase", "event", "down", "reads", "hit_%", "degraded",
            "retries", "rejected", "opens", "closes", "expands", "max_I_c",
        ],
        rows=rows,
        notes=[
            f"{scale.accesses:,} verified reads over {scale.key_space:,} keys; "
            f"base epoch {base_epoch}; warm-up {warmup:,} then "
            f"{chaos_each:,} per chaos phase",
            f"retry: 2 attempts; breaker: opens after {FAILURE_THRESHOLD} "
            f"consecutive failures, cooldown {BREAKER_COOLDOWN:g} ops",
            "every read is checked against the storage value — "
            f"{incorrect_total} incorrect",
            "an EXPAND on a phantom I_c (>= "
            f"{PHANTOM_IMBALANCE:g}) while a shard is dead would indicate "
            "its zero-load entry polluting the controller (observed: "
            f"{spurious_expands}; worst churn-phase I_c "
            f"{churn_max_imbalance:.3f})",
        ],
        extras={
            "incorrect_reads": incorrect_total,
            "degraded_reads": resilience.degraded_reads,
            "spurious_expands": spurious_expands,
            "phantom_epochs": phantom_epochs,
            "churn_max_imbalance": churn_max_imbalance,
            "post_warmup_expands": post_warmup_expands,
            "replacement_shard": replacement[0] if replacement else None,
            "final_cache": cache,
            "final_tracker": tracker,
            "resilience": resilience.as_row(),
        },
    )


register_experiment(
    EXPERIMENT_ID,
    "chaos schedule (kill/revive/replace/flaky shards) under elasticity",
    run,
    order=100,
)
