"""Figures 7-8: CoT's adaptive resizing in action.

Figure 7 (expansion): a front end starts with a deliberately tiny CoT
cache (2 lines, 4 tracker entries) against a Zipfian 1.2 workload with
I_t = 1.1 and epoch 5000. The controller first discovers the
tracker:cache ratio (phase 1: tracker doubles, then dips back when the
extra history stops paying), then doubles cache+tracker until I_c ≤ I_t
(phase 2), capturing alpha_t at convergence. The paper converges at
C=512 / K=2048 with alpha_t ≈ 7.8 on its 1M-key workload.

Figure 8 (shrinking): the workload then switches to uniform; the quality
signal (alpha_c, alpha_k_c) collapses, CoT resets the ratio to 2:1 and
halves both sizes epoch over epoch down to negligible values — all while
keeping I_c within the target.

Both experiments run through the engine's phased cluster mode — the dist
switch of Figure 8 is one :class:`~repro.engine.spec.Phase` boundary —
and emit the epoch-by-epoch series the paper plots: cache size, tracker
size, I_c, alpha_c, alpha_t.
"""

from __future__ import annotations

from repro.core.elastic import ElasticCoTClient
from repro.engine import (
    ClusterRunner,
    Phase,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.engine.registry import register_experiment
from repro.engine.runners import ScenarioResult
from repro.experiments.common import ExperimentResult, Scale
from repro.metrics.series import SeriesRecorder

__all__ = ["run_expand", "run_shrink", "EXPERIMENT_ID_EXPAND", "EXPERIMENT_ID_SHRINK"]

EXPERIMENT_ID_EXPAND = "fig7"
EXPERIMENT_ID_SHRINK = "fig8"

THETA = 1.2
TARGET_IMBALANCE = 1.1
EPOCH = 5000


def _elastic_factory(cluster, _i: int) -> ElasticCoTClient:
    return ElasticCoTClient(
        cluster,
        target_imbalance=TARGET_IMBALANCE,
        initial_cache=2,
        initial_tracker=4,
        base_epoch=EPOCH,
    )


def _run_phases(scale: Scale, phases: tuple[Phase, ...]) -> ScenarioResult:
    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(dist=f"zipf-{THETA:g}"),
        policy=PolicySpec(),
        topology=TopologySpec(num_clients=1),
        client_factory=_elastic_factory,
        phases=phases,
    )
    return ClusterRunner().run(spec)


def _history_result(
    result: ScenarioResult,
    experiment_id: str,
    title: str,
    notes: list[str],
    start_epoch: int = 0,
) -> ExperimentResult:
    recorder = SeriesRecorder()
    rows: list[list[object]] = []
    for record in result.telemetry.epoch_events:
        if record.index < start_epoch:
            continue
        row = record.as_row()
        recorder.add_point(
            record.index,
            cache=row["cache"],
            tracker=row["tracker"],
            I_c=row["I_c"],
            alpha_c=row["alpha_c"],
        )
        rows.append(
            [
                row["epoch"],
                row["cache"],
                row["tracker"],
                row["I_c"],
                row["alpha_c"],
                row["alpha_t"],
                row["decision"],
                row["phase"],
            ]
        )
    telemetry = result.telemetry
    cache = int(telemetry.gauges["elastic.final_cache"])
    tracker = int(telemetry.gauges["elastic.final_tracker"])
    notes = [*notes, f"final sizes: C={cache}, K={tracker}"]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=[
            "epoch", "cache", "tracker", "I_c", "alpha_c", "alpha_t",
            "decision", "phase",
        ],
        rows=rows,
        notes=notes,
        extras={
            "series": recorder,
            "final_cache": cache,
            "final_tracker": tracker,
            "alpha_target": telemetry.gauges["elastic.alpha_target"],
        },
    )


def run_expand(scale: Scale | None = None) -> ExperimentResult:
    """Figure 7: elastic expansion from a tiny cache to the I_t answer."""
    scale = scale or Scale.default()
    result = _run_phases(scale, (Phase("expand", accesses=scale.accesses),))
    return _history_result(
        result,
        EXPERIMENT_ID_EXPAND,
        f"Figure 7 — elastic expansion (Zipf {THETA}, I_t={TARGET_IMBALANCE})",
        [
            f"start C=2/K=4, epoch {EPOCH}, {scale.accesses:,} accesses over "
            f"{scale.key_space:,} keys",
            "paper (1M keys): two-phase search settles at C=512/K=2048 with "
            "alpha_t ≈ 7.8",
        ],
    )


def run_shrink(scale: Scale | None = None) -> ExperimentResult:
    """Figure 8: run expansion, switch to uniform, watch the shrink."""
    scale = scale or Scale.default()
    result = _run_phases(
        scale,
        (
            Phase("expand", accesses=scale.accesses),
            Phase("shrink", accesses=scale.accesses, dist="uniform"),
        ),
    )
    switch_epoch = result.telemetry.phases[1].start_epoch
    return _history_result(
        result,
        EXPERIMENT_ID_SHRINK,
        "Figure 8 — elastic shrinking after a switch to uniform",
        [
            f"workload switched to uniform at epoch {switch_epoch}",
            "paper: ratio resets to 2:1, then cache and tracker halve down "
            "to negligible sizes without violating I_t",
        ],
        start_epoch=max(0, switch_epoch - 3),
    )


register_experiment(
    EXPERIMENT_ID_EXPAND,
    "elastic expansion: tiny CoT cache grows to the I_t answer",
    run_expand,
    order=60,
)
register_experiment(
    EXPERIMENT_ID_SHRINK,
    "elastic shrinking after a workload switch to uniform",
    run_shrink,
    order=70,
)
