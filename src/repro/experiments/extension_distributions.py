"""Extension experiment: hit rates beyond the Zipfian family.

Section 3's workload assumptions note that "key hotness can follow
different distributions such as Gaussian or different variations of
Zipfian"; the paper evaluates only Zipfian. This extension runs the
Figure 4 comparison on hotspot, Gaussian, and skewed-latest workloads to
check that CoT's tracker-filter advantage is not a Zipf artifact:

* **hotspot** — a hard hotness cliff (the tracker's easiest case);
* **gaussian** — smooth hotness without a heavy tail;
* **latest** — recency-defined hotness (LRU's home turf, CoT's hardest).

The bespoke generators plug into the engine through
``WorkloadSpec.generator_factory``; the drifting-latest variant uses
per-access :class:`~repro.engine.spec.StreamHooks` for its insert/decay
schedule.
"""

from __future__ import annotations

from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    ScenarioSpec,
    StreamHooks,
    WorkloadSpec,
)
from repro.engine.registry import register_experiment
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, Scale
from repro.policies.registry import POLICY_NAMES
from repro.workloads.base import KeyGenerator
from repro.workloads.gaussian import GaussianGenerator
from repro.workloads.hotspot import HotspotGenerator
from repro.workloads.latest import SkewedLatestGenerator

__all__ = ["run", "EXPERIMENT_ID", "DISTRIBUTIONS"]

EXPERIMENT_ID = "ext-dists"
DISTRIBUTIONS = ("hotspot", "gaussian", "latest")
CACHE_LINES = 64
RATIO = 8


def _build(name: str, scale: Scale) -> KeyGenerator:
    if name == "hotspot":
        return HotspotGenerator(
            scale.key_space,
            hot_set_fraction=0.002,
            hot_opn_fraction=0.9,
            seed=scale.seed,
        )
    if name == "gaussian":
        return GaussianGenerator(
            scale.key_space, sigma=scale.key_space * 0.002, seed=scale.seed
        )
    if name == "latest":
        return SkewedLatestGenerator(scale.key_space, theta=0.99, seed=scale.seed)
    raise ExperimentError(f"unknown distribution: {name!r}")


def _run_latest_with_drift(policy, scale: Scale, decay=None) -> float:
    """Skewed-latest with continuous insertions: the hot spot crawls.

    One simulated insert per ~0.2% of accesses keeps the hottest key
    moving — the recency-defined workload that penalizes pure frequency
    tracking and rewards policies that can retire old trends. ``decay``
    (a :class:`~repro.core.decay.DecayPolicy`) is applied per drift step
    when given — the configuration the ``cot+decay`` column measures.
    """
    generator = _build("latest", scale)
    drift_every = max(1, scale.accesses // (scale.key_space // 200 + 1))

    def before(i: int) -> None:
        if i % drift_every == 0 and i > 0:
            generator.advance()
            if decay is not None:
                decay.on_epoch(policy)

    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(generator_factory=lambda _i: generator),
        policy=PolicySpec(factory=lambda _i: policy),
        hooks=StreamHooks(before=before),
    )
    return PolicyStreamRunner().run(spec).telemetry.hit_rate


def _run_stream(policy_spec: PolicySpec, dist: str, scale: Scale) -> float:
    spec = ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(generator_factory=lambda _i: _build(dist, scale)),
        policy=policy_spec,
    )
    return PolicyStreamRunner().run(spec).telemetry.hit_rate


def run(scale: Scale | None = None, cache_lines: int = CACHE_LINES) -> ExperimentResult:
    """Hit rates of every policy under the non-Zipfian distributions."""
    from repro.core.decay import ExponentialDecay
    from repro.policies.registry import make_policy

    scale = scale or Scale.default()
    rows: list[list[object]] = []
    for dist in DISTRIBUTIONS:
        row: list[object] = [dist]
        for name in POLICY_NAMES:
            if dist == "latest":
                policy = make_policy(
                    name, cache_lines, tracker_capacity=RATIO * cache_lines
                )
                hit_rate = _run_latest_with_drift(policy, scale)
            else:
                hit_rate = _run_stream(
                    PolicySpec(
                        name=name,
                        cache_lines=cache_lines,
                        tracker_lines=RATIO * cache_lines,
                    ),
                    dist,
                    scale,
                )
            row.append(round(hit_rate * 100, 2))
        # The extension column: CoT with continuous exponential decay,
        # retiring stale hotness as the hot spot drifts.
        if dist == "latest":
            policy = make_policy(
                "cot", cache_lines, tracker_capacity=RATIO * cache_lines
            )
            hit_rate = _run_latest_with_drift(
                policy, scale, decay=ExponentialDecay(rate=0.7)
            )
            row.append(round(hit_rate * 100, 2))
        else:
            row.append("=cot")
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Extension — hit rate (%) on non-Zipfian workloads, C={cache_lines}",
        headers=["dist", *POLICY_NAMES, "cot+decay"],
        rows=rows,
        notes=[
            f"{scale.accesses:,} accesses over {scale.key_space:,} keys; "
            f"tracker/history = {RATIO}:1",
            "hotspot: sharp hotness cliff; gaussian: smooth concentration; "
            "latest: drifting recency-defined hotness (the frequency-"
            "tracker's hardest case — old trends must be retired)",
        ],
        extras={"scale": scale.name, "cache_lines": cache_lines},
    )


register_experiment(
    EXPERIMENT_ID,
    "hit rates on non-Zipfian workloads (hotspot/gaussian/latest)",
    run,
    order=120,
)
