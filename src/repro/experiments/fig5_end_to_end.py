"""Figure 5: end-to-end running time with 20 closed-loop clients.

Paper setup: 1M lookups issued by 20 client threads against 8 shards,
RTT 244 µs; workloads uniform / Zipf 0.99 / Zipf 1.2; each policy gets
512 cache-lines, tracker (history) ratio 8:1 for Zipf 0.99 and 4:1 for
Zipf 1.2 and uniform; 10 repetitions, mean ± 95% CI.

Shapes to reproduce (absolute times are simulated, not testbed seconds):

* with **no front-end cache**, skew is catastrophic under thrashing —
  Zipf 0.99 / 1.2 run 8.9× / 12.27× longer than uniform;
* a 512-line CoT cache cuts runtime by ~70% (0.99) / ~88% (1.2); other
  policies land between 52-67% / 80-88%, with LRU-2 second behind CoT;
* on **uniform**, front-end caches cost nothing measurable — the heap
  bookkeeping is noise against the network round trip.
"""

from __future__ import annotations

from repro.engine import (
    PolicySpec,
    ScenarioSpec,
    SimRunner,
    TopologySpec,
    WorkloadSpec,
)
from repro.engine.parallel import map_specs
from repro.engine.registry import register_experiment
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    TRACKER_RATIOS,
    mean_confidence,
)
from repro.policies.registry import POLICY_NAMES
from repro.sim.server import ServiceModel

__all__ = ["run", "EXPERIMENT_ID", "DISTS", "CACHE_LINES"]

EXPERIMENT_ID = "fig5"
DISTS = ("uniform", "zipf-0.99", "zipf-1.2")
#: Paper: every policy is configured with 512 cache-lines.
CACHE_LINES = 512
ALL_CONFIGS = ("none", *POLICY_NAMES)


def build_spec(
    dist: str,
    policy_name: str,
    scale: Scale,
    repetition: int,
    num_clients: int | None = None,
    requests_per_client: int | None = None,
    cache_lines: int = CACHE_LINES,
    service_model: ServiceModel | None = None,
) -> ScenarioSpec:
    """The spec of one simulated repetition (seed = base + 10k × rep)."""
    clients = num_clients if num_clients is not None else scale.num_clients
    per_client = (
        requests_per_client
        if requests_per_client is not None
        else max(1, scale.accesses // (clients * 4))
    )
    ratio = TRACKER_RATIOS.get(dist, 4)
    base_seed = scale.seed + repetition * 10_000

    if policy_name == "none":
        policy = PolicySpec()
    else:
        policy = PolicySpec(
            name=policy_name,
            cache_lines=cache_lines,
            tracker_lines=ratio * cache_lines,
        )
    return ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(dist=dist),
        policy=policy,
        topology=TopologySpec(num_clients=clients),
        seed=base_seed,
        requests_per_client=per_client,
        service_model=service_model,
    )


def run_one(
    dist: str,
    policy_name: str,
    scale: Scale,
    repetition: int,
    num_clients: int | None = None,
    requests_per_client: int | None = None,
    cache_lines: int = CACHE_LINES,
    service_model: ServiceModel | None = None,
) -> float:
    """One simulated run; returns the overall running time in seconds."""
    spec = build_spec(
        dist,
        policy_name,
        scale,
        repetition,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        cache_lines=cache_lines,
        service_model=service_model,
    )
    return SimRunner().run(spec).telemetry.runtime


def run(
    scale: Scale | None = None,
    repetitions: int = 3,
    num_clients: int | None = None,
    requests_per_client: int | None = None,
) -> ExperimentResult:
    """Regenerate Figure 5: rows = configs, columns = distributions."""
    scale = scale or Scale.default()
    # Every (config × dist × repetition) simulation is independent (each
    # repetition re-seeds explicitly); fan the whole grid at once.
    specs = [
        build_spec(
            dist,
            policy_name,
            scale,
            rep,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
        )
        for policy_name in ALL_CONFIGS
        for dist in DISTS
        for rep in range(repetitions)
    ]
    snapshots = iter(map_specs("sim", specs))
    rows: list[list[object]] = []
    uniform_nocache: float | None = None
    for policy_name in ALL_CONFIGS:
        row: list[object] = [policy_name]
        for dist in DISTS:
            runtimes = [next(snapshots).runtime for _ in range(repetitions)]
            mean, ci = mean_confidence(runtimes)
            if policy_name == "none" and dist == "uniform":
                uniform_nocache = mean
            row.append(f"{mean:.3f}±{ci:.3f}")
        rows.append(row)

    notes = [
        f"simulated seconds (RTT 244 µs, FCFS shards with thrashing); "
        f"{repetitions} repetitions, mean ± 95% CI; {CACHE_LINES} "
        "cache-lines per policy",
        "paper shapes: no-cache zipf-0.99/1.2 ≈ 8.9×/12.27× uniform; CoT "
        "cuts runtime ~70%/88%; uniform shows no cache overhead",
    ]
    if uniform_nocache:
        notes.append(f"uniform no-cache baseline: {uniform_nocache:.3f}s")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Figure 5 — end-to-end running time (20 closed-loop clients)",
        headers=["policy", *DISTS],
        rows=rows,
        notes=notes,
        extras={"scale": scale.name, "repetitions": repetitions},
    )


register_experiment(
    EXPERIMENT_ID,
    "end-to-end running time, 20 closed-loop clients over 8 shards",
    run,
    order=40,
)
