"""CLI dispatcher: ``python -m repro.experiments <id> [--scale NAME]``.

Experiment ids are enumerated dynamically from the engine's spec
registry (every module in :mod:`repro.experiments` registers itself at
import time) — ``--list`` prints the catalog, ``all`` runs the whole
evaluation in the canonical paper order.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.experiments  # noqa: F401  (imports register every experiment)
from repro.engine import parallel
from repro.engine.registry import experiment_ids, get_experiment
from repro.experiments.common import Scale
from repro.obs.export import SnapshotCollector

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments`` / ``cot-experiments``."""
    parser = argparse.ArgumentParser(
        prog="cot-experiments",
        description="Regenerate the tables and figures of the CoT paper "
        "(EDBT 2021) from this reproduction.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=[*experiment_ids(), "all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the registered experiments and exit",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=["smoke", "default", "paper"],
        help="workload sizing preset (default: 'default'; 'paper' is the "
        "full 1M-key/10M-access setup and is slow in pure Python)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel scenario fabric (default: "
        "min(cpu count, 8); 1 forces the in-process sequential path). "
        "Outputs are byte-identical at every worker count",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write every run's telemetry as a Prometheus text-format "
        "(exposition 0.0.4) metrics page to PATH — counters, gauges, "
        "per-shard load families and latency histograms, one 'run' label "
        "per scenario executed",
    )
    args = parser.parse_args(argv)

    if args.list_experiments:
        width = max(len(eid) for eid in experiment_ids())
        for experiment_id in experiment_ids():
            entry = get_experiment(experiment_id)
            print(f"{experiment_id:<{width}}  {entry.description}")
        return 0
    if args.experiment is None:
        parser.error("an experiment id (or 'all' or --list) is required")

    scale = Scale.named(args.scale)
    parallel.configure(args.parallel)
    ids = list(experiment_ids()) if args.experiment == "all" else [args.experiment]
    collector = SnapshotCollector().install() if args.metrics_out else None
    try:
        for experiment_id in ids:
            started = time.perf_counter()
            outcome = get_experiment(experiment_id).run(scale=scale)
            elapsed = time.perf_counter() - started
            results = outcome if isinstance(outcome, list) else [outcome]
            for result in results:
                print(result.render())
                print()
            print(
                f"[{experiment_id} completed in {elapsed:.1f}s at scale={scale.name}]"
            )
            print()
    finally:
        if collector is not None:
            collector.uninstall()
    if collector is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(collector.render())
        print(
            f"[{len(collector.snapshots)} telemetry snapshot(s) exported to "
            f"{args.metrics_out}]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
