"""CLI dispatcher: ``python -m repro.experiments <id> [--scale NAME]``.

Experiment ids match DESIGN.md's per-experiment index: fig3, fig4,
table2, fig5, fig6, fig7, fig8, figA, ycsb-bug — plus ``all`` to run the
whole evaluation and print every table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    appendix_tracker_size,
    extension_chaos,
    extension_decay,
    extension_distributions,
    extension_edge_rtt,
    fig3_cache_size_sweep,
    fig4_hit_rates,
    fig5_end_to_end,
    fig6_single_client,
    fig78_adaptive_resizing,
    table2_min_cache,
    ycsb_bug,
)
from repro.experiments.common import ExperimentResult, Scale

__all__ = ["main", "RUNNERS"]


def _run_fig4(scale: Scale) -> list[ExperimentResult]:
    return fig4_hit_rates.run_all(scale=scale)


RUNNERS: dict[str, Callable[[Scale], ExperimentResult | list[ExperimentResult]]] = {
    "fig3": lambda scale: fig3_cache_size_sweep.run(scale=scale),
    "fig4": _run_fig4,
    "table2": lambda scale: table2_min_cache.run(scale=scale),
    "fig5": lambda scale: fig5_end_to_end.run(scale=scale),
    "fig6": lambda scale: fig6_single_client.run(scale=scale),
    "fig7": lambda scale: fig78_adaptive_resizing.run_expand(scale=scale),
    "fig8": lambda scale: fig78_adaptive_resizing.run_shrink(scale=scale),
    "figA": lambda scale: appendix_tracker_size.run(scale=scale),
    "ycsb-bug": lambda scale: ycsb_bug.run(scale=scale),
    "ext-chaos": lambda scale: extension_chaos.run(scale=scale),
    "ext-decay": lambda scale: extension_decay.run(scale=scale),
    "ext-dists": lambda scale: extension_distributions.run(scale=scale),
    "ext-edge-rtt": lambda scale: extension_edge_rtt.run(scale=scale),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments`` / ``cot-experiments``."""
    parser = argparse.ArgumentParser(
        prog="cot-experiments",
        description="Regenerate the tables and figures of the CoT paper "
        "(EDBT 2021) from this reproduction.",
    )
    parser.add_argument(
        "experiment",
        choices=[*RUNNERS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=["smoke", "default", "paper"],
        help="workload sizing preset (default: 'default'; 'paper' is the "
        "full 1M-key/10M-access setup and is slow in pure Python)",
    )
    args = parser.parse_args(argv)
    scale = Scale.named(args.scale)

    ids = list(RUNNERS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        started = time.perf_counter()
        outcome = RUNNERS[experiment_id](scale)
        elapsed = time.perf_counter() - started
        results = outcome if isinstance(outcome, list) else [outcome]
        for result in results:
            print(result.render())
            print()
        print(f"[{experiment_id} completed in {elapsed:.1f}s at scale={scale.name}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
