"""Extension: adaptive policy arbitration under non-stationary workloads.

Every other experiment pins one replacement policy per run; this one runs
the workloads where any fixed choice loses. Three non-stationary
scenarios, each a deterministic three-phase key stream:

* **diurnal** — a skew shift (Zipfian 1.2 → 0.8 → 1.2, the night phase
  over a rotated hot set): the day/night traffic-concentration swing;
* **scan-flood** — a Zipfian phase, then the same Zipfian interleaved
  1:1 with a sequential one-touch scan over a disjoint key range (the
  classic cache-pollution attack on recency policies), then recovery;
* **migration** — the paper's "Gangnam style" hot-set rotation
  (:class:`~repro.workloads.shift.RotatingHotSetGenerator`): the
  distribution shape is constant but the identity of the hot keys jumps
  at every phase boundary.

Each scenario replays the identical key stream through the five fixed
policies (LRU, LFU, ARC, LRU-2, CoT) and through the
:class:`~repro.policies.adaptive.AdaptiveArbiter` (built through the
engine's :class:`~repro.engine.spec.ArbitrationSpec` axis, starting from
the *worst* reasonable choice — LRU), recording hits per arbitration
epoch. The headline check is the convergence criterion from DESIGN.md
§14: within ``CONVERGENCE_EPOCHS`` epochs of every phase boundary the
arbiter's per-epoch hit value must be within ``CONVERGENCE_SLACK`` of
the best fixed policy's over the remainder of the phase.
"""

from __future__ import annotations

from typing import Any

from repro.engine import ArbitrationSpec, PolicySpec
from repro.engine.registry import register_experiment
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, Scale
from repro.policies.adaptive import AdaptiveArbiter
from repro.policies.base import CachePolicy
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.workloads.base import KeyGenerator
from repro.workloads.shift import Phase, PhasedWorkload, RotatingHotSetGenerator
from repro.workloads.zipfian import ZipfianGenerator

__all__ = ["EXPERIMENT_ID", "SCENARIOS", "run", "run_scenario"]

EXPERIMENT_ID = "ext-adaptive"

SCENARIOS = ("diurnal", "scan-flood", "migration")

#: accesses per arbitration epoch (shared by the arbiter and the
#: per-epoch hit accounting, so epoch boundaries line up exactly)
EPOCH_LENGTH = 2_048

#: epochs the arbiter is allowed to take re-converging after a shift
CONVERGENCE_EPOCHS = 3

#: the arbiter must earn >= (1 - slack) of the best fixed policy's hit
#: value over the post-convergence window of every phase
CONVERGENCE_SLACK = 0.05

#: the cost ledger (same defaults as CostAwareController / the arbiter)
HIT_VALUE = 1.0


class _ScanInterleaver(KeyGenerator):
    """Interleave an inner generator 1:1 with a sequential one-touch scan.

    Scan ids start at ``scan_base`` (disjoint from the inner range when
    ``scan_base >= inner.key_space``) and never repeat — every scan key
    is touched exactly once, the pure pollution signal.
    """

    name = "scan-interleave"

    def __init__(self, inner: KeyGenerator, scan_base: int, scan_span: int) -> None:
        super().__init__(scan_base + scan_span)
        self._inner = inner
        self._scan_base = scan_base
        self._next_scan = 0
        self._flip = False

    def next_key(self) -> int:
        self._flip = not self._flip
        if self._flip:
            return self._inner.next_key()
        key = self._scan_base + self._next_scan
        self._next_scan += 1
        return key

    def describe(self) -> str:
        return f"scan1:1(over={self._inner.describe()})"


def _phase_epochs(scale: Scale) -> int:
    # Larger scales get longer phases: the cache:key-space ratio is
    # constant, but at bigger key spaces the low-skew phases run at much
    # lower hit rates, so policy differences (and the arbiter's tracking
    # of them) develop over more epochs.
    if scale.name == "tiny":
        return 4
    if scale.name == "smoke":
        return 8
    return 16


def _sizing(scale: Scale) -> tuple[int, int, int]:
    """(key_space, cache_lines, tracker_lines) for one scenario."""
    key_space = scale.key_space
    cache = max(64, key_space // 64)
    return key_space, cache, 4 * cache


def _scenario_keys(name: str, scale: Scale) -> tuple[list[int], list[int]]:
    """The scenario's full key stream and its shift epochs.

    Streams are generated once per scenario and replayed byte-identically
    through every policy, so the comparison is exact.
    """
    key_space, _cache, _tracker = _sizing(scale)
    epochs = _phase_epochs(scale)
    span = epochs * EPOCH_LENGTH
    seed = scale.seed + 17
    if name == "diurnal":
        # Night traffic is both flatter (theta 0.8 vs 1.2) and comes from
        # a different population — hence the fixed half-space offset on
        # the night phase. Without the offset the day phase's hot ids
        # stay hot at night (the rank -> id map is unscrambled), and a
        # fixed LFU's carried frequency history beats every fresh-start
        # policy — no arbiter can track it.
        night = RotatingHotSetGenerator(
            ZipfianGenerator(key_space, theta=0.8, seed=seed + 1),
            offset=key_space // 2,
        )
        workload: KeyGenerator = PhasedWorkload(
            [
                Phase(ZipfianGenerator(key_space, theta=1.2, seed=seed), span),
                Phase(night, span),
                Phase(ZipfianGenerator(key_space, theta=1.2, seed=seed + 2), span),
            ]
        )
        keys = list(workload.keys(3 * span))
    elif name == "scan-flood":
        flood = _ScanInterleaver(
            ZipfianGenerator(key_space, theta=1.2, seed=seed + 1),
            scan_base=key_space,
            scan_span=span,
        )
        workload = PhasedWorkload(
            [
                Phase(ZipfianGenerator(key_space, theta=1.2, seed=seed), span),
                Phase(flood, span),
                Phase(ZipfianGenerator(key_space, theta=1.2, seed=seed + 2), span),
            ]
        )
        keys = list(workload.keys(3 * span))
    elif name == "migration":
        rotating = RotatingHotSetGenerator(
            ZipfianGenerator(key_space, theta=1.2, seed=seed)
        )
        keys = []
        for _phase in range(3):
            keys.extend(rotating.keys(span))
            rotating.rotate(key_space // 3)
    else:
        raise ExperimentError(f"unknown scenario: {name!r}")
    return keys, [epochs, 2 * epochs]


def _build_arbiter(scale: Scale) -> CachePolicy:
    """The arbiter cell, built through the engine's arbitration axis.

    Starts live on LRU — deliberately the policy most exposed to every
    scenario here — so convergence measures the arbiter, not a lucky
    initial choice.
    """
    _key_space, cache, tracker = _sizing(scale)
    spec = PolicySpec(
        name="lru",
        cache_lines=cache,
        tracker_lines=tracker,
        arbitration=ArbitrationSpec(
            epoch_length=EPOCH_LENGTH,
            sample_shift=2,
            hit_value=HIT_VALUE,
        ),
    )
    return spec.build(0)


def _drive(policy: CachePolicy, keys: list[int]) -> list[int]:
    """Replay ``keys`` through ``policy``; hits per arbitration epoch."""
    per_epoch: list[int] = []
    previous = 0
    for start in range(0, len(keys), EPOCH_LENGTH):
        policy.run_stream(keys[start : start + EPOCH_LENGTH])
        hits = policy.stats.hits
        per_epoch.append(hits - previous)
        previous = hits
    return per_epoch


def _phase_windows(
    shifts: list[int], total_epochs: int
) -> list[tuple[int, int, int]]:
    """(phase_start, window_start, phase_end) per phase."""
    starts = [0, *shifts]
    ends = [*shifts, total_epochs]
    return [
        (start, min(start + CONVERGENCE_EPOCHS, end), end)
        for start, end in zip(starts, ends)
    ]


def run_scenario(name: str, scale: Scale) -> dict[str, Any]:
    """One scenario: replay through every policy; convergence verdicts."""
    _key_space, cache, tracker = _sizing(scale)
    keys, shifts = _scenario_keys(name, scale)
    per_epoch: dict[str, list[int]] = {}
    for policy_name in POLICY_NAMES:
        policy = make_policy(policy_name, cache, tracker_capacity=tracker)
        per_epoch[policy_name] = _drive(policy, keys)
    arbiter = _build_arbiter(scale)
    per_epoch["adaptive"] = _drive(arbiter, keys)
    assert isinstance(arbiter, AdaptiveArbiter)
    total_epochs = len(per_epoch["adaptive"])
    converged: list[bool] = []
    windows = _phase_windows(shifts, total_epochs)
    for _start, window, end in windows:
        best_fixed = max(
            sum(per_epoch[p][window:end]) for p in POLICY_NAMES
        )
        arbiter_value = sum(per_epoch["adaptive"][window:end])
        converged.append(
            arbiter_value >= (1.0 - CONVERGENCE_SLACK) * best_fixed
        )
    timeline = [record.live for record in arbiter.history]
    return {
        "name": name,
        "cache": cache,
        "tracker": tracker,
        "shifts": shifts,
        "per_epoch": per_epoch,
        "windows": windows,
        "converged": converged,
        "switches": arbiter.switches,
        "regret": arbiter.regret,
        "live_timeline": timeline,
        "final_live": arbiter.live_name,
        "shadow_hit_rates": arbiter.shadow_hit_rates(),
    }


def _phase_rates(per_epoch: list[int], shifts: list[int]) -> list[float]:
    bounds = [0, *shifts, len(per_epoch)]
    rates = []
    for start, end in zip(bounds, bounds[1:]):
        accesses = (end - start) * EPOCH_LENGTH
        rates.append(sum(per_epoch[start:end]) / accesses if accesses else 0.0)
    return rates


def run(scale: Scale | None = None) -> ExperimentResult:
    """All three scenarios; raises if the arbiter misses its criterion."""
    scale = scale or Scale.default()
    rows: list[list[object]] = []
    notes: list[str] = []
    extras: dict[str, Any] = {"scenarios": {}}
    failures: list[str] = []
    for scenario in SCENARIOS:
        result = run_scenario(scenario, scale)
        extras["scenarios"][scenario] = {
            k: v for k, v in result.items() if k != "per_epoch"
        }
        shifts = result["shifts"]
        for policy_name in (*POLICY_NAMES, "adaptive"):
            series = result["per_epoch"][policy_name]
            phase_rates = _phase_rates(series, shifts)
            overall = sum(series) / (len(series) * EPOCH_LENGTH)
            rows.append(
                [
                    scenario,
                    policy_name,
                    *[f"{rate:.1%}" for rate in phase_rates],
                    f"{overall:.1%}",
                    result["switches"] if policy_name == "adaptive" else "-",
                ]
            )
        verdicts = result["converged"]
        if not all(verdicts):
            failures.append(
                f"{scenario}: converged per phase = {verdicts}"
            )
        notes.append(
            f"{scenario}: arbiter path "
            f"{' -> '.join(_compress(result['live_timeline']))}, "
            f"{result['switches']} switch(es); converged within "
            f"{CONVERGENCE_EPOCHS} epochs of every shift: {all(verdicts)}"
        )
    if failures:
        raise ExperimentError(
            "adaptive arbiter missed the convergence criterion — "
            + "; ".join(failures)
        )
    notes.append(
        f"criterion: >= {1 - CONVERGENCE_SLACK:.0%} of the best fixed "
        f"policy's hit value over each phase's post-convergence window "
        f"(phase start + {CONVERGENCE_EPOCHS} epochs onwards)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            "Extension — adaptive arbitration on non-stationary workloads "
            f"(3 scenarios x {len(POLICY_NAMES)} fixed policies + arbiter)"
        ),
        headers=[
            "scenario", "policy", "phase1", "phase2", "phase3",
            "overall", "switches",
        ],
        rows=rows,
        notes=notes,
        extras=extras,
    )


def _compress(timeline: list[str]) -> list[str]:
    """Collapse consecutive repeats: [a,a,b,b,a] -> [a,b,a]."""
    out: list[str] = []
    for name in timeline:
        if not out or out[-1] != name:
            out.append(name)
    return out or ["-"]


register_experiment(
    EXPERIMENT_ID,
    "adaptive policy arbitration vs fixed policies on non-stationary workloads",
    run,
    order=125,
)
