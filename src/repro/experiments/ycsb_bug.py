"""The YCSB ScrambledZipfian bug (paper Section 1, contribution 5).

"We found a bug in YCSB's ScrambledZipfian workload generator. This
generator generates workloads that are significantly less-skewed than the
promised Zipfian distribution."

This experiment draws the same number of keys from the honest
:class:`ZipfianGenerator` and from the bug-faithful
:class:`ScrambledZipfianGenerator` at several requested skews, then
compares (a) the empirically fitted Zipf exponent and (b) the access mass
captured by the hottest keys. The scrambled generator's head mass barely
moves with the requested skew — the bug in numbers.
"""

from __future__ import annotations

from repro.engine.registry import register_experiment
from repro.experiments.common import ExperimentResult, Scale
from repro.workloads.analytical import estimate_zipf_exponent, head_mass
from repro.workloads.scrambled import ScrambledZipfianGenerator
from repro.workloads.zipfian import ZipfianGenerator

__all__ = ["run", "EXPERIMENT_ID"]

EXPERIMENT_ID = "ycsb-bug"
REQUESTED_SKEWS = (0.9, 0.99, 1.2)


def run(scale: Scale | None = None) -> ExperimentResult:
    """Quantify the scrambled generator's skew loss."""
    scale = scale or Scale.default()
    top = max(10, scale.key_space // 1000)
    rows: list[list[object]] = []
    for theta in REQUESTED_SKEWS:
        honest = ZipfianGenerator(scale.key_space, theta=theta, seed=scale.seed)
        scrambled = ScrambledZipfianGenerator(
            scale.key_space, requested_theta=theta, seed=scale.seed
        )
        honest_keys = list(honest.keys(scale.accesses))
        scrambled_keys = list(scrambled.keys(scale.accesses))
        rows.append(
            [
                f"requested s={theta:g}",
                round(estimate_zipf_exponent(honest_keys, max_rank=1000), 3),
                round(estimate_zipf_exponent(scrambled_keys, max_rank=1000), 3),
                round(head_mass(honest_keys, top) * 100, 2),
                round(head_mass(scrambled_keys, top) * 100, 2),
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="YCSB ScrambledZipfian bug — promised vs delivered skew",
        headers=[
            "workload",
            "fitted_s_zipfian",
            "fitted_s_scrambled",
            f"top{top}_mass_zipfian_%",
            f"top{top}_mass_scrambled_%",
        ],
        rows=rows,
        notes=[
            f"{scale.accesses:,} draws over {scale.key_space:,} keys; "
            "exponent fitted over the first 1000 ranks",
            "the scrambled generator ignores the requested constant (fixed "
            "0.99 over a 10-billion-item domain) and its FNV scramble folds "
            "the tail uniformly onto every key, crushing the head mass",
        ],
        extras={"scale": scale.name},
    )


register_experiment(
    EXPERIMENT_ID,
    "YCSB ScrambledZipfian bug: promised vs delivered skew",
    run,
    order=90,
)
