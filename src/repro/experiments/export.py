"""Export and post-processing of experiment results.

Experiment harnesses return :class:`ExperimentResult` row tables; this
module turns them into durable artifacts (CSV/JSON) and computes the
summary statistics the paper reports in prose:

* :func:`win_matrix` — at how many sweep points does each policy beat
  each other policy (the "CoT outperforms X at all cache sizes" claims);
* :func:`cache_savings` — the "50% to 93.75% less cache" computation of
  Table 2: relative line savings of one policy against the others;
* :func:`convergence_summary` — epochs-to-converge and resize counts for
  an elastic run (Figures 7-8 in two numbers).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.epoch import EpochRecord
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult

__all__ = [
    "to_csv",
    "to_json",
    "win_matrix",
    "cache_savings",
    "convergence_summary",
]


def to_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result's rows as CSV; returns the path."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path


def to_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result (rows + metadata) as JSON; returns the path."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": result.headers,
        "rows": result.rows,
        "notes": result.notes,
        "extras": {
            key: value
            for key, value in result.extras.items()
            if isinstance(value, (int, float, str, bool, list, dict, type(None)))
        },
    }
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def win_matrix(
    result: ExperimentResult, policies: Iterable[str]
) -> dict[str, dict[str, int]]:
    """Pairwise sweep-point wins between policy columns.

    ``matrix[a][b]`` counts the rows where policy ``a``'s value strictly
    exceeds policy ``b``'s (higher-is-better semantics, i.e. hit rates).
    """
    policies = list(policies)
    for name in policies:
        if name not in result.headers:
            raise ExperimentError(f"no column named {name!r}")
    columns = {name: result.column(name) for name in policies}
    matrix: dict[str, dict[str, int]] = {}
    for a in policies:
        matrix[a] = {}
        for b in policies:
            if a == b:
                continue
            matrix[a][b] = sum(
                1 for va, vb in zip(columns[a], columns[b]) if va > vb
            )
    return matrix


def cache_savings(
    result: ExperimentResult,
    reference: str = "cot",
    others: Iterable[str] = ("lru", "lfu", "arc", "lru2"),
) -> dict[str, dict[str, float]]:
    """Table 2's savings computation per distribution row.

    For each row (distribution) and each competitor, the fraction of
    cache-lines the reference policy saves: ``1 - ref_lines/other_lines``.
    Rows where either side never reached the target are skipped.
    The paper's headline is the min/max over this table: 50%-93.75%.
    """
    ref_column = result.column(reference)
    savings: dict[str, dict[str, float]] = {}
    for row_idx, row in enumerate(result.rows):
        dist = str(row[0])
        ref_lines = ref_column[row_idx]
        if not isinstance(ref_lines, int):
            continue
        per_dist: dict[str, float] = {}
        for other in others:
            other_lines = result.column(other)[row_idx]
            if not isinstance(other_lines, int) or other_lines == 0:
                continue
            per_dist[other] = 1.0 - ref_lines / other_lines
        if per_dist:
            savings[dist] = per_dist
    return savings


def convergence_summary(history: Iterable[EpochRecord]) -> dict[str, object]:
    """Summarize an elastic run: when it converged and how much it moved.

    Returns epochs-to-target (first ``target_reached`` decision), total
    resize decisions, peak sizes, and final sizes.
    """
    records = list(history)
    if not records:
        raise ExperimentError("empty elastic history")
    first_target: int | None = None
    resizes = 0
    decays = 0
    peak_cache = 0
    peak_tracker = 0
    for record in records:
        if record.decision == "target_reached" and first_target is None:
            first_target = record.index
        if record.decision in (
            "expand", "shrink", "double_tracker", "settle_ratio", "reset_ratio"
        ):
            resizes += 1
        if record.decision == "decay":
            decays += 1
        peak_cache = max(peak_cache, record.new_cache_capacity)
        peak_tracker = max(peak_tracker, record.new_tracker_capacity)
    last = records[-1]
    return {
        "epochs": len(records),
        "epochs_to_target": first_target,
        "resize_decisions": resizes,
        "decay_triggers": decays,
        "peak_cache": peak_cache,
        "peak_tracker": peak_tracker,
        "final_cache": last.new_cache_capacity,
        "final_tracker": last.new_tracker_capacity,
    }
