"""Extension: hot-key replication — breaking the single-shard ceiling.

Consistent hashing pins every key to one shard, so the cluster's
throughput on a skewed workload is capped by its hottest shard: once one
key draws more traffic than a single shard can serve, adding shards
changes nothing (the DistCache observation, arXiv:1901.08200). CoT's
front-end caches absorb *read-mostly* hot keys locally, but a hot key
that is also written is re-invalidated on every update and hammers its
owner regardless — the adversarial case this harness drives.

Two scenarios, each run twice on identical seeds (classic single-owner
protocol vs the replicated hot-key tier of
:mod:`repro.cluster.replication`):

* **single-hot-key** — one key takes ``HOT_OPN_FRACTION`` of all
  operations with a 50/50 read/write mix; the rest is uniform. The
  steady-state stress case: one shard is the bottleneck by construction.
* **flash-crowd** — the same shape, but the hot key *moves* halfway
  through each client's stream (key 0 → key ``key_space/2``): the tier
  must demote the old celebrity and promote the new one mid-run, so the
  win survives non-stationarity.

Reported per run: the per-shard get distribution's max and spread
(max/mean), the bottleneck parallelism factor (total backend gets /
hottest-shard gets — with shards serving at a fixed rate, cluster
throughput is proportional to it), and the tier's promotion/routing
counters. The perf gate (``benchmarks/run_perf_gate.py --hot-key``)
re-runs the single-hot-key pair at smoke scale, converts the factor to
ops/s with a measured shard service rate, and fails the build unless the
replicated run keeps >= 2x modeled throughput and <= 0.5x max-shard
spread vs unreplicated.
"""

from __future__ import annotations

from typing import Any

from repro.engine import (
    ClusterRunner,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.engine import telemetry as T
from repro.engine.registry import register_experiment
from repro.engine.runners import ScenarioResult
from repro.experiments.common import ExperimentResult, Scale
from repro.workloads.base import KeyGenerator
from repro.workloads.hotspot import HotspotGenerator
from repro.workloads.shift import Phase as WorkloadPhase
from repro.workloads.shift import PhasedWorkload, RotatingHotSetGenerator

__all__ = [
    "EXPERIMENT_ID",
    "HotKeyMetrics",
    "run",
    "run_pair",
]

EXPERIMENT_ID = "ext-hotkey"

#: fraction of operations aimed at the (single) hot key
HOT_OPN_FRACTION = 0.8
#: read share of the mix — the writes are what defeats front-end caching:
#: every update invalidates the local copy, so the hot key keeps hitting
#: its backend shard no matter how good the front-end cache is
READ_FRACTION = 0.5
#: replica set size for promoted keys
DEGREE = 3
#: the tier's gate targets (also enforced by run_perf_gate.py --hot-key)
THROUGHPUT_TARGET = 2.0
SPREAD_TARGET = 0.5


class SingleHotKeyWorkload:
    """Per-client hotspot streams with one shared hot key (id 0)."""

    def __init__(self, key_space: int, seed: int) -> None:
        self.key_space = key_space
        self.seed = seed

    def __call__(self, client_index: int) -> KeyGenerator:
        return HotspotGenerator(
            self.key_space,
            hot_set_fraction=1.0 / self.key_space,  # exactly one hot key
            hot_opn_fraction=HOT_OPN_FRACTION,
            seed=self.seed + client_index,
        )


class FlashCrowdWorkload:
    """The hot key jumps from id 0 to id ``key_space/2`` mid-stream."""

    def __init__(self, key_space: int, seed: int, switch_after: int) -> None:
        self.key_space = key_space
        self.seed = seed
        self.switch_after = switch_after

    def __call__(self, client_index: int) -> KeyGenerator:
        before = HotspotGenerator(
            self.key_space,
            hot_set_fraction=1.0 / self.key_space,
            hot_opn_fraction=HOT_OPN_FRACTION,
            seed=self.seed + client_index,
        )
        after = RotatingHotSetGenerator(
            HotspotGenerator(
                self.key_space,
                hot_set_fraction=1.0 / self.key_space,
                hot_opn_fraction=HOT_OPN_FRACTION,
                seed=self.seed + 10_000 + client_index,
            ),
            offset=self.key_space // 2,
        )
        return PhasedWorkload(
            [
                WorkloadPhase(before, self.switch_after),
                WorkloadPhase(after, None),
            ]
        )


class HotKeyMetrics:
    """The numbers one run contributes to the comparison."""

    def __init__(self, result: ScenarioResult) -> None:
        snapshot = result.telemetry
        loads = snapshot.shard_loads
        self.total_gets = sum(loads.values())
        self.max_shard = max(loads.values()) if loads else 0
        self.min_shard = min(loads.values()) if loads else 0
        mean = self.total_gets / len(loads) if loads else 0.0
        #: max/mean — how far the hottest shard sits above fair share
        self.spread = self.max_shard / mean if mean else 1.0
        #: total/max — the bottleneck parallelism factor: cluster ops/s is
        #: (shard service rate) x this, since the hottest shard paces the run
        self.parallelism = (
            self.total_gets / self.max_shard if self.max_shard else 1.0
        )
        counters = snapshot.counters
        self.replicated_reads = counters.get(T.REPLICATED_READS, 0)
        self.promotions = counters.get(T.REPLICA_PROMOTIONS, 0)
        self.demotions = counters.get(T.REPLICA_DEMOTIONS, 0)
        self.failed_invalidations = counters.get(
            T.FAILED_REPLICA_INVALIDATIONS, 0
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "total_gets": self.total_gets,
            "max_shard": self.max_shard,
            "min_shard": self.min_shard,
            "spread": self.spread,
            "parallelism": self.parallelism,
            "replicated_reads": self.replicated_reads,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "failed_invalidations": self.failed_invalidations,
        }


def _build_spec(
    scale: Scale,
    workload_factory: Any,
    replicated: bool,
    num_servers: int,
) -> ScenarioSpec:
    replication = ReplicationSpec(
        enabled=replicated,
        degree=DEGREE,
        min_share=0.05,
        refresh_every=max(512, scale.accesses // 64),
    )
    return ScenarioSpec(
        scale=scale,
        workload=WorkloadSpec(
            generator_factory=workload_factory, read_fraction=READ_FRACTION
        ),
        policy=PolicySpec(name="cot", cache_lines=256, tracker_lines=512),
        topology=TopologySpec(
            num_servers=num_servers, replication=replication
        ),
    )


def run_pair(
    scale: Scale, scenario: str = "single-hot-key", num_servers: int = 8
) -> tuple[HotKeyMetrics, HotKeyMetrics]:
    """One scenario, both modes, identical seeds: (unreplicated, replicated).

    This is the perf gate's entry point as well as the experiment's.
    """
    per_client = scale.accesses // scale.num_clients
    if scenario == "single-hot-key":
        factory = SingleHotKeyWorkload(scale.key_space, scale.seed)
    elif scenario == "flash-crowd":
        factory = FlashCrowdWorkload(
            scale.key_space, scale.seed, switch_after=max(1, per_client // 2)
        )
    else:
        raise ValueError(f"unknown hot-key scenario: {scenario!r}")
    runner = ClusterRunner()
    baseline = HotKeyMetrics(
        runner.run(_build_spec(scale, factory, False, num_servers))
    )
    replicated = HotKeyMetrics(
        runner.run(_build_spec(scale, factory, True, num_servers))
    )
    return baseline, replicated


def run(scale: Scale | None = None, num_servers: int = 8) -> ExperimentResult:
    """Both adversarial scenarios, replicated vs not; returns the table."""
    scale = scale or Scale.default()
    rows: list[list[object]] = []
    extras: dict[str, Any] = {}
    for scenario in ("single-hot-key", "flash-crowd"):
        baseline, replicated = run_pair(scale, scenario, num_servers)
        speedup = replicated.parallelism / baseline.parallelism
        spread_ratio = replicated.spread / baseline.spread
        for mode, m in (("classic", baseline), ("replicated", replicated)):
            rows.append(
                [
                    scenario,
                    mode,
                    m.total_gets,
                    m.max_shard,
                    round(m.spread, 3),
                    round(m.parallelism, 3),
                    m.replicated_reads,
                    m.promotions,
                    m.demotions,
                ]
            )
        extras[scenario] = {
            "baseline": baseline.as_dict(),
            "replicated": replicated.as_dict(),
            "throughput_speedup": speedup,
            "spread_ratio": spread_ratio,
        }
    single = extras["single-hot-key"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Extension — hot-key replication tier (R={DEGREE}, "
            f"two-choices routing, {num_servers} shards)"
        ),
        headers=[
            "scenario", "mode", "backend_gets", "max_shard", "spread",
            "parallelism", "repl_reads", "promoted", "demoted",
        ],
        rows=rows,
        notes=[
            f"hot key takes {HOT_OPN_FRACTION:.0%} of ops at "
            f"{READ_FRACTION:.0%} reads — the writes keep re-invalidating "
            "the front-end copy, so the hot key hits its shard regardless "
            "of local caching",
            "spread = hottest shard / mean shard load; parallelism = total "
            "gets / hottest shard — modeled cluster ops/s is the shard "
            "service rate times the parallelism factor",
            "single-hot-key speedup "
            f"{single['throughput_speedup']:.2f}x (gate >= "
            f"{THROUGHPUT_TARGET:g}x), spread ratio "
            f"{single['spread_ratio']:.2f} (gate <= {SPREAD_TARGET:g})",
            "flash-crowd moves the hot key mid-run: the tier promotes the "
            "new celebrity on the next refresh "
            f"({extras['flash-crowd']['replicated']['promotions']} "
            "promotions, "
            f"{extras['flash-crowd']['replicated']['demotions']} demotions "
            "over the run — the old key demotes once its cumulative "
            "tracker share decays below the hysteresis floor)",
        ],
        extras=extras,
    )


register_experiment(
    EXPERIMENT_ID,
    "hot-key replication tier vs classic single-owner routing",
    run,
    order=110,
)
