"""Latency aggregation: percentiles and a bounded reservoir sampler.

End-to-end experiments report means; tail latency is what load-imbalance
actually hurts first (the paper cites drastic tail-latency increases), so
the harness records full distributions via reservoir sampling with a
fixed memory bound and exact small-sample behaviour.
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError

__all__ = ["LatencyRecorder", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class LatencyRecorder:
    """Streaming mean/min/max plus a reservoir for percentiles.

    Algorithm R reservoir sampling: every recorded value is kept until
    ``reservoir_size`` is reached, after which each new value replaces a
    uniformly random slot with probability ``size/count`` — an unbiased
    sample of the whole stream in O(size) memory.
    """

    def __init__(self, reservoir_size: int = 10_000, seed: int | None = None) -> None:
        if reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def record(self, value: float) -> None:
        """Add one latency observation (seconds)."""
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        if len(self._samples) < self._reservoir_size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._samples[slot] = value

    def samples(self) -> list[float]:
        """A copy of the current reservoir (for merging across clients)."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile from the reservoir."""
        return percentile(self._samples, q)

    def summary(self) -> dict[str, float]:
        """Mean/p50/p99/max bundle for table output."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_value,
        }
