"""Latency aggregation: percentiles and a bounded reservoir sampler.

End-to-end experiments report means; tail latency is what load-imbalance
actually hurts first (the paper cites drastic tail-latency increases), so
the harness records full distributions via reservoir sampling with a
fixed memory bound and exact small-sample behaviour.

Multi-client summaries must go through :meth:`LatencyRecorder.merge` (or
:meth:`LatencyRecorder.merged`): concatenating raw reservoirs weighs
every client equally once any reservoir saturates, which biases merged
percentiles toward low-traffic clients. The merge draws from each
reservoir proportionally to the *stream count* it represents, so a
client that served 100× the traffic contributes 100× the weight.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["LatencyRecorder", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class LatencyRecorder:
    """Streaming mean/min/max plus a reservoir for percentiles.

    Algorithm R reservoir sampling: every recorded value is kept until
    ``reservoir_size`` is reached, after which each new value replaces a
    uniformly random slot with probability ``size/count`` — an unbiased
    sample of the whole stream in O(size) memory.
    """

    def __init__(self, reservoir_size: int = 10_000, seed: int | None = None) -> None:
        if reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def record(self, value: float) -> None:
        """Add one latency observation (seconds)."""
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        if len(self._samples) < self._reservoir_size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._samples[slot] = value

    def samples(self) -> list[float]:
        """A copy of the current reservoir.

        Do **not** concatenate reservoirs from multiple recorders to
        estimate merged percentiles — that path is biased once any
        reservoir saturates; use :meth:`merge`/:meth:`merged` instead.
        """
        return list(self._samples)

    @property
    def reservoir_size(self) -> int:
        """Configured reservoir capacity."""
        return self._reservoir_size

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other`` into this recorder, count-weighted; returns self.

        Streaming stats (count/total/min/max) combine exactly. The merged
        reservoir is rebuilt by drawing from the two reservoirs with
        probability proportional to the *stream counts* they represent
        (``self.count`` vs ``other.count``), not their reservoir lengths —
        the fix for the saturated-reservoir concatenation bias. When the
        combined reservoirs fit inside the capacity and neither recorder
        has dropped a sample, the merge is the exact concatenation.
        """
        if other.count == 0:
            return self
        size = self._reservoir_size
        mine, theirs = self._samples, other._samples
        exact = (
            len(mine) == self.count
            and len(theirs) == other.count
            and self.count + other.count <= size
        )
        if exact:
            merged = mine + list(theirs)
        else:
            rng = self._rng
            pool_a = list(mine)
            pool_b = list(theirs)
            rng.shuffle(pool_a)
            rng.shuffle(pool_b)
            weight_a, weight_b = float(self.count), float(other.count)
            take = min(size, len(pool_a) + len(pool_b))
            merged = []
            ia = ib = 0
            for _ in range(take):
                pick_a = ia < len(pool_a) and (
                    ib >= len(pool_b)
                    or rng.random() * (weight_a + weight_b) < weight_a
                )
                if pick_a:
                    merged.append(pool_a[ia])
                    ia += 1
                else:
                    merged.append(pool_b[ib])
                    ib += 1
        self._samples = merged
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    @classmethod
    def merged(
        cls,
        recorders: Iterable["LatencyRecorder"],
        reservoir_size: int | None = None,
        seed: int | None = 0,
    ) -> "LatencyRecorder":
        """A fresh recorder holding the count-weighted merge of ``recorders``.

        This is the one entry point for cross-client percentile summaries
        (the engine's sim path routes through it).
        """
        recorder_list = list(recorders)
        if reservoir_size is None:
            reservoir_size = max(
                (r._reservoir_size for r in recorder_list), default=10_000
            )
        out = cls(reservoir_size, seed=seed)
        for recorder in recorder_list:
            out.merge(recorder)
        return out

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile from the reservoir."""
        return percentile(self._samples, q)

    def summary(self) -> dict[str, float]:
        """Mean/p50/p99/max bundle for table output."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_value,
        }
