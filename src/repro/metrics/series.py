"""Time-series recording for the elasticity figures.

Figures 7-8 plot cache size, tracker size, ``I_c`` and ``alpha_c`` against
the epoch number. :class:`SeriesRecorder` collects named series with a
shared x-axis and renders them as aligned columns (and simple ASCII
sparklines for quick terminal inspection).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.metrics.table import render_table

__all__ = ["SeriesRecorder", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a unicode sparkline, downsampled to ``width``."""
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_CHARS[0] * len(values)
    span = high - low
    return "".join(
        _SPARK_CHARS[int((v - low) / span * (len(_SPARK_CHARS) - 1))]
        for v in values
    )


class SeriesRecorder:
    """Named, equal-length series sharing one x-axis."""

    def __init__(self, x_name: str = "epoch") -> None:
        self.x_name = x_name
        self._x: list[float] = []
        self._series: dict[str, list[float]] = {}

    def add_point(self, x: float, **values: float) -> None:
        """Append one x value and one value per named series.

        Every call must supply the same set of series names (first call
        defines them), keeping the table rectangular.
        """
        if not self._x:
            for name in values:
                self._series[name] = []
        elif set(values) != set(self._series):
            raise ConfigurationError(
                f"series mismatch: expected {sorted(self._series)}, "
                f"got {sorted(values)}"
            )
        self._x.append(x)
        for name, value in values.items():
            self._series[name].append(value)

    @property
    def names(self) -> tuple[str, ...]:
        """Series names in insertion order."""
        return tuple(self._series)

    def __len__(self) -> int:
        return len(self._x)

    def series(self, name: str) -> list[float]:
        """A copy of one series' values."""
        return list(self._series[name])

    def x_values(self) -> list[float]:
        """A copy of the x-axis."""
        return list(self._x)

    def to_table(self, title: str | None = None, every: int = 1) -> str:
        """Render the series as an aligned table (``every`` subsamples)."""
        headers = [self.x_name, *self._series]
        rows = [
            [self._x[i], *(self._series[name][i] for name in self._series)]
            for i in range(0, len(self._x), max(every, 1))
        ]
        return render_table(headers, rows, title=title)

    def to_sparklines(self, width: int = 60) -> str:
        """One sparkline per series, labelled, for terminal overviews."""
        label_width = max((len(n) for n in self._series), default=0)
        lines = []
        for name, values in self._series.items():
            low, high = (min(values), max(values)) if values else (0.0, 0.0)
            lines.append(
                f"{name.rjust(label_width)} [{low:g}..{high:g}] "
                f"{sparkline(values, width)}"
            )
        return "\n".join(lines)
