"""Plain-text table rendering for experiment output.

Every experiment harness prints the same rows/series the paper reports;
this renderer keeps that output aligned and diff-friendly with zero
dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant decimals, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5], [30, "x"]]))
    a  | b
    ---+----
    1  | 2.5
    30 | x
    """
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def joined(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[i]) if i < len(cells) - 1 else cell
            for i, cell in enumerate(cells)
        ]
        return " | ".join(padded)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(joined(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(joined(row))
    return "\n".join(lines)
