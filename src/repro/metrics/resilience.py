"""Fault-tolerance instrumentation rollup.

The resilient data plane scatters its evidence across three places: the
client's :class:`~repro.cluster.retry.ClusterGuard` (retries, breaker
transitions, backoff), its :class:`~repro.cluster.loadmonitor.LoadMonitor`
(degraded reads, fallback latency) and the injector itself (what was
actually injected). :func:`summarize_resilience` folds them into one
:class:`ResilienceSummary` the chaos experiment and tests report on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.loadmonitor import LoadMonitor
from repro.cluster.retry import ClusterGuard

__all__ = ["ResilienceSummary", "summarize_resilience"]


@dataclass(frozen=True)
class ResilienceSummary:
    """One front end's fault-tolerance counters, in report-ready form."""

    operations: int
    attempts: int
    retries: int
    failures: int
    open_rejections: int
    backoff_total: float
    lost_invalidations: int
    degraded_reads: int
    degraded_fraction: float
    fallback_latency: float
    breaker_opens: int
    breaker_half_opens: int
    breaker_closes: int

    def as_row(self) -> dict[str, object]:
        """Flat mapping for table rendering / JSON export."""
        return {
            "operations": self.operations,
            "retries": self.retries,
            "failures": self.failures,
            "open_rejections": self.open_rejections,
            "degraded_reads": self.degraded_reads,
            "degraded_%": round(100.0 * self.degraded_fraction, 3),
            "backoff_s": round(self.backoff_total, 6),
            "fallback_s": round(self.fallback_latency, 6),
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
        }


def summarize_resilience(
    guard: ClusterGuard, monitor: LoadMonitor
) -> ResilienceSummary:
    """Roll one client's guard + monitor counters into a summary."""
    transitions = guard.breaker_transitions()
    stats = guard.stats
    degraded = monitor.degraded_reads()
    operations = stats.operations
    return ResilienceSummary(
        operations=operations,
        attempts=stats.attempts,
        retries=stats.retries,
        failures=stats.failures,
        open_rejections=stats.open_rejections,
        backoff_total=stats.backoff_total,
        lost_invalidations=stats.lost_invalidations,
        degraded_reads=degraded,
        degraded_fraction=degraded / operations if operations else 0.0,
        fallback_latency=monitor.fallback_latency_total,
        breaker_opens=transitions["opens"],
        breaker_half_opens=transitions["half_opens"],
        breaker_closes=transitions["closes"],
    )
