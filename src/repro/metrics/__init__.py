"""Measurement utilities: imbalance metrics, latency percentiles, series
recording, and plain-text table rendering for the experiment harnesses."""

from repro.metrics.imbalance import (
    ImbalanceSummary,
    coefficient_of_variation,
    load_imbalance,
    peak_to_mean,
    relative_load,
    summarize_loads,
)
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.resilience import ResilienceSummary, summarize_resilience
from repro.metrics.series import SeriesRecorder, sparkline
from repro.metrics.table import format_cell, render_table

__all__ = [
    "ResilienceSummary",
    "summarize_resilience",
    "ImbalanceSummary",
    "coefficient_of_variation",
    "load_imbalance",
    "peak_to_mean",
    "relative_load",
    "summarize_loads",
    "LatencyRecorder",
    "percentile",
    "SeriesRecorder",
    "sparkline",
    "format_cell",
    "render_table",
]
