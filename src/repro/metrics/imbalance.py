"""Load-imbalance and dispersion metrics over per-server loads.

The paper's headline metric is the max/min lookup ratio (re-exported from
:mod:`repro.cluster.loadmonitor`); research practice also reports
max/mean ("peak over fair share") and the coefficient of variation, which
are provided here for the ablation benches and richer experiment output.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.cluster.loadmonitor import load_imbalance

__all__ = [
    "load_imbalance",
    "peak_to_mean",
    "coefficient_of_variation",
    "relative_load",
    "ImbalanceSummary",
    "summarize_loads",
]


def _values(loads: Mapping[str, int] | Iterable[int]) -> list[int]:
    if isinstance(loads, Mapping):
        return list(loads.values())
    return list(loads)


def peak_to_mean(loads: Mapping[str, int] | Iterable[int]) -> float:
    """Max load divided by mean load (1.0 == perfectly balanced)."""
    values = _values(loads)
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    return max(values) / mean if mean > 0 else 1.0


def coefficient_of_variation(loads: Mapping[str, int] | Iterable[int]) -> float:
    """Standard deviation over mean of per-server loads."""
    values = _values(loads)
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def relative_load(current_total: int, baseline_total: int) -> float:
    """Back-end load relative to a no-front-end-cache baseline.

    Figure 3's second series: ``server load with cache / server load
    without cache`` (1.0 == no reduction).
    """
    if baseline_total <= 0:
        return 1.0
    return current_total / baseline_total


class ImbalanceSummary:
    """Bundle of the three imbalance views for one load snapshot."""

    __slots__ = ("max_min", "peak_mean", "cv", "total")

    def __init__(self, loads: Mapping[str, int] | Iterable[int]) -> None:
        values = _values(loads)
        self.max_min = load_imbalance(values)
        self.peak_mean = peak_to_mean(values)
        self.cv = coefficient_of_variation(values)
        self.total = sum(values)

    def as_row(self) -> dict[str, float | int]:
        """Flatten for table output."""
        return {
            "imbalance": round(self.max_min, 4),
            "peak_to_mean": round(self.peak_mean, 4),
            "cv": round(self.cv, 4),
            "total_lookups": self.total,
        }


def summarize_loads(loads: Mapping[str, int] | Iterable[int]) -> ImbalanceSummary:
    """Convenience constructor matching the functional style of the module."""
    return ImbalanceSummary(loads)
