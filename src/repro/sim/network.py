"""Network latency models for the end-to-end simulation.

The paper's testbed measures an average front-end↔back-end RTT of 244 µs
(same-cluster deployment) and argues the gains grow when front ends sit in
edge datacenters with RTTs in the tens of milliseconds; both settings are
representable here.
"""

from __future__ import annotations

import abc
import random

from repro.errors import ConfigurationError

__all__ = ["LatencyModel", "FixedLatency", "JitteredLatency", "PAPER_RTT"]

#: The paper's measured same-cluster round-trip time (seconds).
PAPER_RTT = 244e-6


class LatencyModel(abc.ABC):
    """Samples one-way / round-trip delays."""

    @abc.abstractmethod
    def rtt(self) -> float:
        """Sample a full round-trip time in seconds."""

    def one_way(self) -> float:
        """Sample a one-way delay (half an RTT by default)."""
        return self.rtt() / 2.0


class FixedLatency(LatencyModel):
    """Constant RTT — the deterministic default for reproducible runs."""

    def __init__(self, rtt: float = PAPER_RTT) -> None:
        if rtt < 0:
            raise ConfigurationError("rtt must be >= 0")
        self._rtt = rtt

    def rtt(self) -> float:
        return self._rtt


class JitteredLatency(LatencyModel):
    """Gaussian jitter around a base RTT, floored at a minimum.

    Models the long-ish tail of datacenter networks without heavy machinery;
    useful for checking that conclusions are not artifacts of determinism.
    """

    def __init__(
        self,
        base_rtt: float = PAPER_RTT,
        jitter_fraction: float = 0.1,
        floor_fraction: float = 0.5,
        seed: int | None = None,
    ) -> None:
        if base_rtt <= 0:
            raise ConfigurationError("base_rtt must be > 0")
        if jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be >= 0")
        if not 0 < floor_fraction <= 1:
            raise ConfigurationError("floor_fraction must be in (0, 1]")
        self._base = base_rtt
        self._sigma = base_rtt * jitter_fraction
        self._floor = base_rtt * floor_fraction
        self._rng = random.Random(seed)

    def rtt(self) -> float:
        return max(self._floor, self._rng.gauss(self._base, self._sigma))
