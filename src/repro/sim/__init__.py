"""Discrete-event simulation of the paper's testbed timing behaviour:
closed-loop clients, FCFS shard queues with thrashing and load-dependent
slowdown, and a 244 µs-RTT network (Figures 5-6's substrate). Runs are
assembled and executed by the engine's
:class:`~repro.engine.runners.SimRunner`."""

from repro.sim.client import SimClient
from repro.sim.events import Simulator
from repro.sim.network import (
    PAPER_RTT,
    FixedLatency,
    JitteredLatency,
    LatencyModel,
)
from repro.sim.server import ServiceModel, SimBackendServer

__all__ = [
    "SimClient",
    "Simulator",
    "FixedLatency",
    "JitteredLatency",
    "LatencyModel",
    "PAPER_RTT",
    "ServiceModel",
    "SimBackendServer",
]
