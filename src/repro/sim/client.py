"""Closed-loop simulated clients (the paper's YCSB client threads).

"Client threads submit access requests back-to-back. Each client thread
can have only one outgoing request. Clients submit a new request as soon
as they receive an acknowledgement for their outgoing request"
(Section 5.1). :class:`SimClient` reproduces exactly that loop on the
simulation clock, running the same client-driven protocol as the live
:class:`~repro.cluster.client.FrontEndClient` — local cache first, then
the owning shard, with writes invalidating both tiers.
"""

from __future__ import annotations

from repro.cluster.cluster import CacheCluster
from repro.metrics.latency import LatencyRecorder
from repro.obs.hist import LatencyHistogram
from repro.obs.trace import Tracer
from repro.policies.base import MISSING, CachePolicy
from repro.sim.events import Simulator
from repro.sim.network import LatencyModel
from repro.sim.server import SimBackendServer
from repro.workloads.mixer import OperationMixer
from repro.workloads.request import OpType

__all__ = ["SimClient"]

#: Cost of one local cache operation (lookup/admit bookkeeping). Heap-based
#: policies do a handful of pointer operations; the paper's uniform-workload
#: experiment confirms the overhead is statistically invisible, and so is
#: this value relative to a 244 µs RTT.
LOCAL_OP_TIME = 2e-6

#: Requests prefetched from the mixer per refill. Drawing in batches uses
#: the generators' loop-hoisted ``keys_array`` path; because the key stream
#: and the read/update coin come from independent RNGs, the batched stream
#: is identical to one-at-a-time draws. Capped by the client's remaining
#: quota so exactly ``total_requests`` operations are ever drawn.
REQUEST_BATCH = 512

#: Extra service time of a degraded read: the persistent store is slower
#: than a cache shard (disk/SSD + request handling), so falling back when
#: a shard is down costs this much on top of the network hops.
STORAGE_FALLBACK_TIME = 500e-6


class SimClient:
    """One closed-loop client thread with its own front-end cache.

    Parameters
    ----------
    client_id:
        index used for reporting.
    sim:
        shared simulation kernel.
    mixer:
        request source (keys + read/update mix).
    policy:
        this client's local cache policy instance.
    cluster:
        shared *content* cluster (what is stored where); timing is handled
        by the ``servers`` map.
    servers:
        shard id → :class:`SimBackendServer` timing models.
    latency:
        network latency model.
    total_requests:
        how many operations this client issues before stopping.
    tracer:
        optional sampling :class:`~repro.obs.trace.Tracer`; sampled
        requests record span trees on *simulated* timestamps (explicit
        ``at=`` times, not wall clock), so a span's duration is the
        modeled network/queueing/service time it covers.
    """

    def __init__(
        self,
        client_id: int,
        sim: Simulator,
        mixer: OperationMixer,
        policy: CachePolicy,
        cluster: CacheCluster,
        servers: dict[str, SimBackendServer],
        latency: LatencyModel,
        total_requests: int,
        tracer: Tracer | None = None,
    ) -> None:
        self.client_id = client_id
        self.sim = sim
        self.mixer = mixer
        self.policy = policy
        self.cluster = cluster
        self.servers = servers
        self.latency = latency
        self.total_requests = total_requests
        self.completed = 0
        self.finish_time: float | None = None
        self.latencies_sum = 0.0
        #: reads served from storage because the owning shard was down
        self.degraded_reads = 0
        #: total extra latency those fallbacks cost (seconds)
        self.fallback_latency_sum = 0.0
        #: shard-side invalidations lost to a down shard on the write path
        self.failed_invalidations = 0
        #: full latency distribution (reservoir-sampled) — load-imbalance
        #: hurts the tail first, so the harness reports p50/p99 too.
        self.latency_recorder = LatencyRecorder(seed=client_id)
        #: fixed-bucket twin of the reservoir: merges *exactly* across
        #: clients, which is what the engine publishes to the bus
        self.latency_histogram = LatencyHistogram()
        self.tracer = tracer
        self._active_trace = None
        self._started_at = 0.0
        self._pending: list = []
        self._pending_idx = 0

    # ------------------------------------------------------------------ api

    def start(self) -> None:
        """Arm the closed loop (call before ``sim.run``)."""
        self.sim.schedule(0.0, self._issue_next)

    @property
    def mean_latency(self) -> float:
        """Average per-request latency in seconds."""
        return self.latencies_sum / self.completed if self.completed else 0.0

    # ------------------------------------------------------------ internals

    def _issue_next(self) -> None:
        if self.completed >= self.total_requests:
            self.finish_time = self.sim.now
            return
        self._started_at = self.sim.now
        idx = self._pending_idx
        if idx >= len(self._pending):
            remaining = self.total_requests - self.completed
            batch = REQUEST_BATCH if remaining > REQUEST_BATCH else remaining
            self._pending = self.mixer.next_requests(batch)
            idx = 0
        self._pending_idx = idx + 1
        request = self._pending[idx]
        if request.op is OpType.GET:
            self._do_get(request.key)
        else:
            self._do_set(request.key, request.value)

    def _complete(self) -> None:
        self.completed += 1
        elapsed = self.sim.now - self._started_at
        self.latencies_sum += elapsed
        self.latency_recorder.record(elapsed)
        self.latency_histogram.record(elapsed)
        trace = self._active_trace
        if trace is not None:
            self._active_trace = None
            self.tracer.finish(trace, at=self.sim.now)
        self._issue_next()

    def _start_trace(self, name: str, key: str):
        """Begin a sampled trace on the simulation clock (or ``None``)."""
        tracer = self.tracer
        if tracer is None:
            return None
        trace = tracer.start(name, at=self.sim.now)
        if trace is not None:
            trace.note("key", key)
            self._active_trace = trace
        return trace

    def _do_get(self, key: str) -> None:
        trace = self._start_trace("request.get", key)
        issued = self.sim.now
        value = self.policy.lookup(key)
        if value is not MISSING:
            # Local hit: served after the local bookkeeping cost only.
            if trace is not None:
                trace.note("outcome", "hit")
                trace.add_span("frontend.lookup", issued, issued + LOCAL_OP_TIME)
            self.sim.schedule(LOCAL_OP_TIME, self._complete)
            return
        backend = self.cluster.server_for(key)
        shard = backend.server_id
        timed = self.servers[shard]
        one_way = self.latency.one_way()
        if trace is not None:
            trace.note("outcome", "miss")
            trace.add_span("frontend.lookup", issued, issued + LOCAL_OP_TIME)
            trace.add_span(
                "net.request",
                issued + LOCAL_OP_TIME,
                issued + LOCAL_OP_TIME + one_way,
                shard=shard,
            )

        def _arrive() -> None:
            arrived = self.sim.now

            def _served() -> None:
                served = self.sim.now
                value = backend.get(key)
                if value is MISSING:
                    # Caching-layer miss: fetch from storage and populate.
                    value = self.cluster.storage.get(key)
                    backend.set(key, value)
                    if trace is not None:
                        trace.note("outcome", "layer_miss")
                reply = self.latency.one_way()
                if trace is not None:
                    trace.add_span("shard.service", arrived, served, shard=shard)
                    trace.add_span("net.reply", served, served + reply)
                self.sim.schedule(reply, lambda: self._receive(key, value))

            def _failed() -> None:
                # Degraded read: the shard is down, so the value comes
                # straight from authoritative storage (correct, slower).
                value = self.cluster.storage.get(key)
                self.degraded_reads += 1
                extra = STORAGE_FALLBACK_TIME + self.latency.one_way()
                self.fallback_latency_sum += extra
                if trace is not None:
                    trace.note("outcome", "degraded")
                    trace.add_span(
                        "storage.degraded_read",
                        self.sim.now,
                        self.sim.now + extra,
                        shard=shard,
                    )
                self.sim.schedule(extra, lambda: self._receive(key, value))

            timed.submit(self.sim, _served, on_error=_failed)

        self.sim.schedule(LOCAL_OP_TIME + one_way, _arrive)

    def _receive(self, key: str, value: object) -> None:
        self.policy.admit(key, value)
        self._complete()

    def _do_set(self, key: str, value: object) -> None:
        # Client-driven write path: storage write, local invalidation, and
        # a delete at the owning shard; the ack costs one RTT plus the
        # shard's service line (deletes queue like gets do).
        trace = self._start_trace("request.set", key)
        issued = self.sim.now
        self.cluster.storage.set(key, value)
        self.policy.record_update(key)
        backend = self.cluster.server_for(key)
        shard = backend.server_id
        timed = self.servers[shard]
        one_way = self.latency.one_way()
        if trace is not None:
            trace.add_span("storage.write", issued, issued + LOCAL_OP_TIME)
            trace.add_span(
                "net.request",
                issued + LOCAL_OP_TIME,
                issued + LOCAL_OP_TIME + one_way,
                shard=shard,
            )

        def _arrive() -> None:
            arrived = self.sim.now

            def _served() -> None:
                backend.delete(key)
                reply = self.latency.one_way()
                if trace is not None:
                    trace.add_span(
                        "shard.invalidate", arrived, self.sim.now, shard=shard
                    )
                    trace.add_span("net.reply", self.sim.now, self.sim.now + reply)
                self.sim.schedule(reply, self._complete)

            def _failed() -> None:
                # The storage write already landed; only the shard-side
                # invalidation is lost (repaired by cold revival).
                self.failed_invalidations += 1
                if trace is not None:
                    trace.note("outcome", "lost_invalidation")
                self.sim.schedule(self.latency.one_way(), self._complete)

            timed.submit(self.sim, _served, on_error=_failed)

        self.sim.schedule(LOCAL_OP_TIME + one_way, _arrive)
