"""Timed back-end shard: FCFS queue + load-dependent service degradation.

Two mechanisms the paper identifies drive its runtime results, and both
live here:

* **Bottleneck queueing & thrashing** (Figure 5): with 20 closed-loop
  client connections, "the most loaded server introduces a performance
  bottleneck especially under thrashing". We model a single FCFS service
  line per shard whose service time is inflated by a factor growing with
  the number of in-flight requests beyond a concurrency threshold.
* **Load-proportional slowdown** (Figure 6): even with a *single* client
  (no queueing at all), the paper measures skewed-workload runtimes
  roughly proportional to the load-imbalance factor — the hot shard is
  simply slower per request when it is serving far beyond its fair share
  (connection handling, allocator and NIC pressure in the real system).
  We model this as a service-time multiplier proportional to how far the
  shard's arrival share exceeds the fair share ``1/num_servers``.

Both knobs default to values calibrated so the shapes of Figures 5-6
(ratios between uniform / Zipf 0.99 / Zipf 1.2, with and without front-end
caches) reproduce; `benchmarks/bench_fig5_end_to_end.py` prints the
calibration alongside the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim.events import Simulator

if TYPE_CHECKING:
    from repro.cluster.faults import FaultInjector

__all__ = ["ServiceModel", "SimBackendServer"]


@dataclass(frozen=True)
class ServiceModel:
    """Service-time parameters for one shard.

    Attributes
    ----------
    base_service_time:
        seconds of work per request at fair load with no queueing.
    thrash_threshold:
        in-flight requests beyond which thrashing sets in.
    thrash_factor:
        fractional service-time inflation per in-flight request above the
        threshold (0 disables thrashing).
    load_penalty:
        fractional inflation per unit of *excess share*: a shard receiving
        ``s`` of arrivals against a fair share ``f`` serves at
        ``base * (1 + load_penalty * max(0, s/f - 1))``.
    failure_detect_time:
        how long a client-side request on a failed shard takes to be
        recognized as failed (roughly one request timeout; only used when
        a fault injector is attached).
    """

    base_service_time: float = 50e-6
    thrash_threshold: int = 3
    thrash_factor: float = 1.2
    load_penalty: float = 3.0
    failure_detect_time: float = 500e-6

    def __post_init__(self) -> None:
        if self.base_service_time <= 0:
            raise ConfigurationError("base_service_time must be > 0")
        if self.thrash_threshold < 0:
            raise ConfigurationError("thrash_threshold must be >= 0")
        if self.thrash_factor < 0 or self.load_penalty < 0:
            raise ConfigurationError("inflation factors must be >= 0")
        if self.failure_detect_time < 0:
            raise ConfigurationError("failure_detect_time must be >= 0")


class SimBackendServer:
    """FCFS single-line server with the two slowdown mechanisms."""

    def __init__(
        self,
        server_id: str,
        model: ServiceModel,
        fair_share: float,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if not 0 < fair_share <= 1:
            raise ConfigurationError("fair_share must be in (0, 1]")
        self.server_id = server_id
        self.model = model
        self._fair_share = fair_share
        self._busy_until = 0.0
        self._in_flight = 0
        self.arrivals = 0
        self.busy_time = 0.0
        #: requests that failed because of an injected fault
        self.faulted = 0
        self.fault_injector = fault_injector
        self._total_arrivals_ref: list[int] | None = None

    def bind_total_counter(self, counter: list[int]) -> None:
        """Share a mutable total-arrivals cell with the simulation."""
        self._total_arrivals_ref = counter

    # ------------------------------------------------------------------ api

    @property
    def in_flight(self) -> int:
        """Requests currently queued or in service."""
        return self._in_flight

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time this shard spent serving."""
        return self.busy_time / now if now > 0 else 0.0

    def share(self) -> float:
        """This shard's lifetime share of all arrivals."""
        if not self._total_arrivals_ref or self._total_arrivals_ref[0] == 0:
            return self._fair_share
        return self.arrivals / self._total_arrivals_ref[0]

    def _service_time(self) -> float:
        """Current effective per-request service time."""
        service = self.model.base_service_time
        excess_queue = max(0, self._in_flight - self.model.thrash_threshold)
        service *= 1.0 + self.model.thrash_factor * excess_queue
        excess_share = max(0.0, self.share() / self._fair_share - 1.0)
        service *= 1.0 + self.model.load_penalty * excess_share
        if self.fault_injector is not None:
            # Injected slowdown: the migrating/overcommitted instance
            # serves every request proportionally slower.
            service *= self.fault_injector.slowdown(self.server_id)
        return service

    def submit(self, sim: Simulator, on_complete, on_error=None) -> None:
        """Accept one request; ``on_complete()`` fires when it is served.

        With a fault injector attached and an ``on_error`` callback
        provided, an injected failure (shard down / flaky error) fires
        ``on_error()`` after ``failure_detect_time`` instead — the
        client's request timer noticing the failure. Without
        ``on_error`` faults are ignored (legacy callers).
        """
        if self.fault_injector is not None and on_error is not None:
            if self.fault_injector.probe(self.server_id) is not None:
                self.faulted += 1
                sim.schedule_at(
                    sim.now + self.model.failure_detect_time, on_error
                )
                return
        self.arrivals += 1
        if self._total_arrivals_ref is not None:
            self._total_arrivals_ref[0] += 1
        self._in_flight += 1
        service = self._service_time()
        start = max(sim.now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self.busy_time += service

        def _complete() -> None:
            self._in_flight -= 1
            on_complete()

        sim.schedule_at(finish, _complete)
