"""End-to-end runtime simulation (the harness behind Figures 5-6).

Assembles a shared content cluster, per-shard timing models, a latency
model, and N closed-loop clients each with its own front-end cache policy,
runs the event loop to completion, and reports the *overall running time*
(the paper's metric: time until the last client finishes its quota) plus
per-shard load and utilization summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.loadmonitor import load_imbalance
from repro.errors import ConfigurationError
from repro.metrics.latency import percentile
from repro.policies.base import CachePolicy
from repro.sim.client import SimClient
from repro.sim.events import Simulator
from repro.sim.network import FixedLatency, LatencyModel
from repro.sim.server import ServiceModel, SimBackendServer
from repro.workloads.mixer import OperationMixer

__all__ = ["EndToEndResult", "EndToEndSimulation"]


@dataclass
class EndToEndResult:
    """Summary of one end-to-end run."""

    runtime: float
    total_requests: int
    front_end_hit_rate: float
    backend_imbalance: float
    backend_loads: dict[str, int]
    mean_latency: float
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    per_client_runtime: list[float] = field(default_factory=list)
    #: reads served by storage fallback because a shard was down
    degraded_reads: int = 0
    #: total extra latency those fallbacks cost (seconds)
    fallback_latency: float = 0.0
    #: write-path shard invalidations lost to down shards
    failed_invalidations: int = 0

    @property
    def throughput(self) -> float:
        """Requests per simulated second."""
        return self.total_requests / self.runtime if self.runtime else 0.0


class EndToEndSimulation:
    """Configure-and-run wrapper for the discrete-event testbed.

    Parameters
    ----------
    num_clients:
        closed-loop client threads (paper: 20 for Figure 5, 1 for Fig. 6).
    requests_per_client:
        operations per client (paper: 1M total across 20 clients).
    mixer_factory:
        called per client id → :class:`OperationMixer` (each client gets
        an independently seeded stream of the same distribution).
    policy_factory:
        called per client id → that client's front-end cache policy.
    num_servers:
        back-end shards (paper: 8).
    service_model:
        per-shard timing parameters.
    latency:
        network model (defaults to the paper's fixed 244 µs RTT).
    faults:
        optional fault injector attached to the per-shard *timing*
        models: killed shards fail requests into the degraded-read path,
        slowed shards serve with inflated service times. The shared
        content cluster stays fault-free — content correctness is
        storage's job, timing faults are modeled here.
    """

    def __init__(
        self,
        num_clients: int,
        requests_per_client: int,
        mixer_factory: Callable[[int], OperationMixer],
        policy_factory: Callable[[int], CachePolicy],
        num_servers: int = 8,
        service_model: ServiceModel | None = None,
        latency: LatencyModel | None = None,
        cluster: CacheCluster | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if num_clients < 1 or requests_per_client < 1:
            raise ConfigurationError("need >= 1 client and >= 1 request")
        self.sim = Simulator()
        self.cluster = cluster or CacheCluster(
            num_servers=num_servers, capacity_bytes=1 << 40, value_size=1
        )
        self.faults = faults
        model = service_model or ServiceModel()
        latency = latency or FixedLatency()
        fair = 1.0 / len(self.cluster.server_ids)
        total_counter = [0]
        self.servers: dict[str, SimBackendServer] = {}
        for server_id in self.cluster.server_ids:
            server = SimBackendServer(
                server_id, model, fair, fault_injector=faults
            )
            server.bind_total_counter(total_counter)
            self.servers[server_id] = server
        self.clients: list[SimClient] = []
        for client_id in range(num_clients):
            client = SimClient(
                client_id=client_id,
                sim=self.sim,
                mixer=mixer_factory(client_id),
                policy=policy_factory(client_id),
                cluster=self.cluster,
                servers=self.servers,
                latency=latency,
                total_requests=requests_per_client,
            )
            self.clients.append(client)

    def run(self) -> EndToEndResult:
        """Execute the simulation and summarize."""
        for client in self.clients:
            client.start()
        runtime = self.sim.run()
        hits = sum(c.policy.stats.hits for c in self.clients)
        accesses = sum(c.policy.stats.accesses for c in self.clients)
        loads = {sid: server.arrivals for sid, server in self.servers.items()}
        total_requests = sum(c.completed for c in self.clients)
        latency_total = sum(c.latencies_sum for c in self.clients)
        all_samples: list[float] = []
        for client in self.clients:
            all_samples.extend(client.latency_recorder.samples())
        p50 = percentile(all_samples, 50) if all_samples else 0.0
        p99 = percentile(all_samples, 99) if all_samples else 0.0
        return EndToEndResult(
            runtime=runtime,
            total_requests=total_requests,
            front_end_hit_rate=hits / accesses if accesses else 0.0,
            backend_imbalance=load_imbalance(loads),
            backend_loads=loads,
            mean_latency=latency_total / total_requests if total_requests else 0.0,
            p50_latency=p50,
            p99_latency=p99,
            per_client_runtime=[c.finish_time or runtime for c in self.clients],
            degraded_reads=sum(c.degraded_reads for c in self.clients),
            fallback_latency=sum(c.fallback_latency_sum for c in self.clients),
            failed_invalidations=sum(
                c.failed_invalidations for c in self.clients
            ),
        )
