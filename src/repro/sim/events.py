"""A minimal discrete-event simulation kernel.

The end-to-end experiments (paper Figures 5-6) measure wall-clock runtime
on a real testbed; our substitution is a discrete-event simulation whose
*structure* (closed-loop clients, FCFS back-end queues, fixed RTT)
reproduces the mechanisms the paper identifies as dominating runtime —
bottleneck queueing at the most-loaded shard and connection thrashing.

The kernel is deliberately tiny: a time-ordered event heap with
deterministic FIFO tie-breaking, ``schedule``/``run`` and nothing else.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Event heap + clock. Times are seconds as floats."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total events executed so far."""
        return self._processed

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` at ``now + delay`` (ties run in schedule order)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._queue, (self._now + delay, self._seq, action))
        self._seq += 1

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute ``time`` (must not be in the past)."""
        self.schedule(time - self._now, action)

    def run(self, max_events: int | None = None) -> float:
        """Drain the event heap; returns the final clock value.

        ``max_events`` guards against runaway simulations (an exhausted
        budget raises, since silently truncating would corrupt results).
        """
        budget = max_events
        while self._queue:
            if budget is not None:
                if budget == 0:
                    raise SimulationError(
                        f"event budget exhausted at t={self._now:.6f}s "
                        f"({self._processed} events processed)"
                    )
                budget -= 1
            time, _seq, action = heapq.heappop(self._queue)
            self._now = time
            self._processed += 1
            action()
        return self._now
