"""repro — a full reproduction of "Cache on Track (CoT): Decentralized
Elastic Caches for Cloud Environments" (Zakhary, Lim, Agrawal, El Abbadi,
EDBT 2021).

Quickstart
----------
>>> from repro import CoTCache, ZipfianGenerator, MISSING
>>> cache = CoTCache(capacity=8, tracker_capacity=32)
>>> workload = ZipfianGenerator(key_space=10_000, theta=0.99, seed=7)
>>> for key in workload.keys(50_000):
...     if cache.lookup(key) is MISSING:
...         cache.admit(key, f"value-{key}")    # fetched from the back end
>>> cache.stats.hit_rate > 0.2
True

See ``examples/`` for end-to-end scenarios (multi-front-end load
balancing, elastic auto-configuration) and ``repro.experiments`` for the
paper's tables and figures.
"""

from repro.cluster import (
    BackendCacheServer,
    CacheCluster,
    ConsistentHashRing,
    FrontEndClient,
    LoadMonitor,
    PersistentStore,
    load_imbalance,
)
from repro.core import (
    AccessType,
    CoTCache,
    CoTTracker,
    ElasticCoTClient,
    EpochRecord,
    EpochSnapshot,
    ExponentialDecay,
    HalfLifeDecay,
    HotnessModel,
    IndexedMinHeap,
    KeyStats,
    NoDecay,
    ResizeDecision,
    ResizingController,
    SpaceSaving,
)
from repro.policies import (
    ARCCache,
    CachePolicy,
    LFUCache,
    LRUCache,
    LRUKCache,
    MISSING,
    NullCache,
    PerfectCache,
    make_policy,
)
from repro.workloads import (
    GaussianGenerator,
    HotspotGenerator,
    OperationMixer,
    OpType,
    Request,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CoTCache",
    "CoTTracker",
    "ElasticCoTClient",
    "EpochRecord",
    "EpochSnapshot",
    "SpaceSaving",
    "IndexedMinHeap",
    "AccessType",
    "HotnessModel",
    "KeyStats",
    "ResizeDecision",
    "ResizingController",
    "NoDecay",
    "HalfLifeDecay",
    "ExponentialDecay",
    # policies
    "MISSING",
    "CachePolicy",
    "LRUCache",
    "LFUCache",
    "ARCCache",
    "LRUKCache",
    "PerfectCache",
    "NullCache",
    "make_policy",
    # workloads
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "HotspotGenerator",
    "SkewedLatestGenerator",
    "GaussianGenerator",
    "OperationMixer",
    "OpType",
    "Request",
    # cluster
    "CacheCluster",
    "FrontEndClient",
    "BackendCacheServer",
    "ConsistentHashRing",
    "LoadMonitor",
    "PersistentStore",
    "load_imbalance",
]
