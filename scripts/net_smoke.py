"""CI net-smoke check: the socket plane must carry real traffic and agree.

Three bounded probes of the network data plane (:mod:`repro.net`), run
from the repo root with PYTHONPATH=src (scripts/verify.sh does, under a
hard 60s timeout):

1. **closed loop** — 2 spawned asyncio shard servers + 2 spawned
   pipelined client processes on ephemeral localhost ports push a few
   thousand requests through real TCP sockets and report wall-clock
   requests/sec plus the measured latency distribution;
2. **pipelining** — one connection drives the same stream in lockstep
   and at depth 32; the pipelined run must be faster (the hard >= 3x
   gate lives in the perf gate, this stage only proves the mechanism);
3. **equivalence** — a 10k-request mixed stream replays through both
   planes with identical seeds; every front-end decision, shard counter
   and storage counter must match exactly.

A real file, not a shell heredoc: the harness spawns worker processes
that re-import ``__main__``.
"""

import sys

from repro.net.harness import (
    decision_equivalence,
    measure_pipelining,
    run_network_load,
)


def main() -> int:
    report = run_network_load(
        num_servers=2, num_clients=2, requests_per_client=2_000
    )
    p50 = report.histogram.percentile(50) * 1e6
    print(
        f"(closed loop: {report.requests:,} requests over TCP at "
        f"{report.throughput:,.0f} req/s, p50 {p50:,.0f}us, "
        f"{report.client_stats.get('connections', 0)} connection(s))"
    )
    if report.requests < 4_000:
        print("net smoke: closed loop lost requests", file=sys.stderr)
        return 1

    pipelining = measure_pipelining(requests=2_000, depth=32)
    print(
        f"(pipelining: lockstep {pipelining['unpipelined']:,.0f} req/s, "
        f"depth-32 {pipelining['pipelined']:,.0f} req/s, "
        f"speedup {pipelining['speedup']:.2f}x)"
    )
    if pipelining["speedup"] <= 1.0:
        print("net smoke: pipelining did not beat lockstep", file=sys.stderr)
        return 1

    equal, in_process, networked = decision_equivalence(accesses=10_000)
    if not equal:
        print("net smoke: planes diverged on the equivalence stream",
              file=sys.stderr)
        print(f"  in-process: {in_process}", file=sys.stderr)
        print(f"  networked:  {networked}", file=sys.stderr)
        return 1
    hits = sum(fe["hits"] for fe in in_process["front_ends"])
    print(f"(equivalence: 10,000 requests, {hits:,} cache hits, "
          f"both planes decision-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
