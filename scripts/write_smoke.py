"""CI write-smoke check: the strategy layer's default must cost nothing.

Two checks, both seconds-scale (scripts/verify.sh runs this between the
hot-key smoke and the perf gate):

1. **Cache-aside equivalence** — two identically-seeded front ends drive
   the same mixed stream, one through the client's inline write body
   (no strategy attached — what every registered experiment runs) and
   one through an explicitly attached
   :class:`~repro.cluster.writepolicy.CacheAsideWritePolicy`. Every
   returned value, the policy hit/miss ledgers, the storage ledgers and
   the per-shard load distributions must be identical: the strategy
   layer's default is the inline protocol, observable byte for byte.

2. **Write-behind loss bound** — the ``ext-write`` chaos check: kill
   the shard holding the deepest dirty buffer, revive it cold, and the
   acknowledged-write loss must equal the frozen queue depth and stay
   within ``dirty_limit``.

Run from the repo root with PYTHONPATH=src (scripts/verify.sh does).
"""

import random
import sys

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.writepolicy import CacheAsideWritePolicy
from repro.experiments.extension_write import write_behind_chaos_check
from repro.policies.registry import make_policy

OPS = 30_000
KEYS = 4_096
READ_FRACTION = 0.6
SEED = 42


def _build() -> FrontEndClient:
    cluster = CacheCluster(num_servers=8, value_size=1)
    return FrontEndClient(
        cluster, make_policy("cot", 256, tracker_capacity=1024)
    )


def check_cache_aside_equivalence() -> int:
    inline = _build()
    explicit = _build()
    policy = CacheAsideWritePolicy()
    policy.bind_cluster(explicit.cluster)
    explicit.attach_write_policy(policy)
    rng = random.Random(SEED)
    ops = []
    for _ in range(OPS):
        key = f"usertable:{rng.randrange(KEYS)}"
        roll = rng.random()
        ops.append((key, "get" if roll < READ_FRACTION else
                    "set" if roll < 0.95 else "delete"))
    for key, op in ops:
        if op == "get":
            if inline.get(key) != explicit.get(key):
                print(f"write smoke: value diverged on get({key!r})",
                      file=sys.stderr)
                return 1
        elif op == "set":
            value = (key, op)
            inline.set(key, value)
            explicit.set(key, value)
        else:
            inline.delete(key)
            explicit.delete(key)
    pairs = [
        ("policy hits", inline.policy.stats.hits, explicit.policy.stats.hits),
        ("policy misses", inline.policy.stats.misses,
         explicit.policy.stats.misses),
        ("backend lookups", inline.monitor.total_lookups(),
         explicit.monitor.total_lookups()),
        ("storage reads", inline.cluster.storage.stats.reads,
         explicit.cluster.storage.stats.reads),
        ("storage writes", inline.cluster.storage.stats.writes,
         explicit.cluster.storage.stats.writes),
        ("shard loads", inline.monitor.total_loads(),
         explicit.monitor.total_loads()),
    ]
    for label, a, b in pairs:
        if a != b:
            print(f"write smoke: {label} diverged ({a!r} != {b!r})",
                  file=sys.stderr)
            return 1
    print(f"(explicit cache-aside strategy is observation-identical to the "
          f"inline write body over {OPS:,} mixed ops)")
    return 0


def check_write_behind_bound() -> int:
    chaos = write_behind_chaos_check()
    if not chaos["bound_ok"]:
        print(f"write smoke: write-behind loss bound violated: {chaos}",
              file=sys.stderr)
        return 1
    print(f"(write-behind chaos lost {chaos['write_behind_lost']} of a "
          f"dirty_limit={chaos['dirty_limit']} budget — bound held)")
    return 0


def main() -> int:
    return check_cache_aside_equivalence() or check_write_behind_bound()


if __name__ == "__main__":
    sys.exit(main())
