#!/usr/bin/env bash
# One-shot verification: the full test suite plus the perf-regression
# gate, exactly what CI runs. Extra arguments are forwarded to the perf
# gate (e.g. --threshold 0.10 or --against fastpath).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tests =="
python -m pytest -x -q

echo "== perf gate =="
python benchmarks/run_perf_gate.py --check "$@"

echo "== OK =="
