#!/usr/bin/env bash
# One-shot verification: lint, the full test suite, an engine smoke run
# and the perf-regression gate, exactly what CI runs. Extra arguments are
# forwarded to the perf gate (e.g. --threshold 0.10 or --against fastpath).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== hygiene =="
# Committed bytecode / tool caches are repo rot: fail fast if any sneak in.
if git ls-files | grep -E '(^|/)__pycache__/|\.py[cod]$|(^|/)\.pytest_cache/|(^|/)\.benchmarks/|\.egg-info(/|$)|^benchmarks/output/' ; then
    echo "tracked build/bytecode/benchmark-output artifacts found (see above); git rm them" >&2
    exit 1
fi
echo "(no tracked bytecode, tool-cache, or benchmark-output artifacts)"

echo "== lint =="
if python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks
else
    echo "(ruff not installed; falling back to a compile check)"
    python -m compileall -q src tests benchmarks
fi

echo "== tests =="
python -m pytest -x -q

echo "== fuzz =="
# Bounded model-based fuzz: the stateful hypothesis machine drives random
# get/set/delete/get_many/kill/revive/add/remove/epoch/refresh
# interleavings against the dict oracle (tests/test_cluster_stateful.py).
# Derandomized here so CI is reproducible; for a deeper randomized soak,
# drop CLUSTER_FUZZ_DERANDOMIZE and raise the budgets. Replay a specific
# run with:  python -m pytest tests/test_cluster_stateful.py --hypothesis-seed=<N>
CLUSTER_FUZZ_EXAMPLES=200 CLUSTER_FUZZ_STEPS=60 CLUSTER_FUZZ_DERANDOMIZE=1 \
    python -m pytest tests/test_cluster_stateful.py -q

echo "== engine smoke =="
python -m repro.experiments --list
metrics_out="$(mktemp)"
python -m repro.experiments all --scale smoke --metrics-out "$metrics_out"
# The exported page must round-trip through the strict parser.
python - "$metrics_out" <<'PY'
import sys
from repro.obs.export import parse_prometheus
series = parse_prometheus(open(sys.argv[1], encoding="utf-8").read())
assert any(name.endswith("_total") for name in series), "no counters exported"
print(f"(metrics page OK: {len(series)} series)")
PY
rm -f "$metrics_out"

echo "== parallel smoke =="
# One fabric-routed sweep at --parallel 2 must render the sequential
# golden bytes: parallelism is allowed to change wall-clock, never output.
# (A real script, not a heredoc: spawned workers re-import __main__.)
python scripts/parallel_smoke.py

echo "== hot-key smoke =="
# The adversarial ext-hotkey pair (classic vs replicated tier) must keep
# its headline win at smoke scale: >= 2x modeled cluster throughput and
# <= 0.5x hottest-shard spread. Runs the same measurement the full perf
# gate chains, but as a named stage so a tier regression is immediately
# attributable in CI output.
python benchmarks/run_perf_gate.py --hot-key

echo "== write smoke =="
# The write-path strategy layer's default must be free: an explicitly
# attached cache-aside strategy is observation-identical to the inline
# write body, and write-behind's chaos loss stays within dirty_limit.
python scripts/write_smoke.py

echo "== net smoke =="
# The socket data plane must carry real traffic: 2 asyncio shard servers
# + pipelined clients on ephemeral localhost ports, pipelining beating
# lockstep, and a 10k-request stream making byte-identical cache
# decisions on both planes. Hard 60s ceiling: a hung socket is a bug,
# not a slow test.
timeout 60 python scripts/net_smoke.py

echo "== adaptive smoke =="
# The adaptive arbiter must keep its price and its tracking: the shadow
# machinery costs <= 15% on the serving hot path with the live policy
# pinned, and the arbiter converges to the best fixed policy on every
# ext-adaptive scenario at smoke scale. Same measurement the full perf
# gate chains, surfaced as a named stage for attributable CI failures.
python benchmarks/run_perf_gate.py --adaptive

echo "== perf gate =="
python benchmarks/run_perf_gate.py --check "$@"

echo "== OK =="
