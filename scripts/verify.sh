#!/usr/bin/env bash
# One-shot verification: lint, the full test suite, an engine smoke run
# and the perf-regression gate, exactly what CI runs. Extra arguments are
# forwarded to the perf gate (e.g. --threshold 0.10 or --against fastpath).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint =="
if python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks
else
    echo "(ruff not installed; falling back to a compile check)"
    python -m compileall -q src tests benchmarks
fi

echo "== tests =="
python -m pytest -x -q

echo "== engine smoke =="
python -m repro.experiments --list
python -m repro.experiments all --scale smoke

echo "== perf gate =="
python benchmarks/run_perf_gate.py --check "$@"

echo "== OK =="
