"""CI parallel-smoke check: fig4 at 2 workers must render the golden bytes.

Run from the repo root with PYTHONPATH=src (scripts/verify.sh does). This
lives in a real file, not a shell heredoc, because the fabric's spawned
workers re-import ``__main__`` — a stdin script cannot cross a spawn
boundary and would silently take the in-process fallback, testing nothing.
"""

import sys

from repro.engine.parallel import parallel_workers, warm_pool
from repro.engine.registry import get_experiment
from repro.experiments.common import Scale
import repro.experiments  # noqa: F401  (registers experiments)


def main() -> int:
    golden = open("tests/golden/fig4.smoke.txt", encoding="utf-8").read()
    with parallel_workers(2):
        if warm_pool() != 2:
            print("parallel smoke: pool refused to start", file=sys.stderr)
            return 1
        results = get_experiment("fig4").run(scale=Scale.smoke())
    rendered = "\n\n".join(result.render() for result in results) + "\n"
    if rendered != golden:
        print("parallel render diverged from sequential golden",
              file=sys.stderr)
        return 1
    print("(fig4 at --parallel 2 is byte-identical to the sequential golden)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
