"""Tests for the YCSB-faithful Zipfian generator and its analytics."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.zipfian import (
    ZIPFIAN_CONSTANT,
    ZipfianGenerator,
    zeta,
    zipf_cdf,
    zipf_pmf,
)


class TestZeta:
    def test_small_values(self):
        assert zeta(1, 1.0) == pytest.approx(1.0)
        assert zeta(2, 1.0) == pytest.approx(1.5)
        assert zeta(3, 1.0) == pytest.approx(1.5 + 1 / 3)

    def test_incremental_matches_direct(self):
        theta = 0.99
        direct = zeta(100, theta)
        partial = zeta(60, theta)
        extended = zeta(100, theta, start=60, initial=partial)
        assert extended == pytest.approx(direct)

    def test_pmf_sums_to_one(self):
        n, theta = 500, 0.9
        total = sum(zipf_pmf(i, n, theta) for i in range(n))
        assert total == pytest.approx(1.0)

    def test_cdf_properties(self):
        n, theta = 1000, 0.99
        assert zipf_cdf(0, n, theta) == 0.0
        assert zipf_cdf(n, n, theta) == pytest.approx(1.0)
        assert zipf_cdf(2 * n, n, theta) == pytest.approx(1.0)
        values = [zipf_cdf(k, n, theta) for k in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_cdf_head_dominates_for_high_skew(self):
        assert zipf_cdf(10, 10_000, 1.5) > zipf_cdf(10, 10_000, 0.9)


class TestGenerator:
    def test_defaults(self):
        gen = ZipfianGenerator(100)
        assert gen.theta == ZIPFIAN_CONSTANT
        assert gen.key_space == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(100, theta=0.0)
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(0)

    def test_range(self):
        gen = ZipfianGenerator(50, theta=0.99, seed=1)
        for key in gen.keys(2000):
            assert 0 <= key < 50

    def test_determinism(self):
        a = ZipfianGenerator(1000, theta=0.99, seed=7)
        b = ZipfianGenerator(1000, theta=0.99, seed=7)
        assert list(a.keys(500)) == list(b.keys(500))

    def test_different_seeds_differ(self):
        a = ZipfianGenerator(1000, theta=0.99, seed=7)
        b = ZipfianGenerator(1000, theta=0.99, seed=8)
        assert list(a.keys(200)) != list(b.keys(200))

    def test_rank_zero_is_hottest(self):
        gen = ZipfianGenerator(1000, theta=1.2, seed=3)
        counts = Counter(gen.keys(20_000))
        assert counts[0] == max(counts.values())

    def test_empirical_matches_pmf(self):
        n, theta, draws = 200, 0.99, 60_000
        gen = ZipfianGenerator(n, theta=theta, seed=11)
        counts = Counter(gen.keys(draws))
        for rank in (0, 1, 2, 5, 10):
            expected = gen.pmf(rank) * draws
            assert counts[rank] == pytest.approx(expected, rel=0.15)

    def test_theta_near_one_does_not_blow_up(self):
        gen = ZipfianGenerator(100, theta=1.0, seed=2)
        assert all(0 <= k < 100 for k in gen.keys(1000))

    def test_grow(self):
        gen = ZipfianGenerator(100, theta=0.99, seed=5)
        gen.grow(200)
        assert gen.key_space == 200
        assert all(0 <= k < 200 for k in gen.keys(2000))
        # zetan must equal a from-scratch computation after growth.
        assert gen._zetan == pytest.approx(zeta(200, gen.theta))

    def test_grow_shrink_rejected(self):
        gen = ZipfianGenerator(100)
        with pytest.raises(ConfigurationError):
            gen.grow(50)

    def test_perfect_cache_hit_rate(self):
        gen = ZipfianGenerator(1000, theta=0.99)
        assert gen.perfect_cache_hit_rate(1000) == pytest.approx(1.0)
        assert gen.perfect_cache_hit_rate(10) == pytest.approx(
            zipf_cdf(10, 1000, gen.theta)
        )

    def test_precomputed_zetan_honoured(self):
        gen = ZipfianGenerator(100, theta=0.99, zetan=zeta(100, 0.99))
        reference = ZipfianGenerator(100, theta=0.99)
        assert gen._zetan == pytest.approx(reference._zetan)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.5, 1.6), st.integers(10, 2000))
    def test_draws_always_in_range(self, theta, n):
        gen = ZipfianGenerator(n, theta=theta, seed=1)
        for key in gen.keys(200):
            assert 0 <= key < n

    def test_describe(self):
        assert "zipfian" in ZipfianGenerator(10, theta=1.2).describe()
