"""Tests for metrics: imbalance summaries, latency, series, tables."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.metrics.imbalance import (
    ImbalanceSummary,
    coefficient_of_variation,
    peak_to_mean,
    relative_load,
    summarize_loads,
)
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.series import SeriesRecorder, sparkline
from repro.metrics.table import format_cell, render_table


class TestImbalanceMetrics:
    def test_peak_to_mean(self):
        assert peak_to_mean({"a": 10, "b": 20, "c": 30}) == pytest.approx(1.5)
        assert peak_to_mean([]) == 1.0
        assert peak_to_mean([0, 0]) == 1.0

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([1]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)

    def test_relative_load(self):
        assert relative_load(50, 100) == 0.5
        assert relative_load(50, 0) == 1.0

    def test_summary(self):
        summary = summarize_loads({"a": 10, "b": 20})
        assert isinstance(summary, ImbalanceSummary)
        assert summary.max_min == 2.0
        assert summary.total == 30
        row = summary.as_row()
        assert row["imbalance"] == 2.0
        assert row["total_lookups"] == 30


class TestPercentiles:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0


class TestLatencyRecorder:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyRecorder(reservoir_size=0)

    def test_streaming_stats(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean == 2.0
        assert recorder.min_value == 1.0
        assert recorder.max_value == 3.0

    def test_small_sample_percentiles_exact(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == pytest.approx(50.5)
        assert recorder.percentile(99) == pytest.approx(99.01)

    def test_reservoir_bounded_and_unbiased(self):
        recorder = LatencyRecorder(reservoir_size=500, seed=1)
        rng = random.Random(2)
        for _ in range(50_000):
            recorder.record(rng.uniform(0, 100))
        assert len(recorder._samples) == 500
        assert recorder.percentile(50) == pytest.approx(50, abs=8)

    def test_summary(self):
        recorder = LatencyRecorder()
        assert recorder.summary()["count"] == 0
        recorder.record(1.0)
        summary = recorder.summary()
        assert summary["count"] == 1
        assert summary["mean"] == 1.0


class TestTableRender:
    def test_alignment(self):
        table = render_table(["name", "x"], [["a", 1], ["long-name", 22]])
        lines = table.split("\n")
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if "-+-" not in line)

    def test_title(self):
        table = render_table(["a"], [[1]], title="T")
        assert table.startswith("T\n=")

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234.5"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell("x") == "x"

    def test_doctest_shape(self):
        table = render_table(["a", "b"], [[1, 2.5], [30, "x"]])
        assert table == "a  | b\n---+----\n1  | 2.5\n30 | x"


class TestSeries:
    def test_add_and_render(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, cache=2, imbalance=3.0)
        recorder.add_point(1, cache=4, imbalance=2.0)
        assert len(recorder) == 2
        assert recorder.series("cache") == [2, 4]
        assert recorder.x_values() == [0, 1]
        table = recorder.to_table(title="fig")
        assert "cache" in table and "imbalance" in table

    def test_mismatched_names_rejected(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, a=1)
        with pytest.raises(ConfigurationError):
            recorder.add_point(1, b=2)

    def test_subsampling(self):
        recorder = SeriesRecorder()
        for i in range(10):
            recorder.add_point(i, v=i)
        table = recorder.to_table(every=5)
        assert "0" in table and "5" in table

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0, 1, 2, 3], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_to_sparklines(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, v=1.0)
        recorder.add_point(1, v=5.0)
        text = recorder.to_sparklines()
        assert "v" in text and "[1..5]" in text
