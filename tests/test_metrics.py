"""Tests for metrics: imbalance summaries, latency, series, tables."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.metrics.imbalance import (
    ImbalanceSummary,
    coefficient_of_variation,
    peak_to_mean,
    relative_load,
    summarize_loads,
)
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.series import SeriesRecorder, sparkline
from repro.metrics.table import format_cell, render_table


class TestImbalanceMetrics:
    def test_peak_to_mean(self):
        assert peak_to_mean({"a": 10, "b": 20, "c": 30}) == pytest.approx(1.5)
        assert peak_to_mean([]) == 1.0
        assert peak_to_mean([0, 0]) == 1.0

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([1]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)

    def test_relative_load(self):
        assert relative_load(50, 100) == 0.5
        assert relative_load(50, 0) == 1.0

    def test_summary(self):
        summary = summarize_loads({"a": 10, "b": 20})
        assert isinstance(summary, ImbalanceSummary)
        assert summary.max_min == 2.0
        assert summary.total == 30
        row = summary.as_row()
        assert row["imbalance"] == 2.0
        assert row["total_lookups"] == 30


class TestPercentiles:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_two_element_edge_ranks(self):
        # q=0/q=100 must hit the exact order statistics, and the midpoint
        # must interpolate — the smallest case where rank arithmetic can
        # go wrong off-by-one.
        assert percentile([3.0, 1.0], 0) == 1.0
        assert percentile([3.0, 1.0], 100) == 3.0
        assert percentile([3.0, 1.0], 50) == 2.0
        assert percentile([3.0, 1.0], 25) == pytest.approx(1.5)


class TestLatencyRecorder:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyRecorder(reservoir_size=0)

    def test_streaming_stats(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean == 2.0
        assert recorder.min_value == 1.0
        assert recorder.max_value == 3.0

    def test_small_sample_percentiles_exact(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == pytest.approx(50.5)
        assert recorder.percentile(99) == pytest.approx(99.01)

    def test_reservoir_bounded_and_unbiased(self):
        recorder = LatencyRecorder(reservoir_size=500, seed=1)
        rng = random.Random(2)
        for _ in range(50_000):
            recorder.record(rng.uniform(0, 100))
        assert len(recorder._samples) == 500
        assert recorder.percentile(50) == pytest.approx(50, abs=8)

    def test_summary(self):
        recorder = LatencyRecorder()
        assert recorder.summary()["count"] == 0
        recorder.record(1.0)
        summary = recorder.summary()
        assert summary["count"] == 1
        assert summary["mean"] == 1.0

    def test_reservoir_slot_uniformity(self):
        """Algorithm R: every stream position is equally likely to be kept.

        With k=32 slots over n=1024 records, each record survives with
        probability k/n = 1/32. Averaged over many seeds, the first half
        of the stream and the second half must be retained at the same
        rate — a biased replacement rule (e.g. favoring early or late
        records) shows up immediately as a first/second-half skew.
        """
        k, n, runs = 32, 1024, 300
        first_half_kept = 0
        for seed in range(runs):
            recorder = LatencyRecorder(reservoir_size=k, seed=seed)
            for i in range(n):
                recorder.record(float(i))
            first_half_kept += sum(
                1 for v in recorder.samples() if v < n / 2
            )
        total_kept = k * runs
        first_fraction = first_half_kept / total_kept
        # Binomial(9600, 0.5) → sigma ≈ 0.005; allow ~4 sigma.
        assert first_fraction == pytest.approx(0.5, abs=0.02)


class TestLatencyRecorderMerge:
    def test_exact_merge_below_capacity(self):
        a = LatencyRecorder(reservoir_size=100)
        b = LatencyRecorder(reservoir_size=100)
        for v in (1.0, 2.0):
            a.record(v)
        for v in (3.0, 4.0):
            b.record(v)
        merged = LatencyRecorder.merged([a, b])
        assert merged.count == 4
        assert sorted(merged.samples()) == [1.0, 2.0, 3.0, 4.0]
        assert merged.percentile(50) == pytest.approx(2.5)

    def test_merge_combines_streaming_stats_exactly(self):
        a = LatencyRecorder(reservoir_size=10, seed=0)
        b = LatencyRecorder(reservoir_size=10, seed=1)
        for i in range(1000):
            a.record(1.0 + i * 1e-3)
        for i in range(50):
            b.record(10.0 + i * 1e-3)
        merged = LatencyRecorder.merged([a, b])
        assert merged.count == 1050
        assert merged.total == pytest.approx(a.total + b.total)
        assert merged.min_value == a.min_value
        assert merged.max_value == b.max_value

    def test_merge_weights_by_stream_count_not_reservoir_length(self):
        """The satellite bugfix: saturated reservoirs merge count-weighted.

        Client A served 50k requests around 1.0 through a saturated
        reservoir; client B served 500 around 10.0 — under 1% of the
        combined traffic. Concatenating the reservoirs makes B a third of
        the pooled samples, so the naive p75 jumps into B's mode (~10)
        even though the true p75 is ~1.05. The count-weighted merge keeps
        B's share near 1%: its p75 stays at A's mode and only the extreme
        tail (p99.9) sees B.
        """
        rng = random.Random(7)
        size = 1000
        a = LatencyRecorder(reservoir_size=size, seed=1)
        b = LatencyRecorder(reservoir_size=size, seed=2)
        for _ in range(50_000):
            a.record(rng.uniform(0.9, 1.1))
        for _ in range(500):
            b.record(rng.uniform(9.0, 11.0))
        naive_p75 = percentile(a.samples() + b.samples(), 75)
        merged = LatencyRecorder.merged([a, b], seed=3)
        assert merged.count == 50_500
        assert merged.percentile(50) == pytest.approx(1.0, abs=0.2)
        assert merged.percentile(75) == pytest.approx(1.05, abs=0.2)
        assert naive_p75 > 5.0, "concatenation should stay visibly biased"
        # The extreme tail still sees client B: ~1% of traffic at ~10.0.
        assert merged.percentile(99.9) > 5.0

    def test_merge_empty_other_is_noop(self):
        a = LatencyRecorder()
        a.record(1.0)
        a.merge(LatencyRecorder())
        assert a.count == 1
        assert LatencyRecorder.merged([]).count == 0


class TestTableRender:
    def test_alignment(self):
        table = render_table(["name", "x"], [["a", 1], ["long-name", 22]])
        lines = table.split("\n")
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if "-+-" not in line)

    def test_title(self):
        table = render_table(["a"], [[1]], title="T")
        assert table.startswith("T\n=")

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234.5"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell("x") == "x"

    def test_doctest_shape(self):
        table = render_table(["a", "b"], [[1, 2.5], [30, "x"]])
        assert table == "a  | b\n---+----\n1  | 2.5\n30 | x"


class TestSeries:
    def test_add_and_render(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, cache=2, imbalance=3.0)
        recorder.add_point(1, cache=4, imbalance=2.0)
        assert len(recorder) == 2
        assert recorder.series("cache") == [2, 4]
        assert recorder.x_values() == [0, 1]
        table = recorder.to_table(title="fig")
        assert "cache" in table and "imbalance" in table

    def test_mismatched_names_rejected(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, a=1)
        with pytest.raises(ConfigurationError):
            recorder.add_point(1, b=2)

    def test_subsampling(self):
        recorder = SeriesRecorder()
        for i in range(10):
            recorder.add_point(i, v=i)
        table = recorder.to_table(every=5)
        assert "0" in table and "5" in table

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0, 1, 2, 3], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_to_sparklines(self):
        recorder = SeriesRecorder()
        recorder.add_point(0, v=1.0)
        recorder.add_point(1, v=5.0)
        text = recorder.to_sparklines()
        assert "v" in text and "[1..5]" in text
