"""Model-based fuzzing of the whole elastic cluster (ROADMAP item 5).

One hypothesis :class:`RuleBasedStateMachine` drives random interleavings
of the full operation surface — ``get`` / ``set`` / ``delete`` /
``get_many`` / ``kill_server`` / ``revive_server`` / ``add_server`` /
``remove_server`` / epoch closes / router refreshes / write-behind
flushes — against the dict-backed oracle in :mod:`repro.cluster.oracle`,
across the topology grid in ``TOPOLOGIES`` (front-end count × coherence
mode × replication × write mode × breaker aggressiveness). After every
step the machine asserts:

* no stale read escapes (mode-aware: coherent reads must always return
  the committed value; paper-mode reads may only serve a front end's own
  untouched local copy; acknowledged write-through writes are never
  served stale from the caching layer; write-behind reads see the queued
  value — the pre-flush durable value only while the owning shard is
  down; ttl reads stay inside the ``2*ttl``-tick obsolescence window);
* write-behind's dirty buffers never exceed ``dirty_limit`` (per shard
  and at their historic peak), mirror the model's queues entry-for-entry
  across kill/revive/add/remove interleavings, and ``lost_writes``
  equals exactly the queue entries dropped by cold revivals;
* the invalidation directory's incremental size counter matches a full
  recount, and the directory matches what front ends actually cache;
* per-shard state (fault profiles, breakers, load windows, router
  replica/quarantine/pending sets) references only live shard ids;
* the elastic controller's churn-safe load view never includes departed,
  breaker-open or mid-epoch-fresh shards;
* the fault injector's down set matches the machine's own model of which
  shards were killed — shard-id reuse after scale-in shows up here as a
  freshly added shard inheriting a dead incarnation's profile;
* ``add_server`` always mints a never-before-seen id and the new shard
  starts empty.

Every counterexample this machine has shaken out is preserved as a named
deterministic regression test (see ``test_cluster.py``, ``test_faults.py``,
``test_invalidation.py``, ``test_replication.py``) so the fixes cannot
regress even at ``max_examples=0``.

Budget knobs (all via environment, used by ``scripts/verify.sh``):

* ``CLUSTER_FUZZ_EXAMPLES`` — hypothesis ``max_examples`` (default 25);
* ``CLUSTER_FUZZ_STEPS`` — ``stateful_step_count`` (default 30);
* ``CLUSTER_FUZZ_DERANDOMIZE=1`` — deterministic CI profile.

To replay a specific run: ``python -m pytest tests/test_cluster_stateful.py
--hypothesis-seed=<N>`` (any failure is shrunk and printed as a minimal
rule sequence to copy into a named regression test).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster.oracle import (
    ClusterHarness,
    TopologyCase,
    check_cluster_invariants,
)

#: The topology grid. Axes: front ends × coherence × replication × guard.
TOPOLOGIES = (
    TopologyCase("paper-1fe"),
    TopologyCase("paper-3fe", num_front_ends=3),
    TopologyCase("paper-2fe-replicated", num_front_ends=2, replicated=True),
    TopologyCase("paper-2fe-tight", num_front_ends=2, tight_guard=True),
    TopologyCase("coherent-2fe", num_front_ends=2, coherent=True),
    TopologyCase(
        "coherent-3fe-replicated",
        num_front_ends=3,
        coherent=True,
        replicated=True,
    ),
    TopologyCase(
        "coherent-2fe-replicated-tight",
        num_front_ends=2,
        coherent=True,
        replicated=True,
        tight_guard=True,
    ),
    # Write-path axis (replicated fan-out per mode is pinned by unit
    # tests; here the modes face topology churn instead).
    TopologyCase("writethrough-2fe", num_front_ends=2, write_mode="write-through"),
    TopologyCase(
        "writethrough-coherent-2fe",
        num_front_ends=2,
        coherent=True,
        write_mode="write-through",
    ),
    TopologyCase("writebehind-1fe", write_mode="write-behind", dirty_limit=3),
    TopologyCase(
        "writebehind-2fe-tight",
        num_front_ends=2,
        write_mode="write-behind",
        dirty_limit=2,
        tight_guard=True,
    ),
    TopologyCase("ttl-2fe", num_front_ends=2, write_mode="ttl", ttl=6),
    # Network axis: shards served over localhost sockets (smoke scale,
    # 1 front end) so kill/revive also exercises real TCP teardown and
    # the client pool's lazy reconnect.
    TopologyCase("network-1fe", network=True),
)

#: Small key universe so random operations collide on keys constantly —
#: collisions are where invalidation, replication and re-homing bugs live.
KEYS = tuple(f"k{i}" for i in range(12))

#: Topology churn bounds: never below 2 shards (the ring stays
#: meaningful), never above 6 (placements keep overlapping).
MIN_SERVERS = 2
MAX_SERVERS = 6

keys_st = st.sampled_from(KEYS)


class ElasticClusterMachine(RuleBasedStateMachine):
    """Random walks over the full cluster surface, checked per step."""

    harness: ClusterHarness | None = None

    @initialize(
        case=st.sampled_from(TOPOLOGIES), seed=st.integers(min_value=0, max_value=127)
    )
    def build(self, case: TopologyCase, seed: int) -> None:
        self.harness = ClusterHarness(case, seed=seed)
        self.model = self.harness.model
        #: shards the machine itself killed and has not revived/removed —
        #: the oracle for the fault injector's down set.
        self.down: set[str] = set()
        self.seen_ids: set[str] = set(self.harness.live_ids)
        self._writes = 0

    # ------------------------------------------------------------- helpers

    def _client(self, data):
        return data.draw(
            st.sampled_from(self.harness.front_ends), label="front_end"
        )

    def _next_value(self) -> tuple[str, int]:
        self._writes += 1
        return ("w", self._writes)

    # ------------------------------------------------------ data-plane ops

    @rule(data=st.data(), key=keys_st)
    def do_get(self, data, key) -> None:
        client = self._client(data)
        was_local = key in client.policy
        value = client.get(key)
        self.model.check_read(client.client_id, key, value, was_local)

    @rule(data=st.data(), keys=st.lists(keys_st, min_size=1, max_size=5))
    def do_get_many(self, data, keys) -> None:
        client = self._client(data)
        was_local = {key: key in client.policy for key in keys}
        values = client.get_many(keys)
        assert set(values) == set(keys)
        for key, value in values.items():
            self.model.check_read(client.client_id, key, value, was_local[key])

    @rule(data=st.data(), key=keys_st)
    def do_set(self, data, key) -> None:
        client = self._client(data)
        value = self._next_value()
        shard = self.harness.cluster.server_for(key).server_id
        client.set(key, value)
        self.model.note_write(
            client.client_id,
            key,
            value,
            shard=shard,
            shard_down=shard in self.down,
        )

    @rule(data=st.data(), key=keys_st)
    def do_delete(self, data, key) -> None:
        client = self._client(data)
        client.delete(key)
        self.model.note_delete(client.client_id, key)

    # --------------------------------------------------------- fault plane

    @rule(data=st.data())
    def kill_server(self, data) -> None:
        alive = [sid for sid in self.harness.live_ids if sid not in self.down]
        if not alive:
            return
        victim = data.draw(st.sampled_from(alive), label="victim")
        # Through the harness: on the socket plane this also severs the
        # victim's live TCP connections, not just its injected fault.
        self.harness.kill_server(victim)
        self.down.add(victim)

    @precondition(lambda self: self.down)
    @rule(data=st.data())
    def revive_server(self, data) -> None:
        victim = data.draw(st.sampled_from(sorted(self.down)), label="revived")
        # Cold by default: the cloud failure model under which the
        # zero-stale-read guarantee holds (a restarted instance is empty).
        self.harness.cluster.revive_server(victim, cold=True)
        self.down.discard(victim)
        # Cold revival drops the dead incarnation's write-behind queue.
        self.model.note_cold_revival(victim)

    # ------------------------------------------------------ topology churn

    @precondition(lambda self: self.harness and len(self.harness.live_ids) < MAX_SERVERS)
    @rule()
    def add_server(self) -> None:
        server = self.harness.cluster.add_server()
        new_ids = set(self.harness.live_ids) - self.seen_ids
        assert len(new_ids) == 1, f"add_server changed membership by {new_ids}"
        (new_id,) = new_ids
        # S1: ids are minted monotonically, never reusing a removed
        # shard's name — and the fresh shard starts with no cached keys.
        assert new_id not in self.seen_ids, f"shard id {new_id} was reused"
        self.seen_ids.add(new_id)
        assert not list(server.keys()), "fresh shard started non-empty"
        assert not self.harness.faults.is_down(new_id), (
            "fresh shard inherited a dead incarnation's fault profile"
        )

    @precondition(lambda self: self.harness and len(self.harness.live_ids) > MIN_SERVERS)
    @rule(data=st.data())
    def remove_server(self, data) -> None:
        victim = data.draw(
            st.sampled_from(sorted(self.harness.live_ids)), label="removed"
        )
        self.harness.cluster.remove_server(victim)
        self.down.discard(victim)
        # Graceful scale-in drains the departing shard's queue.
        self.model.note_shard_removed(victim)

    # ------------------------------------------------------- control plane

    @rule(data=st.data())
    def close_epoch(self, data) -> None:
        client = self._client(data)
        record = client.close_epoch()
        assert record.snapshot.imbalance >= 1.0 or record.snapshot.imbalance == 0.0

    @precondition(lambda self: self.harness and self.harness.router is not None)
    @rule()
    def router_refresh(self) -> None:
        self.harness.router.refresh(self.harness.front_ends)

    @precondition(
        lambda self: self.harness
        and self.harness.write_policy is not None
        and self.harness.write_policy.buffered
    )
    @rule()
    def flush_writes(self) -> None:
        """The runner's cadence flush: drain every reachable queue."""
        self.harness.write_policy.flush()
        self.model.note_flush(self.down)

    @precondition(lambda self: self.harness and self.harness.router is not None)
    @rule(key=keys_st)
    def promote_key(self, key) -> None:
        replicas = self.harness.router.promote(key)
        assert replicas, "promotion returned an empty replica set"

    @precondition(lambda self: self.harness and self.harness.router is not None)
    @rule(key=keys_st)
    def demote_key(self, key) -> None:
        self.harness.router.demote(key)

    def teardown(self) -> None:
        if self.harness is not None:
            self.harness.close()

    # ----------------------------------------------------------- invariants

    @invariant()
    def structural_invariants(self) -> None:
        if self.harness is None:
            return
        check_cluster_invariants(self.harness)

    @invariant()
    def down_set_matches_model(self) -> None:
        if self.harness is None:
            return
        actual = self.harness.faults.down_servers()
        assert actual == frozenset(self.down), (
            f"fault-injector down set {sorted(actual)} diverged from the "
            f"machine's model {sorted(self.down)} — a shard is down (or up) "
            f"that the test never touched"
        )


TestElasticCluster = ElasticClusterMachine.TestCase
TestElasticCluster.settings = settings(
    max_examples=int(os.environ.get("CLUSTER_FUZZ_EXAMPLES", "25")),
    stateful_step_count=int(os.environ.get("CLUSTER_FUZZ_STEPS", "30")),
    derandomize=os.environ.get("CLUSTER_FUZZ_DERANDOMIZE", "") == "1",
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
