"""ARC fidelity: the repo's ARCCache vs a naive Figure-4 transcription.

:class:`~repro.policies.arc.ARCCache` splits Megiddo & Modha's REQUEST
routine across ``lookup`` (Case I) and ``admit`` (Cases II-IV) so it fits
the front-end protocol, keeps ``p`` as a float, and adds invalidate /
resize extensions. None of that may change a single replacement
decision, so this module pins it against :class:`ReferenceARC` — a
deliberately naive, monolithic transcription of the FAST '03 Figure 4
pseudocode ("ARC(c)" + "REPLACE(x, p)") with no repo idioms — and
property-tests that hit/miss decisions, the ``p`` trajectory, the cache
contents (T1/T2, in order) and the ghost lists (B1/B2, in order) agree
on every access of arbitrary workloads.

The test originally caught a real transcription bug: REPLACE's
``x ∈ B2 and |T1| = p`` comparison was coded as ``|T1| == int(p)``,
which fires on any fractional ``p`` with ``⌊p⌋ = |T1|`` — the paper's
equality (with real-valued ``p``) only holds when ``p`` is integral, so
ARCCache evicted from T1 where Figure 4 evicts from T2.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.arc import ARCCache
from repro.policies.base import MISSING


class ReferenceARC:
    """Line-by-line Figure 4 of Megiddo & Modha (FAST 2003).

    One monolithic ``request`` routine, OrderedDicts as the LRU lists
    (LRU end first), ``p`` a real number. Returns True on hit.
    """

    def __init__(self, c: int) -> None:
        self.c = c
        self.p = 0.0
        self.t1: OrderedDict = OrderedDict()
        self.t2: OrderedDict = OrderedDict()
        self.b1: OrderedDict = OrderedDict()
        self.b2: OrderedDict = OrderedDict()

    def replace(self, x_in_b2: bool) -> None:
        t1_len = len(self.t1)
        if t1_len >= 1 and ((x_in_b2 and t1_len == self.p) or t1_len > self.p):
            # delete the LRU page in T1; move it to the MRU of B1
            victim, _ = self.t1.popitem(last=False)
            self.b1[victim] = None
        else:
            # delete the LRU page in T2; move it to the MRU of B2
            victim, _ = self.t2.popitem(last=False)
            self.b2[victim] = None

    def request(self, x) -> bool:
        # Case I: x in T1 u T2 (a hit): move x to MRU of T2.
        if x in self.t1:
            self.t2[x] = self.t1.pop(x)
            return True
        if x in self.t2:
            self.t2.move_to_end(x)
            return True
        # Case II: x in B1 (a miss): adapt towards recency.
        if x in self.b1:
            self.p = min(
                float(self.c), self.p + max(len(self.b2) / len(self.b1), 1.0)
            )
            self.replace(x_in_b2=False)
            del self.b1[x]
            self.t2[x] = x
            return False
        # Case III: x in B2 (a miss): adapt towards frequency.
        if x in self.b2:
            self.p = max(
                0.0, self.p - max(len(self.b1) / len(self.b2), 1.0)
            )
            self.replace(x_in_b2=True)
            del self.b2[x]
            self.t2[x] = x
            return False
        # Case IV: x is completely new (a miss).
        l1 = len(self.t1) + len(self.b1)
        if l1 == self.c:
            # Case A
            if len(self.t1) < self.c:
                self.b1.popitem(last=False)
                self.replace(x_in_b2=False)
            else:
                # B1 is empty: delete the LRU page in T1 (remove from cache)
                self.t1.popitem(last=False)
        elif l1 < self.c:
            # Case B
            total = l1 + len(self.t2) + len(self.b2)
            if total >= self.c:
                if total == 2 * self.c:
                    self.b2.popitem(last=False)
                self.replace(x_in_b2=False)
        self.t1[x] = x
        return False


def drive_both(capacity: int, keys: list[int]):
    """Feed one key stream through both ARCs, checking after every access."""
    reference = ReferenceARC(capacity)
    cache = ARCCache(capacity)
    for i, key in enumerate(keys):
        ref_hit = reference.request(key)
        value = cache.lookup(key)
        impl_hit = value is not MISSING
        if not impl_hit:
            cache.admit(key, key)
        context = f"access {i} (key {key}, c={capacity})"
        assert impl_hit == ref_hit, f"hit/miss diverged at {context}"
        assert cache.p == reference.p, f"p diverged at {context}"
        assert list(cache._t1) == list(reference.t1), f"T1 diverged at {context}"
        assert list(cache._t2) == list(reference.t2), f"T2 diverged at {context}"
        b1, b2 = cache.ghost_keys
        assert b1 == list(reference.b1), f"B1 diverged at {context}"
        assert b2 == list(reference.b2), f"B2 diverged at {context}"


class TestARCMatchesFigure4:
    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=12),
        keys=st.lists(
            st.integers(min_value=0, max_value=30), min_size=30, max_size=400
        ),
    )
    def test_property_random_streams(self, capacity, keys):
        drive_both(capacity, keys)

    @settings(max_examples=100, deadline=None)
    @given(
        capacity=st.integers(min_value=2, max_value=16),
        data=st.data(),
    )
    def test_property_dense_reuse_streams(self, capacity, data):
        """Streams dense enough to keep the directory (T+B) saturated.

        Short shrunk lists rarely reach the fractional-``p`` states where
        the ``int(p)`` bug bites, so this variant pins the key space to a
        small multiple of ``c`` and always runs long streams.
        """
        key_space = data.draw(
            st.integers(min_value=capacity, max_value=capacity * 6)
        )
        keys = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=key_space - 1),
                min_size=200,
                max_size=400,
            )
        )
        drive_both(capacity, keys)

    def test_fractional_p_equality_regression(self):
        """The minimized stream that caught the ``int(p)`` bug.

        At the final access (a B2 ghost hit on key 3) the state is
        ``p = 2.5``, ``|T1| = 2``: Figure 4 reads ``|T1| = p`` as false
        (``p`` is not integral) and REPLACE evicts from T2; the pre-fix
        code compared ``|T1| == int(p)`` and evicted from T1 instead,
        leaving T1=[9] / T2=[4, 2, 6, 3] where the paper has
        T1=[8, 9] / T2=[2, 6, 3].
        """
        keys = [0, 1, 2, 3, 0, 4, 5, 5, 3, 6, 7, 7, 8, 4, 9, 2, 6, 3]
        drive_both(5, keys)

    def test_zipf_like_stream_long(self):
        # A deterministic skewed stream with revisits, long enough to
        # exercise every case including DBL overflow at 2c.
        keys = [((i * i) % 37) % 20 for i in range(3_000)]
        drive_both(8, keys)
