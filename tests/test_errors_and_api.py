"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    CapacityError,
    ClusterError,
    ConfigurationError,
    ExperimentError,
    KeyNotTrackedError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            CapacityError,
            KeyNotTrackedError,
            ClusterError,
            SimulationError,
            ExperimentError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)
        with pytest.raises(ValueError):
            raise ConfigurationError("bad")

    def test_key_not_tracked_is_key_error(self):
        assert issubclass(KeyNotTrackedError, KeyError)

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise ClusterError("down")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_flow(self):
        """The README/package-docstring quickstart must actually work."""
        from repro import CoTCache, MISSING, ZipfianGenerator

        cache = CoTCache(capacity=8, tracker_capacity=32)
        workload = ZipfianGenerator(key_space=10_000, theta=0.99, seed=7)
        for key in workload.keys(50_000):
            if cache.lookup(key) is MISSING:
                cache.admit(key, f"value-{key}")
        assert cache.stats.hit_rate > 0.2

    def test_lazy_elastic_import(self):
        import repro.core

        assert repro.core.ElasticCoTClient is not None
        with pytest.raises(AttributeError):
            repro.core.DoesNotExist
