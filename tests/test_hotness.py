"""Tests for the dual-cost hotness model (Equation 1)."""

from __future__ import annotations

import pytest

from repro.core.hotness import AccessType, HotnessModel, KeyStats
from repro.errors import ConfigurationError


class TestHotnessModel:
    def test_defaults(self):
        model = HotnessModel()
        assert model.read_weight == 1.0
        assert model.update_weight == 1.0

    def test_equation_1(self):
        model = HotnessModel(read_weight=2.0, update_weight=3.0)
        assert model.hotness(10, 2) == 10 * 2.0 - 2 * 3.0

    def test_delta_read(self):
        model = HotnessModel(read_weight=1.5)
        assert model.delta(AccessType.READ) == 1.5

    def test_delta_update_is_negative(self):
        model = HotnessModel(update_weight=2.5)
        assert model.delta(AccessType.UPDATE) == -2.5

    def test_zero_update_weight_allowed(self):
        model = HotnessModel(update_weight=0.0)
        assert model.delta(AccessType.UPDATE) == 0.0

    def test_invalid_read_weight(self):
        with pytest.raises(ConfigurationError):
            HotnessModel(read_weight=0.0)
        with pytest.raises(ConfigurationError):
            HotnessModel(read_weight=-1.0)

    def test_invalid_update_weight(self):
        with pytest.raises(ConfigurationError):
            HotnessModel(update_weight=-0.1)

    def test_frozen(self):
        model = HotnessModel()
        with pytest.raises(AttributeError):
            model.read_weight = 5.0  # type: ignore[misc]


class TestKeyStats:
    def test_initial(self):
        stats = KeyStats()
        assert stats.read_count == 0.0
        assert stats.update_count == 0.0
        assert stats.hotness(HotnessModel()) == 0.0

    def test_record_read(self):
        stats = KeyStats()
        stats.record(AccessType.READ)
        stats.record(AccessType.READ)
        assert stats.read_count == 2.0
        assert stats.hotness(HotnessModel()) == 2.0

    def test_record_update_penalizes(self):
        stats = KeyStats()
        stats.record(AccessType.READ)
        stats.record(AccessType.UPDATE)
        stats.record(AccessType.UPDATE)
        assert stats.hotness(HotnessModel()) == 1.0 - 2.0

    def test_decay_halves_hotness(self):
        stats = KeyStats(read_count=8.0, update_count=2.0)
        model = HotnessModel()
        before = stats.hotness(model)
        stats.decay(0.5)
        assert stats.hotness(model) == pytest.approx(before / 2)

    def test_seed_from_hotness_reproduces_value(self):
        model = HotnessModel(read_weight=2.0)
        stats = KeyStats()
        stats.seed_from_hotness(7.0, model)
        assert stats.hotness(model) == pytest.approx(7.0)
        assert stats.update_count == 0.0

    def test_seed_from_negative_hotness_clamps_to_zero(self):
        # A victim with net-negative hotness must not seed the newcomer
        # with negative reads.
        model = HotnessModel()
        stats = KeyStats()
        stats.seed_from_hotness(-3.0, model)
        assert stats.read_count == 0.0
        assert stats.hotness(model) == 0.0
