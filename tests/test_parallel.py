"""Parallel fabric: seed derivation, worker-count invariance, merge.

The fabric's contract is that parallelism is *unobservable* in outputs:
``--parallel 1``, ``--parallel 2`` and ``--parallel 4`` must render the
same bytes and publish the same telemetry, and the process-per-client
cluster drive must return a snapshot equal to the sequential runner's.
These tests pin that contract, plus the SplitMix64 seed-derivation
primitive and the per-process zeta memo behavior the spawn path relies
on.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import (
    ClusterRunner,
    PolicySpec,
    Scale,
    ScenarioSpec,
    StreamHooks,
    TopologySpec,
    WorkloadSpec,
    merge_snapshots,
)
from repro.engine.parallel import (
    ParallelClusterRunner,
    cluster_spec_parallelizable,
    map_calls,
    map_specs,
    parallel_workers,
)
from repro.engine.spec import spawn_safe
from repro.errors import ConfigurationError
from repro.obs.export import SnapshotCollector
from repro.workloads.seeding import derive_seeds, spawn_seed
from repro.workloads.zipfian import zeta
import repro.workloads.zipfian as zipfian_mod

from repro.experiments.fig4_hit_rates import run as fig4_run


WORKER_COUNTS = (1, 2, 4)


# --------------------------------------------------------------------------
# seed derivation


class TestSpawnSeed:
    def test_same_task_same_seed(self):
        assert spawn_seed(42, 7) == spawn_seed(42, 7)

    def test_distinct_tasks_distinct_seeds(self):
        seeds = derive_seeds(42, 1000)
        assert len(set(seeds)) == 1000

    def test_distinct_roots_distinct_seeds(self):
        a = derive_seeds(1, 100)
        b = derive_seeds(2, 100)
        assert not set(a) & set(b)

    def test_64_bit_range(self):
        for seed in derive_seeds(123456789, 200):
            assert 0 <= seed < (1 << 64)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed(42, -1)

    def test_streams_are_independent(self):
        """Adjacent task indices must yield uncorrelated RNG streams."""
        streams = [
            random.Random(spawn_seed(42, i)).random() for i in range(100)
        ]
        assert len(set(streams)) == 100
        # Crude avalanche check: adjacent seeds differ in many bits.
        a, b = spawn_seed(42, 0), spawn_seed(42, 1)
        assert bin(a ^ b).count("1") > 10


# --------------------------------------------------------------------------
# zeta memo across processes


class TestZetaSpawnSafety:
    def test_spawned_workers_agree_with_parent(self):
        """Two spawned workers compute the same zeta as the parent."""
        expected = zeta(5_000, 0.99)
        with parallel_workers(2):
            values = map_calls(zeta, [(5_000, 0.99)] * 4)
        assert values == [expected] * 4

    def test_memo_resets_when_pid_changes(self):
        """A forked child must not trust (or mutate) the parent's memo."""
        zeta(100, 0.75)  # populate
        assert (100, 0.75) in zipfian_mod._ZETA_MEMO
        original = zipfian_mod._ZETA_MEMO_OWNER
        try:
            zipfian_mod._ZETA_MEMO_OWNER = original - 1  # fake "other process"
            zipfian_mod._ZETA_MEMO[(100, 0.75)] = -1.0  # junk to be dropped
            assert zeta(100, 0.75) > 0  # recomputed, not the junk value
            assert zipfian_mod._ZETA_MEMO_OWNER == original  # reclaimed
        finally:
            zipfian_mod._ZETA_MEMO_OWNER = original
            zipfian_mod._ZETA_MEMO.pop((100, 0.75), None)


# --------------------------------------------------------------------------
# worker-count invariance


def _render(outcome) -> str:
    results = outcome if isinstance(outcome, list) else [outcome]
    return "\n\n".join(result.render() for result in results) + "\n"


class TestWorkerCountInvariance:
    def test_fig4_bytes_and_snapshots_invariant(self):
        """One registered sweep: identical bytes and telemetry at 1/2/4."""
        rendered: dict[int, str] = {}
        snapshots: dict[int, list] = {}
        for workers in WORKER_COUNTS:
            collector = SnapshotCollector().install()
            try:
                with parallel_workers(workers):
                    outcome = fig4_run(
                        theta=0.99, scale=Scale.tiny(), sizes=[2, 8]
                    )
            finally:
                collector.uninstall()
            rendered[workers] = _render(outcome)
            snapshots[workers] = list(collector.snapshots)
        base = WORKER_COUNTS[0]
        for workers in WORKER_COUNTS[1:]:
            assert rendered[workers] == rendered[base]
            assert snapshots[workers] == snapshots[base]
        # The merged view is invariant too (counters are sums).
        merged = {
            w: merge_snapshots(snapshots[w]).counters for w in WORKER_COUNTS
        }
        assert merged[2] == merged[base] and merged[4] == merged[base]
        assert merged[base]  # non-empty: the sweep really published

    def test_map_calls_preserves_input_order(self):
        with parallel_workers(4):
            values = map_calls(_square, [(i,) for i in range(10)])
        assert values == [i * i for i in range(10)]

    def test_unpicklable_tasks_fall_back_in_process(self):
        """Closures can't cross process boundaries; they still run."""
        closure_spec = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-0.99"),
            policy=PolicySpec(name="lru", cache_lines=8),
            hooks=StreamHooks(before=lambda i: None),
        )
        assert not spawn_safe(closure_spec)
        with parallel_workers(2):
            snaps = map_specs("policy", [closure_spec, closure_spec])
        assert len(snaps) == 2 and snaps[0] == snaps[1]

    def test_unknown_runner_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            map_specs("warp", [])

    def test_stdin_main_falls_back_in_process(self, monkeypatch):
        """A ``python - <<EOF`` main can't cross spawn; the fabric detects it."""
        import sys

        from repro.engine import parallel as parallel_mod

        class _StdinMain:
            __file__ = "<stdin>"

        assert parallel_mod._main_spawn_safe()  # pytest's main is a real file
        monkeypatch.setitem(sys.modules, "__main__", _StdinMain())
        assert not parallel_mod._main_spawn_safe()
        with parallel_workers(2):
            assert parallel_mod.warm_pool() == 1  # refuses to spawn
            values = map_calls(_square, [(i,) for i in range(4)])
        assert values == [0, 1, 4, 9]  # ran in-process, same results


def _square(x: int) -> int:
    return x * x


# --------------------------------------------------------------------------
# process-per-front-end cluster drive


def _cluster_spec(**overrides) -> ScenarioSpec:
    base = dict(
        scale=Scale.tiny(),
        workload=WorkloadSpec(dist="zipf-0.99"),
        policy=PolicySpec(name="cot", cache_lines=64, tracker_lines=256),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestParallelClusterRunner:
    def test_snapshot_equals_sequential(self):
        spec = _cluster_spec()
        sequential = ClusterRunner().run(spec).telemetry
        with parallel_workers(2):
            parallel = ParallelClusterRunner().run(spec).telemetry
        assert parallel == sequential

    def test_cluster_runner_delegates_when_configured(self):
        """With workers > 1, ClusterRunner itself routes eligible specs."""
        spec = _cluster_spec()
        sequential = ClusterRunner().run(spec).telemetry
        with parallel_workers(2):
            delegated = ClusterRunner().run(spec)
        assert delegated.telemetry == sequential
        # The process drive has no live objects to hand back.
        assert delegated.front_ends == [] and delegated.cluster is None

    def test_ineligible_specs_stay_sequential(self):
        interleaved = _cluster_spec(interleave=True)
        assert not cluster_spec_parallelizable(interleaved)
        mixed = _cluster_spec(workload=WorkloadSpec(dist="zipf-0.99",
                                                    read_fraction=0.9))
        assert not cluster_spec_parallelizable(mixed)
        single = _cluster_spec(topology=TopologySpec(num_clients=1))
        assert not cluster_spec_parallelizable(single)

    def test_rejects_ineligible_spec(self):
        with pytest.raises(ConfigurationError):
            ParallelClusterRunner().run(_cluster_spec(interleave=True))


# --------------------------------------------------------------------------
# snapshot merging


class TestMergeSnapshots:
    def test_counters_sum_and_loads_sum(self):
        spec = _cluster_spec()
        snap = ClusterRunner().run(spec).telemetry
        merged = merge_snapshots([snap, snap])
        assert merged.counters["policy.hits"] == 2 * snap.counters["policy.hits"]
        assert merged.counters["run.requests"] == 2 * snap.counters["run.requests"]
        for sid, count in snap.shard_loads.items():
            assert merged.shard_loads[sid] == 2 * count

    def test_merge_empty_is_empty(self):
        merged = merge_snapshots([])
        assert merged.counters == {} and merged.shard_loads == {}

    def test_merge_single_is_identity_on_counters(self):
        spec = _cluster_spec()
        snap = ClusterRunner().run(spec).telemetry
        merged = merge_snapshots([snap])
        assert merged.counters == snap.counters
        assert merged.shard_loads == snap.shard_loads
