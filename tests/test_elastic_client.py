"""Integration tests for the elastic CoT front end (Figures 7-8 logic)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import CacheCluster
from repro.core.decay import HalfLifeDecay
from repro.core.elastic import ElasticCoTClient
from repro.core.resizing import Phase
from repro.errors import ConfigurationError
from repro.workloads.base import format_key
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator


def small_cluster() -> CacheCluster:
    return CacheCluster(num_servers=4, virtual_nodes=256, value_size=1)


def drive(client, generator, n):
    for key in generator.keys(n):
        client.get(format_key(key))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticCoTClient(small_cluster(), base_epoch=0)
        with pytest.raises(ConfigurationError):
            ElasticCoTClient(small_cluster(), imbalance_window=0)

    def test_initial_sizes(self):
        client = ElasticCoTClient(
            small_cluster(), initial_cache=2, initial_tracker=4
        )
        assert client.converged_sizes() == (2, 4)
        assert client.cot is client.policy


class TestEpochLoop:
    def test_epoch_closes_every_e_accesses(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=100)
        gen = UniformGenerator(1000, seed=1)
        drive(client, gen, 350)
        assert client.epoch_index == 3
        assert len(client.history) == 3

    def test_epoch_length_tracks_tracker(self):
        """Algorithm 3 line 4: E = max(E, K)."""
        client = ElasticCoTClient(small_cluster(), base_epoch=10)
        client.cot.set_sizes(64, 256)
        assert client.epoch_length == 256

    def test_manual_close_flushes_partial_epoch(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=1000)
        gen = UniformGenerator(100, seed=2)
        drive(client, gen, 50)
        record = client.close_epoch()
        assert record.snapshot.accesses == 50
        assert client.epoch_index == 1

    def test_history_rows_have_expected_fields(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=50)
        drive(client, UniformGenerator(100, seed=3), 120)
        row = client.history[0].as_row()
        for field in ("epoch", "cache", "tracker", "I_c", "alpha_c", "decision"):
            assert field in row

    def test_writes_count_toward_epoch(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=10)
        for i in range(10):
            client.set(format_key(i), i)
        assert client.epoch_index == 1

    def test_deletes_count_toward_epoch(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=5)
        for i in range(5):
            client.delete(format_key(i))
        assert client.epoch_index == 1


class TestElasticBehaviour:
    def test_expands_under_skew(self):
        """A skewed workload with a violated target must grow the cache."""
        client = ElasticCoTClient(
            small_cluster(),
            target_imbalance=1.1,
            initial_cache=2,
            initial_tracker=4,
            base_epoch=500,
        )
        drive(client, ZipfianGenerator(5_000, theta=1.4, seed=4), 60_000)
        cache, tracker = client.converged_sizes()
        assert cache > 2
        assert tracker >= 2 * cache

    def test_shrinks_after_switch_to_uniform(self):
        client = ElasticCoTClient(
            small_cluster(),
            target_imbalance=1.2,
            initial_cache=2,
            initial_tracker=4,
            base_epoch=500,
        )
        drive(client, ZipfianGenerator(5_000, theta=1.4, seed=5), 60_000)
        grown, _ = client.converged_sizes()
        drive(client, UniformGenerator(5_000, seed=6), 120_000)
        shrunk, _ = client.converged_sizes()
        assert shrunk < grown

    def test_decay_decision_reaches_decay_policy(self):
        """A DECAY decision from the controller must run the decay policy
        and halve tracked hotness (client wiring; the controller's Case-2
        logic is covered in test_resizing_controller)."""
        from repro.core.resizing import DecisionKind, ResizeDecision

        class AlwaysDecay:
            phase = Phase.STEADY
            alpha_target = 1.0

            def observe(self, snapshot):
                return ResizeDecision(
                    DecisionKind.DECAY,
                    snapshot.cache_capacity,
                    snapshot.tracker_capacity,
                    decay=True,
                )

        decay = HalfLifeDecay()
        client = ElasticCoTClient(
            small_cluster(), base_epoch=100, decay=decay,
            controller=AlwaysDecay(),  # type: ignore[arg-type]
        )
        gen = UniformGenerator(50, seed=7)
        drive(client, gen, 100)
        assert decay.triggers == 1
        drive(client, gen, 100)
        assert decay.triggers == 2

    def test_windowed_imbalance_uses_recent_epochs(self):
        client = ElasticCoTClient(small_cluster(), base_epoch=50)
        drive(client, UniformGenerator(200, seed=8), 200)
        imbalance, sample = client._windowed_imbalance()
        assert imbalance >= 1.0
        assert sample > 0

    def test_repr(self):
        client = ElasticCoTClient(small_cluster(), client_id="e9")
        assert "e9" in repr(client)
