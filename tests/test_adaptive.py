"""Tests for the adaptive policy arbiter (DESIGN.md §14).

Covers the arbiter as a :class:`CachePolicy` (delegation, stats
continuity across switches, warm handoff, eviction-listener exactness),
the arbitration decision loop (scoring, hysteresis, patience,
min-samples guard), the batch/scalar decision equivalence the fused
run_stream path must preserve, and the engine wiring (ArbitrationSpec
axis, runner telemetry, spawn safety, default-off byte identity).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.cache import CoTCache
from repro.engine import (
    ArbitrationSpec,
    ClusterRunner,
    PolicySpec,
    PolicyStreamRunner,
    Scale,
    ScenarioSpec,
    WorkloadSpec,
    spawn_safe,
)
from repro.errors import ConfigurationError
from repro.policies.adaptive import AdaptiveArbiter, ArbiterEpoch, sample_hash
from repro.policies.base import MISSING
from repro.policies.lru import LRUCache
from repro.policies.registry import make_policy
from repro.workloads.zipfian import ZipfianGenerator


def zipf_keys(n, key_space=2_000, theta=1.2, seed=7):
    return list(ZipfianGenerator(key_space, theta=theta, seed=seed).keys(n))


class TestSampleHash:
    def test_int_and_str_are_deterministic_16_bit(self):
        for key in (0, 1, 12345, 2**40):
            assert 0 <= sample_hash(key) <= 0xFFFF
            assert sample_hash(key) == sample_hash(key)
        assert sample_hash("usertable:17") == sample_hash("usertable:17")
        assert 0 <= sample_hash("usertable:17") <= 0xFFFF

    def test_other_types_hash_via_repr(self):
        assert sample_hash((1, 2)) == sample_hash((1, 2))

    def test_int_hash_spreads_low_bits(self):
        # Sequential ids must not all land in (or out of) the sample.
        sampled = sum((sample_hash(i) & 0x7) == 0 for i in range(8_000))
        assert 0.08 < sampled / 8_000 < 0.17  # nominal rate 1/8


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, candidates=())
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, candidates=("lru", "lru"))
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, epoch_length=0)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, sample_shift=17)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, hit_value=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, line_cost=-0.1)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, switch_margin=-0.1)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, patience=0)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, min_samples=0)
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(64, initial="nope")

    def test_defaults(self):
        arbiter = AdaptiveArbiter(64)
        assert arbiter.candidates == ("lru", "lfu", "arc", "lru2", "cot")
        assert arbiter.live_name == "lru"
        assert arbiter.sample_rate == 1 / 64
        assert arbiter.capacity == 64

    def test_shadows_are_scaled_by_sample_rate(self):
        arbiter = AdaptiveArbiter(64, sample_shift=3, candidates=("lru",))
        shadow = arbiter._shadows[0].policy
        assert shadow.capacity == 64 >> 3

    def test_registry_builds_adaptive(self):
        policy = make_policy("adaptive", 64, tracker_capacity=256)
        assert isinstance(policy, AdaptiveArbiter)


class TestServingAndStats:
    def test_delegates_to_live_policy(self):
        arbiter = AdaptiveArbiter(4, candidates=("lru",), sample_shift=0)
        arbiter.admit("a", 1)
        assert arbiter.lookup("a") == 1
        assert "a" in arbiter
        assert len(arbiter) == 1
        assert set(arbiter.cached_keys()) == {"a"}
        assert dict(arbiter.cached_items()) == {"a": 1}
        assert arbiter.lookup("b") is MISSING
        assert arbiter.stats.hits == 1
        assert arbiter.stats.misses == 1

    def test_stats_accumulate_across_switch(self):
        arbiter = AdaptiveArbiter(
            8, candidates=("lru", "lfu"), sample_shift=0, epoch_length=64
        )
        for key in zipf_keys(500, key_space=64):
            if arbiter.lookup(key) is MISSING:
                arbiter.admit(key, key)
        stats = arbiter.stats
        assert stats.hits + stats.misses == 500
        assert stats.hits > 0

    def test_invalidate_and_update_forward_to_live(self):
        arbiter = AdaptiveArbiter(4, candidates=("lru",), sample_shift=0)
        arbiter.lookup("k")  # tick: the shadow admits the ghost entry
        arbiter.admit("k", "v1")
        shadow = arbiter._shadows[0].policy
        # scalar sampled accesses buffer until shadow state is read; peeking
        # at the shadow directly requires draining the buffer first
        arbiter._flush_shadows()
        assert "k" in shadow
        arbiter.invalidate("k")
        # the sampled shadow heard the invalidation too (before any
        # further lookup re-admits the ghost)
        assert "k" not in shadow
        assert arbiter.lookup("k") is MISSING
        assert arbiter.stats.invalidations == 1
        # writes invalidate the local copy (default record_update), live
        # and shadow alike
        arbiter.admit("k", "v2")
        arbiter.record_update("k")
        assert "k" not in arbiter
        assert "k" not in shadow

    def test_resize_reaches_live_and_shadows(self):
        arbiter = AdaptiveArbiter(64, candidates=("lru",), sample_shift=2)
        arbiter.resize(32)
        assert arbiter.capacity == 32
        assert arbiter.live_policy.capacity == 32
        assert arbiter._shadows[0].policy.capacity == 32 >> 2


class TestArbitration:
    @staticmethod
    def lfu_friendly_keys(n, seed=3):
        """Hot set + one-touch scan: LFU clearly beats LRU."""
        rng_keys = zipf_keys(n, key_space=1_000, theta=1.3, seed=seed)
        keys = []
        scan = 10_000
        for i, key in enumerate(rng_keys):
            keys.append(key)
            if i % 2 == 0:  # interleave a never-repeating scan
                keys.append(scan)
                scan += 1
        return keys

    def test_switches_away_from_losing_policy(self):
        arbiter = AdaptiveArbiter(
            32,
            candidates=("lru", "lfu"),
            initial="lru",
            sample_shift=0,
            epoch_length=512,
        )
        arbiter.run_stream(self.lfu_friendly_keys(8_000))
        assert arbiter.live_name == "lfu"
        assert arbiter.switches >= 1
        assert arbiter.epochs > 0
        assert arbiter.history, "epoch records must accumulate"
        switch_records = [r for r in arbiter.history if r.switched_to]
        assert switch_records and switch_records[0].switched_to == "lfu"

    def test_high_margin_blocks_switch(self):
        arbiter = AdaptiveArbiter(
            32,
            candidates=("lru", "lfu"),
            initial="lru",
            sample_shift=0,
            epoch_length=512,
            switch_margin=10.0,
        )
        arbiter.run_stream(self.lfu_friendly_keys(8_000))
        assert arbiter.live_name == "lru"
        assert arbiter.switches == 0

    def test_patience_delays_switch(self):
        impatient = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), sample_shift=0,
            epoch_length=512, patience=1,
        )
        patient = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), sample_shift=0,
            epoch_length=512, patience=3,
        )
        keys = self.lfu_friendly_keys(8_000)
        impatient.run_stream(keys)
        patient.run_stream(keys)
        first = next(i for i, r in enumerate(impatient.history) if r.switched_to)
        later = next(i for i, r in enumerate(patient.history) if r.switched_to)
        assert later - first >= 2

    def test_min_samples_guard_blocks_decisions(self):
        arbiter = AdaptiveArbiter(
            32,
            candidates=("lru", "lfu"),
            sample_shift=16,  # nearly nothing sampled
            epoch_length=256,
            min_samples=8,
        )
        arbiter.run_stream(self.lfu_friendly_keys(4_000))
        assert arbiter.switches == 0

    def test_close_epoch_flush(self):
        arbiter = AdaptiveArbiter(8, candidates=("lru",), epoch_length=1 << 20)
        assert arbiter.close_epoch() is None
        arbiter.lookup(1)
        record = arbiter.close_epoch()
        assert isinstance(record, ArbiterEpoch)
        assert record.samples == arbiter.samples
        assert arbiter.close_epoch() is None  # clock reset

    def test_regret_is_nonnegative_and_grows_on_bad_live(self):
        arbiter = AdaptiveArbiter(
            32,
            candidates=("lru", "lfu"),
            initial="lru",
            sample_shift=0,
            epoch_length=512,
            switch_margin=10.0,  # pinned to the losing policy
        )
        arbiter.run_stream(self.lfu_friendly_keys(8_000))
        assert arbiter.regret > 0

    def test_shadow_hit_rates_exposed_per_candidate(self):
        arbiter = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), sample_shift=0, epoch_length=512
        )
        arbiter.run_stream(zipf_keys(2_000))
        rates = arbiter.shadow_hit_rates()
        assert set(rates) == {"lru", "lfu"}
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())


class TestWarmHandoff:
    @staticmethod
    def force_switch(arbiter, to_name="lfu"):
        record = None
        for _ in range(200):
            arbiter.run_stream(
                TestArbitration.lfu_friendly_keys(arbiter.epoch_length)
            )
            if arbiter.live_name == to_name:
                record = arbiter
                break
        assert record is not None, "arbiter never switched"

    def test_incoming_policy_is_seeded_from_outgoing(self):
        arbiter = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), initial="lru",
            sample_shift=0, epoch_length=512,
        )
        keys = TestArbitration.lfu_friendly_keys(8_000)
        # stop right before the first switch to capture the outgoing set
        first_switch = None
        probe = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), initial="lru",
            sample_shift=0, epoch_length=512,
        )
        probe.run_stream(keys)
        first_switch = next(
            i for i, r in enumerate(probe.history) if r.switched_to
        )
        boundary = (first_switch + 1) * 512
        arbiter.run_stream(keys[:boundary])
        outgoing_keys = set(arbiter.live_policy.cached_keys())
        arbiter.run_stream(keys[boundary : boundary + 512])
        assert arbiter.live_name == "lfu"
        live_keys = set(arbiter.live_policy.cached_keys())
        # the handoff seeded the incoming policy; subsequent accesses may
        # have churned some entries, but the sets must overlap heavily
        assert outgoing_keys & live_keys

    def test_dropped_keys_notify_eviction_listeners(self):
        evicted = []
        arbiter = AdaptiveArbiter(
            32, candidates=("lru", "lfu"), initial="lru",
            sample_shift=0, epoch_length=512,
        )
        arbiter.eviction_listeners.append(lambda key: evicted.append(key))
        cached_before = set()

        keys = TestArbitration.lfu_friendly_keys(12_000)
        for start in range(0, len(keys), 512):
            cached_before = set(arbiter.cached_keys())
            arbiter.run_stream(keys[start : start + 512])
            if arbiter.switches:
                break
        assert arbiter.switches >= 1
        # every key that silently left the cache during the handoff (or
        # was evicted by the live policy) was reported
        gone = cached_before - set(arbiter.cached_keys())
        assert gone <= set(evicted)

    def test_listeners_keep_firing_after_switch(self):
        evicted = []
        arbiter = AdaptiveArbiter(
            4, candidates=("lru", "lfu"), initial="lru",
            sample_shift=0, epoch_length=512,
        )
        TestWarmHandoff.force_switch(arbiter)
        evicted.clear()
        arbiter.eviction_listeners.append(lambda key: evicted.append(key))
        for i in range(50_000, 50_020):  # tiny cache: must evict
            if arbiter.lookup(i) is MISSING:
                arbiter.admit(i, i)
        assert evicted

    def test_cot_warm_seed_admits_despite_admission_filter(self):
        outgoing = LRUCache(16)
        for i in range(16):
            outgoing.admit(i, i)
        cot = CoTCache(16, tracker_capacity=64)
        cot.warm_seed(outgoing.cached_items())
        assert len(cot) == 16
        assert set(cot.cached_keys()) == set(range(16))


class TestBatchScalarEquivalence:
    def test_run_stream_matches_per_access_loop(self):
        keys = zipf_keys(30_000, key_space=5_000, theta=1.1, seed=11)

        def build():
            return AdaptiveArbiter(
                128,
                tracker_capacity=512,
                epoch_length=1_024,
                sample_shift=3,
                initial="lru",
            )

        batch = build()
        batch.run_stream(keys)
        scalar = build()
        for key in keys:
            if scalar.lookup(key) is MISSING:
                scalar.admit(key, key)
        assert batch.live_name == scalar.live_name
        assert batch.switches == scalar.switches
        assert batch.epochs == scalar.epochs
        assert batch.samples == scalar.samples
        assert batch.stats.hits == scalar.stats.hits
        assert batch.stats.misses == scalar.stats.misses
        batch_path = [r.live for r in batch.history]
        scalar_path = [r.live for r in scalar.history]
        assert batch_path == scalar_path


class TestEngineAxis:
    def arbitrated_spec(self, **overrides):
        defaults = dict(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-1.2"),
            policy=PolicySpec(
                name="lru",
                cache_lines=32,
                tracker_lines=128,
                arbitration=ArbitrationSpec(
                    epoch_length=512, sample_shift=1
                ),
            ),
            accesses=6_000,
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    def test_policy_spec_defaults_to_no_arbitration(self):
        spec = PolicySpec(name="lru", cache_lines=32)
        assert spec.arbitration is None
        assert not isinstance(spec.build(0), AdaptiveArbiter)

    def test_disabled_arbitration_builds_plain_policy(self):
        spec = PolicySpec(
            name="cot",
            cache_lines=32,
            tracker_lines=128,
            arbitration=ArbitrationSpec(enabled=False),
        )
        assert not isinstance(spec.build(0), AdaptiveArbiter)

    def test_enabled_arbitration_starts_from_spec_policy(self):
        spec = PolicySpec(
            name="cot",
            cache_lines=32,
            tracker_lines=128,
            arbitration=ArbitrationSpec(),
        )
        policy = spec.build(0)
        assert isinstance(policy, AdaptiveArbiter)
        assert policy.live_name == "cot"
        assert policy.capacity == 32

    def test_initial_outside_candidates_falls_back_to_first(self):
        spec = PolicySpec(
            name="perfect",  # not in the candidate set
            cache_lines=32,
            arbitration=ArbitrationSpec(candidates=("lru", "lfu")),
        )
        policy = spec.build(0)
        assert isinstance(policy, AdaptiveArbiter)
        assert policy.live_name == "lru"

    def test_stream_runner_publishes_adaptive_counters(self):
        result = PolicyStreamRunner().run(self.arbitrated_spec())
        counters = result.telemetry.counters
        assert counters["adaptive.epochs"] >= 1
        assert counters["adaptive.shadow_samples"] > 0
        assert "adaptive.switches" in counters
        assert "adaptive.regret" in result.telemetry.gauges
        shadow_gauges = [
            name
            for name in result.telemetry.gauges
            if name.startswith("adaptive.shadow_hit_rate.")
        ]
        assert len(shadow_gauges) == len(result.policy.candidates)

    def test_stream_runner_without_arbitration_publishes_none(self):
        spec = self.arbitrated_spec(
            policy=PolicySpec(name="lru", cache_lines=32)
        )
        result = PolicyStreamRunner().run(spec)
        assert not any(
            name.startswith("adaptive.") for name in result.telemetry.counters
        )
        assert not any(
            name.startswith("adaptive.") for name in result.telemetry.gauges
        )

    def test_cluster_runner_publishes_adaptive_counters(self):
        result = ClusterRunner().run(self.arbitrated_spec(accesses=4_000))
        counters = result.telemetry.counters
        assert counters["adaptive.epochs"] >= 1
        assert all(
            isinstance(client.policy, AdaptiveArbiter)
            for client in result.front_ends
        )

    def test_spec_with_arbitration_is_spawn_safe(self):
        spec = self.arbitrated_spec()
        assert spawn_safe(spec)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.policy.arbitration == spec.policy.arbitration

    def test_arbitration_spec_validation_happens_at_build(self):
        spec = PolicySpec(
            name="lru",
            cache_lines=32,
            arbitration=ArbitrationSpec(epoch_length=0),
        )
        with pytest.raises(ConfigurationError):
            spec.build(0)
