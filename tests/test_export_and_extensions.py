"""Tests for result export/analysis helpers and extension experiments."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.epoch import EpochRecord, EpochSnapshot
from repro.errors import ExperimentError
from repro.experiments import extension_decay, extension_edge_rtt
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.export import (
    cache_savings,
    convergence_summary,
    to_csv,
    to_json,
    win_matrix,
)


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="x",
        title="T",
        headers=["size", "lru", "cot"],
        rows=[[2, 10.0, 12.0], [4, 20.0, 25.0], [8, 30.0, 29.0]],
        notes=["n"],
        extras={"scale": "tiny", "series": object()},
    )


def tiny() -> Scale:
    return Scale("tiny", key_space=4_000, accesses=20_000,
                 num_clients=2, num_servers=4)


class TestExport:
    def test_to_csv_roundtrip(self, tmp_path):
        path = to_csv(sample_result(), tmp_path / "r.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["size", "lru", "cot"]
        assert rows[2] == ["4", "20.0", "25.0"]

    def test_to_json_skips_unserializable_extras(self, tmp_path):
        path = to_json(sample_result(), tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "x"
        assert payload["extras"] == {"scale": "tiny"}
        assert payload["rows"][0] == [2, 10.0, 12.0]

    def test_win_matrix(self):
        matrix = win_matrix(sample_result(), ["lru", "cot"])
        assert matrix["cot"]["lru"] == 2
        assert matrix["lru"]["cot"] == 1
        with pytest.raises(ExperimentError):
            win_matrix(sample_result(), ["ghost"])

    def test_cache_savings(self):
        result = ExperimentResult(
            "t2", "T", ["dist", "no_cache", "lru", "lfu", "arc", "lru2", "cot"],
            rows=[
                ["zipf-0.9", 1.35, 64, 16, 16, 8, 8],
                ["zipf-1.2", 4.18, 2048, 2048, 1024, 1024, 512],
                ["zipf-x", 9.99, "-", 16, 16, 8, "-"],
            ],
        )
        savings = cache_savings(result)
        # The paper's headline numbers fall out directly.
        assert savings["zipf-0.9"]["lru"] == pytest.approx(0.875)
        assert savings["zipf-0.9"]["lru2"] == pytest.approx(0.0)
        assert savings["zipf-1.2"]["lru"] == pytest.approx(0.75)
        assert "zipf-x" not in savings  # unresolved rows skipped


class TestConvergenceSummary:
    def _record(self, index, decision, cache, tracker):
        snap = EpochSnapshot(
            index=index, cache_capacity=cache, tracker_capacity=tracker,
            imbalance=1.0, alpha_c=0.0, alpha_k_c=0.0, accesses=100,
        )
        return EpochRecord(snap, decision, "steady", 0.0, cache, tracker)

    def test_summary(self):
        history = [
            self._record(0, "warmup", 2, 4),
            self._record(1, "expand", 4, 8),
            self._record(2, "target_reached", 4, 8),
            self._record(3, "decay", 4, 8),
            self._record(4, "shrink", 2, 4),
        ]
        summary = convergence_summary(history)
        assert summary["epochs"] == 5
        assert summary["epochs_to_target"] == 2
        assert summary["resize_decisions"] == 2
        assert summary["decay_triggers"] == 1
        assert summary["peak_cache"] == 4
        assert summary["final_cache"] == 2

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            convergence_summary([])


class TestExtensionExperiments:
    def test_decay_extension_helps_rotating_trends(self):
        result = extension_decay.run(tiny(), rotations=3)
        rates = dict(zip(result.column("decay"), result.column("hit_rate_%")))
        assert rates["half_life"] >= rates["none"] - 0.5
        assert len(result.rows) == 3

    def test_edge_rtt_absolute_gain_grows(self):
        result = extension_edge_rtt.run(tiny())
        savings = result.column("absolute_saving_s")
        assert savings == sorted(savings)
        reductions = result.column("reduction_%")
        assert all(r > 0 for r in reductions)

    def test_distributions_extension_shapes(self):
        from repro.experiments import extension_distributions

        result = extension_distributions.run(tiny(), cache_lines=32)
        rows = {row[0]: row for row in result.rows}
        headers = result.headers
        cot_idx = headers.index("cot")
        lru_idx = headers.index("lru")
        decay_idx = headers.index("cot+decay")
        # Gaussian concentration: the tracker filter wins clearly.
        assert rows["gaussian"][cot_idx] > rows["gaussian"][lru_idx]
        # Drifting recency: decay recovers (most of) the gap CoT loses.
        assert rows["latest"][decay_idx] > rows["latest"][cot_idx]

    def test_extensions_reachable_from_cli(self):
        import repro.experiments  # noqa: F401  (registers the catalog)
        from repro.engine import experiment_ids

        ids = experiment_ids()
        assert "ext-chaos" in ids
        assert "ext-decay" in ids
        assert "ext-edge-rtt" in ids
        assert "ext-dists" in ids
