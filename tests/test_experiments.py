"""Smoke + shape tests for the experiment harnesses (tiny scales).

Each harness must (a) run end to end, (b) emit well-formed rows, and
(c) show the paper's qualitative shape even at test scale.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    appendix_tracker_size,
    fig3_cache_size_sweep,
    fig4_hit_rates,
    fig5_end_to_end,
    fig6_single_client,
    fig78_adaptive_resizing,
    table2_min_cache,
    ycsb_bug,
)
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    make_generator,
    mean_confidence,
)


def tiny(accesses=20_000, key_space=5_000, clients=2) -> Scale:
    return Scale(
        "tiny",
        key_space=key_space,
        accesses=accesses,
        num_clients=clients,
        num_servers=4,
    )


class TestCommon:
    def test_scale_presets(self):
        assert Scale.named("smoke").name == "smoke"
        assert Scale.named("paper").key_space == 1_000_000
        with pytest.raises(ExperimentError):
            Scale.named("galactic")

    def test_make_generator(self):
        assert make_generator("uniform", 10, 1).name == "uniform"
        assert make_generator("zipf-1.2", 10, 1).theta == pytest.approx(1.2)
        with pytest.raises(ExperimentError):
            make_generator("pareto-9", 10, 1)

    def test_mean_confidence(self):
        mean, ci = mean_confidence([2.0, 4.0, 6.0])
        assert mean == 4.0
        assert ci > 0
        mean, ci = mean_confidence([5.0])
        assert (mean, ci) == (5.0, 0.0)
        with pytest.raises(ExperimentError):
            mean_confidence([])

    def test_result_render_and_column(self):
        result = ExperimentResult("x", "T", ["a", "b"], [[1, 2]], notes=["n"])
        text = result.render()
        assert "T" in text and "note: n" in text
        assert result.column("b") == [2]


class TestFig3:
    def test_shape(self):
        result = fig3_cache_size_sweep.run(tiny(), sizes=[0, 8, 64])
        assert result.headers[0] == "cache_lines"
        imbalances = result.column("load_imbalance")
        # More cache-lines monotonically (at this granularity) reduce
        # imbalance, and relative load shrinks below the no-cache baseline.
        assert imbalances[0] > imbalances[-1]
        relative = result.column("relative_server_load")
        assert relative[0] == 1.0
        assert relative[-1] < 0.7


class TestFig4:
    def test_cot_tracks_tpc_and_beats_lru(self):
        result = fig4_hit_rates.run(theta=1.2, scale=tiny(), sizes=[8, 32])
        cot = result.column("cot")
        lru = result.column("lru")
        tpc = result.column("tpc")
        for cot_rate, lru_rate, tpc_rate in zip(cot, lru, tpc):
            assert cot_rate > lru_rate
            assert cot_rate == pytest.approx(tpc_rate, abs=8.0)

    def test_run_all_covers_three_skews(self):
        results = fig4_hit_rates.run_all(
            scale=tiny(accesses=5_000, key_space=2_000)
        )
        assert [r.extras["theta"] for r in results] == [0.90, 0.99, 1.2]


class TestTable2:
    def test_qualitative_order(self):
        result = table2_min_cache.run(tiny(accesses=30_000))
        assert result.headers[:2] == ["dist", "no_cache_imbalance"]
        for row in result.rows:
            no_cache = row[1]
            assert no_cache > 1.0
            lru, cot = row[2], row[6]
            if isinstance(lru, int) and isinstance(cot, int):
                assert cot <= lru  # CoT never needs more lines than LRU


class TestFig5AndFig6:
    def test_fig5_shape(self):
        result = fig5_end_to_end.run(
            tiny(accesses=8_000), repetitions=1
        )
        assert result.headers == ["policy", "uniform", "zipf-0.99", "zipf-1.2"]
        by_policy = {row[0]: row for row in result.rows}

        def runtime(cell: str) -> float:
            return float(cell.split("±")[0])

        # Without caches, skew costs runtime; CoT removes most of it.
        assert runtime(by_policy["none"][3]) > runtime(by_policy["none"][1])
        assert runtime(by_policy["cot"][3]) < runtime(by_policy["none"][3])

    def test_fig6_single_client(self):
        result = fig6_single_client.run(
            tiny(accesses=8_000), repetitions=1
        )
        assert len(result.rows) == 6  # none + 5 policies


class TestFig78:
    def test_expand_emits_epoch_series(self):
        result = fig78_adaptive_resizing.run_expand(
            tiny(accesses=30_000, key_space=2_000)
        )
        assert result.headers[0] == "epoch"
        assert len(result.rows) >= 3
        assert "series" in result.extras

    def test_shrink_reduces_cache(self):
        result = fig78_adaptive_resizing.run_shrink(
            tiny(accesses=40_000, key_space=2_000)
        )
        caches = result.column("cache")
        assert caches[-1] <= caches[0]


class TestAppendixAndBug:
    def test_tracker_size_monotone_gains(self):
        result = appendix_tracker_size.run(
            tiny(accesses=20_000, key_space=2_000), sizes=[3, 15]
        )
        for row in result.rows:
            rates = row[1:]
            # Hit rate never decreases materially as the tracker grows.
            for earlier, later in zip(rates, rates[1:]):
                assert later >= earlier - 1.0

    def test_ycsb_bug_quantified(self):
        result = ycsb_bug.run(tiny(accesses=30_000, key_space=2_000))
        for row in result.rows:
            fitted_honest, fitted_scrambled = row[1], row[2]
            head_honest, head_scrambled = row[3], row[4]
            assert head_honest > head_scrambled
        # Scrambled skew is pinned: identical across requested values.
        scrambled_column = result.column("fitted_s_scrambled")
        assert len(set(scrambled_column)) == 1


class TestCLI:
    def test_main_smoke(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ycsb-bug", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "ScrambledZipfian" in out
        assert "completed" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["unknown-experiment"])

    def test_main_requires_experiment_or_list(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_list_enumerates_registry(self, capsys):
        from repro.engine import experiment_ids
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert [line.split()[0] for line in lines] == list(experiment_ids())
        # every line carries the registered description, not just the id
        assert all(len(line.split(None, 1)) == 2 for line in lines)


class TestRegistry:
    def test_canonical_order(self):
        from repro.engine import experiment_ids

        ids = list(experiment_ids())
        assert ids[:5] == ["fig3", "fig4", "table2", "fig5", "fig6"]
        assert set(ids) >= {"fig7", "fig8", "figA", "ycsb-bug", "ext-chaos"}

    def test_duplicate_registration_rejected(self):
        from repro.engine import register_experiment
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            register_experiment("fig3", "dup", lambda scale: None, order=10)

    def test_unknown_experiment_rejected(self):
        from repro.engine import get_experiment
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            get_experiment("fig99")
