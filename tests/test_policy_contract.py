"""Interface-contract tests run against every policy uniformly.

The experiment harnesses treat all policies through the same
:class:`~repro.policies.base.CachePolicy` surface; these tests pin down
the shared behaviour so a policy bug cannot silently skew a comparison.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CoTCache
from repro.errors import ConfigurationError
from repro.policies.arc import ARCCache
from repro.policies.base import MISSING
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.lruk import LRUKCache
from repro.policies.registry import POLICY_NAMES, make_policy, register_policy

CAPACITY = 8


def make_all():
    return [
        LRUCache(CAPACITY),
        LFUCache(CAPACITY),
        ARCCache(CAPACITY),
        LRUKCache(CAPACITY, k=2, history_capacity=32),
        CoTCache(CAPACITY, tracker_capacity=32),
    ]


@pytest.fixture(params=["lru", "lfu", "arc", "lru2", "cot"])
def policy(request):
    return make_policy(request.param, CAPACITY, tracker_capacity=32)


class TestContract:
    def test_empty_lookup_misses(self, policy):
        assert policy.lookup("nothing") is MISSING
        assert policy.stats.misses == 1

    def test_lookup_after_admit_hits(self, policy):
        policy.lookup("k")
        policy.admit("k", "v")
        assert policy.lookup("k") == "v"
        assert policy.stats.hits == 1

    def test_capacity_never_exceeded(self, policy):
        rng = random.Random(5)
        for _ in range(500):
            key = rng.randrange(50)
            if policy.lookup(key) is MISSING:
                policy.admit(key, key)
            assert len(policy) <= CAPACITY

    def test_contains_has_no_stats_side_effect(self, policy):
        policy.lookup("k")
        policy.admit("k", "v")
        before = (policy.stats.hits, policy.stats.misses)
        assert "k" in policy
        assert "ghost" not in policy
        assert (policy.stats.hits, policy.stats.misses) == before

    def test_cached_keys_matches_contains(self, policy):
        rng = random.Random(6)
        for _ in range(100):
            key = rng.randrange(20)
            if policy.lookup(key) is MISSING:
                policy.admit(key, key)
        for key in policy.cached_keys():
            assert key in policy

    def test_invalidate_removes(self, policy):
        policy.lookup("k")
        policy.admit("k", "v")
        if "k" in policy:  # CoT may have declined nothing here; all admit
            policy.invalidate("k")
        assert "k" not in policy

    def test_record_update_removes_cached_copy(self, policy):
        policy.lookup("k")
        policy.admit("k", "v")
        policy.record_update("k")
        assert "k" not in policy

    def test_resize_to_zero_then_back(self, policy):
        for key in "abcd":
            policy.lookup(key)
            policy.admit(key, key)
        policy.resize(0)
        assert len(policy) == 0
        policy.resize(4)
        policy.lookup("x")
        policy.admit("x", 1)

    def test_resize_negative_raises(self, policy):
        with pytest.raises(ConfigurationError):
            policy.resize(-1)

    def test_hit_rate_bounds(self, policy):
        rng = random.Random(8)
        for _ in range(300):
            key = rng.randrange(10)
            if policy.lookup(key) is MISSING:
                policy.admit(key, key)
        assert 0.0 <= policy.stats.hit_rate <= 1.0
        assert policy.stats.accesses == 300

    @pytest.mark.parametrize("name", POLICY_NAMES)
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_ops_never_crash(self, name, seed):
        policy = make_policy(name, CAPACITY, tracker_capacity=32)
        rng = random.Random(seed)
        for _ in range(300):
            key = rng.randrange(25)
            roll = rng.random()
            if roll < 0.7:
                if policy.lookup(key) is MISSING:
                    policy.admit(key, key)
            elif roll < 0.85:
                policy.record_update(key)
            elif roll < 0.95:
                policy.invalidate(key)
            else:
                policy.resize(rng.choice([2, 4, 8, 16]))
            assert len(policy) <= policy.capacity


class TestRegistry:
    def test_policy_names_constant(self):
        assert POLICY_NAMES == ("lru", "lfu", "arc", "lru2", "cot")

    def test_make_all_names(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, 4, tracker_capacity=16)
            assert policy.capacity == 4

    def test_lru2_history_defaults_to_tracker(self):
        policy = make_policy("lru2", 4, tracker_capacity=64)
        assert policy.history_capacity == 64

    def test_aliases(self):
        assert make_policy("LRU-2", 4).k == 2
        assert make_policy("none", 0).capacity == 0
        assert make_policy("TPC", 2, hot_keys=[1, 2]).hot_set == frozenset({1, 2})

    def test_perfect_requires_hot_keys(self):
        with pytest.raises(ConfigurationError):
            make_policy("perfect", 2)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("mystery", 2)

    def test_register_custom(self):
        class Dummy(LRUCache):
            name = "dummy"

        register_policy("dummy-test", lambda capacity, **kw: Dummy(capacity))
        assert isinstance(make_policy("dummy-test", 2), Dummy)
        with pytest.raises(ConfigurationError):
            register_policy("dummy-test", lambda capacity, **kw: Dummy(capacity))
