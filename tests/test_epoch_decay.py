"""Tests for epoch records and the decay policies."""

from __future__ import annotations

import pytest

from repro.core.cache import CoTCache
from repro.core.decay import ExponentialDecay, HalfLifeDecay, NoDecay
from repro.core.epoch import EpochRecord, EpochSnapshot
from repro.errors import ConfigurationError


def snapshot(**kw) -> EpochSnapshot:
    defaults = dict(
        index=3,
        cache_capacity=8,
        tracker_capacity=32,
        imbalance=1.25,
        alpha_c=4.5,
        alpha_k_c=0.5,
        accesses=5000,
        imbalance_sample=20_000,
    )
    defaults.update(kw)
    return EpochSnapshot(**defaults)


class TestEpochRecord:
    def test_as_row(self):
        record = EpochRecord(
            snapshot=snapshot(),
            decision="expand",
            phase="size_search",
            alpha_target=4.5,
            new_cache_capacity=16,
            new_tracker_capacity=64,
        )
        row = record.as_row()
        assert row["epoch"] == 3
        assert row["cache"] == 8
        assert row["new_cache"] == 16
        assert row["decision"] == "expand"
        assert record.index == 3

    def test_snapshot_frozen(self):
        snap = snapshot()
        with pytest.raises(AttributeError):
            snap.imbalance = 2.0  # type: ignore[misc]


def hot_cache() -> CoTCache:
    cache = CoTCache(2, tracker_capacity=8)
    for _ in range(8):
        cache.lookup("k")
    return cache


class TestDecayPolicies:
    def test_no_decay(self):
        cache = hot_cache()
        before = cache.hotness_of("k")
        NoDecay().on_trigger(cache)
        NoDecay().on_epoch(cache)
        assert cache.hotness_of("k") == before

    def test_half_life(self):
        cache = hot_cache()
        before = cache.hotness_of("k")
        policy = HalfLifeDecay()
        policy.on_trigger(cache)
        assert cache.hotness_of("k") == pytest.approx(before / 2)
        assert policy.triggers == 1
        policy.on_epoch(cache)  # no continuous component
        assert cache.hotness_of("k") == pytest.approx(before / 2)

    def test_half_life_validation(self):
        with pytest.raises(ConfigurationError):
            HalfLifeDecay(factor=1.0)

    def test_exponential_epoch_aging(self):
        cache = hot_cache()
        before = cache.hotness_of("k")
        policy = ExponentialDecay(rate=0.9)
        policy.on_epoch(cache)
        assert cache.hotness_of("k") == pytest.approx(before * 0.9)

    def test_exponential_trigger(self):
        cache = hot_cache()
        before = cache.hotness_of("k")
        policy = ExponentialDecay(rate=1.0, trigger_factor=0.25)
        policy.on_epoch(cache)  # rate 1.0: no continuous aging
        assert cache.hotness_of("k") == before
        policy.on_trigger(cache)
        assert cache.hotness_of("k") == pytest.approx(before * 0.25)
        assert policy.triggers == 1

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialDecay(rate=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialDecay(trigger_factor=1.0)

    def test_decay_preserves_cache_order(self):
        cache = CoTCache(2, tracker_capacity=8)
        for _ in range(5):
            cache.lookup("hot")
        cache.admit("hot", 1)
        cache.lookup("warm")
        cache.admit("warm", 2)
        HalfLifeDecay().on_trigger(cache)
        cache.check_invariants()
        assert cache.hotness_of("hot") > cache.hotness_of("warm")
