"""Tests for the invalidation fan-out extension.

Pins the paper's consistency-cost argument: keeping front-end caches
coherent costs directory state and fan-out messages, and both costs grow
with front-end cache size — the reason CoT minimizes that size.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import CacheCluster
from repro.cluster.invalidation import CoherentFrontEndClient, InvalidationBus
from repro.policies.lru import LRUCache
from repro.workloads.base import format_key
from repro.workloads.zipfian import ZipfianGenerator


@pytest.fixture
def cluster():
    return CacheCluster(num_servers=4, virtual_nodes=256, value_size=1)


def make_pair(cluster, capacity=8):
    bus = InvalidationBus()
    a = CoherentFrontEndClient(cluster, LRUCache(capacity), bus, client_id="a")
    b = CoherentFrontEndClient(cluster, LRUCache(capacity), bus, client_id="b")
    return bus, a, b


class TestCoherence:
    def test_no_stale_reads_after_remote_write(self, cluster):
        bus, a, b = make_pair(cluster)
        key = format_key(1)
        a.get(key)
        b.get(key)
        a.set(key, "new")
        # B's copy was invalidated by the fan-out: its next read refetches.
        assert b.get(key) == "new"

    def test_base_protocol_alone_can_serve_stale(self, cluster):
        """Contrast: without the bus, the reader keeps its stale copy —
        the gap the extension closes."""
        from repro.cluster.client import FrontEndClient

        a = FrontEndClient(cluster, LRUCache(8), client_id="a")
        b = FrontEndClient(cluster, LRUCache(8), client_id="b")
        key = format_key(1)
        old = a.get(key)
        b.get(key)
        a.set(key, "new")
        assert b.get(key) == old  # stale local hit

    def test_delete_fans_out(self, cluster):
        bus, a, b = make_pair(cluster)
        key = format_key(2)
        a.get(key)
        b.get(key)
        a.delete(key)
        assert key not in b.policy

    def test_writer_does_not_message_itself(self, cluster):
        bus, a, _b = make_pair(cluster)
        key = format_key(3)
        a.get(key)
        a.set(key, "v")
        assert bus.stats.messages == 0

    def test_directory_tracks_holders(self, cluster):
        bus, a, b = make_pair(cluster)
        key = format_key(4)
        a.get(key)
        assert bus.holders_of(key) == frozenset({"a"})
        b.get(key)
        assert bus.holders_of(key) == frozenset({"a", "b"})
        a.set(key, "v")
        assert bus.holders_of(key) == frozenset()


class TestCostScaling:
    def test_consistency_costs_grow_with_cache_size(self, cluster):
        """The paper's Section 1 claim, measured: bigger front-end caches
        mean more key incarnations and more invalidation traffic."""

        def run(capacity: int) -> tuple[int, int]:
            local_cluster = CacheCluster(
                num_servers=4, virtual_nodes=256, value_size=1
            )
            bus = InvalidationBus()
            clients = [
                CoherentFrontEndClient(
                    local_cluster, LRUCache(capacity), bus, client_id=f"c{i}"
                )
                for i in range(3)
            ]
            rng = random.Random(9)
            generators = [
                ZipfianGenerator(2_000, theta=1.1, seed=30 + i)
                for i in range(3)
            ]
            for _ in range(4_000):
                for client, generator in zip(clients, generators):
                    key = format_key(generator.next_key())
                    if rng.random() < 0.05:
                        client.set(key, "w")
                    else:
                        client.get(key)
            return bus.stats.peak_directory, bus.stats.messages

        small_dir, small_msgs = run(4)
        big_dir, big_msgs = run(256)
        assert big_dir > small_dir
        assert big_msgs > small_msgs

    def test_stale_dropped_counted(self, cluster):
        bus, a, b = make_pair(cluster)
        key = format_key(5)
        a.get(key)
        b.get(key)
        a.set(key, "v")
        assert bus.stats.stale_dropped == 1
        assert bus.stats.fanout_writes == 1


class TestDirectoryAccounting:
    def test_incremental_size_matches_recount_under_churn(self, cluster):
        """``directory_size`` is maintained with +1/-1 updates; it must
        agree with an O(directory) recount at every step."""
        bus, a, b = make_pair(cluster, capacity=16)
        rng = random.Random(17)
        generator = ZipfianGenerator(500, theta=1.1, seed=18)
        for step in range(3_000):
            client = a if rng.random() < 0.5 else b
            key = format_key(generator.next_key())
            roll = rng.random()
            if roll < 0.70:
                client.get(key)
            elif roll < 0.90:
                client.set(key, "w")
            else:
                client.delete(key)
            if step % 250 == 0:
                assert (
                    bus.stats.directory_size
                    == bus.recomputed_directory_size()
                )
        assert bus.stats.directory_size == bus.recomputed_directory_size()
        assert bus.stats.peak_directory >= bus.stats.directory_size

    def test_incremental_size_matches_recount_under_direct_note_churn(
        self, cluster
    ):
        """Same reconciliation, driven through the raw directory API —
        including notes for unregistered clients and double drops."""
        bus, a, b = make_pair(cluster)
        rng = random.Random(23)
        client_ids = ["a", "b", "ghost"]  # ghost is never registered
        keys = [format_key(i) for i in range(24)]
        for step in range(2_000):
            cid = rng.choice(client_ids)
            key = rng.choice(keys)
            roll = rng.random()
            if roll < 0.45:
                bus.note_cached(cid, key)
            elif roll < 0.85:
                bus.note_dropped(cid, key)
            else:
                bus.broadcast_invalidation(cid, key)
            if step % 100 == 0:
                assert (
                    bus.stats.directory_size
                    == bus.recomputed_directory_size()
                )
        assert bus.stats.directory_size == bus.recomputed_directory_size()
        assert bus.stats.peak_directory >= bus.stats.directory_size
        assert bus.stats.directory_size >= 0

    def test_note_cached_idempotent(self, cluster):
        bus, a, _b = make_pair(cluster)
        key = format_key(11)
        bus.note_cached("a", key)
        bus.note_cached("a", key)
        assert bus.stats.directory_size == 1
        assert bus.recomputed_directory_size() == 1

    def test_note_dropped_for_non_holder_is_a_noop(self, cluster):
        bus, a, _b = make_pair(cluster)
        bus.note_dropped("a", format_key(12))
        assert bus.stats.directory_size == 0

    def test_get_many_midbatch_eviction_keeps_directory_honest(self, cluster):
        """Regression (found by the stateful fuzzer): a batch whose
        admissions evict an already-tracked key mid-batch and then
        re-admit it (the key appears later in the same batch) left the
        re-admitted copy untracked — a snapshot of "cached before the
        batch" skipped it. A later remote write then missed the copy and
        it served stale reads forever."""
        bus, a, b = make_pair(cluster, capacity=2)
        k, x, y = format_key(1), format_key(2), format_key(3)
        old = a.get(k)  # tracked: directory {k: {a}}
        assert bus.holders_of(k) == {"a"}
        # x and y evict k from the 2-line cache mid-batch; reading k last
        # re-admits it (evicting x).
        a.get_many([x, y, k])
        assert k in a.policy
        assert bus.holders_of(k) == {"a"}
        assert bus.stats.directory_size == bus.recomputed_directory_size()
        # The write must reach the re-admitted copy.
        b.set(k, "new")
        assert a.get(k) == "new"
        assert a.get(k) != old

    def test_repeat_hits_do_not_renotify_the_bus(self, cluster):
        """Only the miss -> cached transition may touch the directory;
        repeat local hits must not churn the bus."""
        bus, a, _b = make_pair(cluster)
        calls = []
        original = bus.note_cached
        bus.note_cached = lambda cid, key: (
            calls.append((cid, key)), original(cid, key),
        )
        key = format_key(13)
        for _ in range(10):
            a.get(key)
        assert calls == [("a", key)]
