"""Tests for the distribution analytics (TPC curves, skew estimation)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads.analytical import (
    estimate_zipf_exponent,
    frequency_ranking,
    head_mass,
    tpc_hit_rate,
)
from repro.workloads.zipfian import ZipfianGenerator, zipf_cdf


class TestTPC:
    def test_matches_cdf(self):
        assert tpc_hit_rate(10, 1000, 0.99) == zipf_cdf(10, 1000, 0.99)

    def test_zero_cache(self):
        assert tpc_hit_rate(0, 1000, 0.99) == 0.0

    def test_full_cache(self):
        assert tpc_hit_rate(1000, 1000, 0.99) == pytest.approx(1.0)


class TestRankingAndHeadMass:
    def test_frequency_ranking_sorted(self):
        ranking = frequency_ranking([1, 1, 1, 2, 2, 3])
        assert ranking == [(1, 3), (2, 2), (3, 1)]

    def test_ranking_ties_by_key(self):
        ranking = frequency_ranking([5, 4, 5, 4])
        assert ranking == [(4, 2), (5, 2)]

    def test_head_mass(self):
        keys = [0] * 8 + [1] * 2
        assert head_mass(keys, 1) == pytest.approx(0.8)
        assert head_mass(keys, 2) == pytest.approx(1.0)
        assert head_mass(keys, 0) == 0.0
        assert head_mass([], 3) == 0.0

    def test_head_mass_validation(self):
        with pytest.raises(ConfigurationError):
            head_mass([1], -1)


class TestExponentEstimation:
    def test_recovers_known_exponent(self):
        for theta in (0.8, 1.0, 1.3):
            gen = ZipfianGenerator(5000, theta=theta, seed=int(theta * 100))
            keys = list(gen.keys(40_000))
            fitted = estimate_zipf_exponent(keys, max_rank=300)
            assert fitted == pytest.approx(theta, abs=0.12)

    def test_uniform_fits_near_zero(self):
        rng = random.Random(6)
        keys = [rng.randrange(200) for _ in range(40_000)]
        fitted = estimate_zipf_exponent(keys, max_rank=100)
        assert abs(fitted) < 0.2

    def test_too_few_ranks_raises(self):
        with pytest.raises(ConfigurationError):
            estimate_zipf_exponent([1, 1, 1, 1])

    def test_min_count_filters_noise(self):
        keys = [0] * 100 + [1] * 50 + list(range(2, 30))  # singletons
        fitted = estimate_zipf_exponent(keys, min_count=2)
        assert fitted == pytest.approx(1.0, abs=0.2)
